#include "study/experiment.hpp"

#include <atomic>
#include <cstddef>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <utility>

#include "control/dar.hpp"
#include "core/adaptive_policy.hpp"
#include "core/controlled_policy.hpp"
#include "core/controller.hpp"
#include "core/variants.hpp"
#include "erlang/erlang_bound.hpp"
#include "loss/dynamic_policies.hpp"
#include "loss/policies.hpp"
#include "obs/probe.hpp"
#include "sim/call_trace.hpp"
#include "sim/parallel_for.hpp"
#include "sim/thread_pool.hpp"
#include "snapshot/checkpoint.hpp"

namespace altroute::study {

std::string policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kSinglePath:
      return "single-path";
    case PolicyKind::kUncontrolledAlternate:
      return "uncontrolled-alt";
    case PolicyKind::kControlledAlternate:
      return "controlled-alt";
    case PolicyKind::kOttKrishnan:
      return "ott-krishnan";
    case PolicyKind::kAdaptiveControlled:
      return "adaptive-controlled-alt";
    case PolicyKind::kPerLengthControlled:
      return "controlled-alt-perlen";
    case PolicyKind::kLeastBusy:
      return "least-busy-alt";
    case PolicyKind::kLeastBusyProtected:
      return "least-busy-alt-protected";
    case PolicyKind::kStickyRandom:
      return "sticky-random";
    case PolicyKind::kStickyRandomProtected:
      return "sticky-random-protected";
    case PolicyKind::kDar:
      return "dar";
  }
  throw std::invalid_argument("policy_name: unknown kind");
}

namespace {

// Controller state captured per load point during the serial prologue, so
// that replication tasks never touch the (mutable) controller.
struct LoadPointState {
  net::TrafficMatrix traffic;
  std::vector<double> primary_loads;
  std::vector<int> reservations;
};

// What one (load point, seed, policy) replication produces.  Tasks write
// only their own slot; the epilogue reduces slots in the serial order.
struct ReplicationOutcome {
  double blocking{0.0};
  double alternate_fraction{0.0};
  std::vector<long long> pair_offered;  ///< fairness only
  std::vector<long long> pair_blocked;  ///< fairness only
  obs::MetricRegistry metrics;                  ///< obs.metrics only
  std::vector<obs::TraceRecord> trace_records;  ///< obs.trace only
};

// Per-replication (registry, collector, probe) triple for one instrumented
// run.  Lives on the worker's stack; results move into the slot and the
// serial epilogue merges/forwards them in slot order.
struct ReplicationObs {
  obs::MetricRegistry registry;
  obs::VectorTraceSink collector;
  obs::Probe probe;

  ReplicationObs(const SweepObsOptions& opts, double warmup, double measure)
      : collector(opts.trace != nullptr ? opts.trace->mask() : 0u),
        probe(opts.metrics ? &registry : nullptr, opts.trace != nullptr ? &collector : nullptr) {
    if (opts.metrics && opts.occupancy_samples > 0) {
      probe.grid(warmup, measure / opts.occupancy_samples, opts.occupancy_samples);
    }
  }

  template <class Slot>
  void deposit(Slot& slot) {
    slot.metrics = std::move(registry);
    slot.trace_records = std::move(collector.records);
  }
};

// --- crash-tolerant carry files (see snapshot/checkpoint.hpp) --------------
// A sweep with a checkpoint_dir persists one `task-<k>.res` per completed
// task; reruns of the SAME configuration load those instead of recomputing.
// The fingerprint below is the guard: it renders every input that shapes a
// task's numbers (doubles in exact hex-float form), so a resume against a
// changed configuration is rejected loudly instead of silently mixing runs.

// Exact, locale-independent double rendering for fingerprints.
std::string fp(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

std::string obs_fingerprint(const SweepObsOptions& obs) {
  return std::string("|metrics=") + (obs.metrics ? "1" : "0") +
         "|grid=" + std::to_string(obs.occupancy_samples) +
         "|trace=" + std::to_string(obs.trace != nullptr ? obs.trace->mask() : 0u);
}

std::string shape_fingerprint(const net::Graph& graph, const net::TrafficMatrix& nominal,
                              const std::vector<PolicyKind>& policies) {
  std::string s = "|n=" + std::to_string(graph.node_count()) +
                  "|l=" + std::to_string(graph.link_count()) + "|traffic=" + fp(nominal.total()) +
                  "|policies=";
  for (const PolicyKind kind : policies) s += policy_name(kind) + ",";
  return s;
}

}  // namespace

std::string sweep_fingerprint(const net::Graph& graph, const net::TrafficMatrix& nominal,
                              const std::vector<PolicyKind>& policies,
                              const SweepOptions& o) {
  std::string s = "sweep-v2" + shape_fingerprint(graph, nominal, policies) + "|loads=";
  for (const double factor : o.load_factors) s += fp(factor) + ",";
  s += "|seeds=" + std::to_string(o.seeds) + "|measure=" + fp(o.measure) +
       "|warmup=" + fp(o.warmup) + "|H=" + std::to_string(o.max_alt_hops) +
       "|base=" + std::to_string(o.base_seed) + "|fair=" + (o.fairness ? "1" : "0") +
       "|dar=" + std::to_string(o.dar_trunk) + obs_fingerprint(o.obs);
  return s;
}

std::string scenario_sweep_fingerprint(const net::Graph& graph,
                                       const net::TrafficMatrix& nominal,
                                       const scenario::Scenario& scen,
                                       const std::vector<PolicyKind>& policies,
                                       const ScenarioSweepOptions& o) {
  std::string s = "scenario-sweep-v2" + shape_fingerprint(graph, nominal, policies) +
                  "|events=";
  for (const scenario::ScenarioEvent& e : scen.events) {
    s += std::string(scenario::event_kind_name(e.kind)) + ":" + fp(e.time) + ":" +
         std::to_string(e.node_a) + ":" + std::to_string(e.node_b) + ":" +
         std::to_string(e.capacity) + ":" + fp(e.factor) + ",";
  }
  s += "|seeds=" + std::to_string(o.seeds) + "|measure=" + fp(o.measure) +
       "|warmup=" + fp(o.warmup) + "|H=" + std::to_string(o.max_alt_hops) +
       "|base=" + std::to_string(o.base_seed) + "|bins=" + std::to_string(o.time_bins) +
       "|load=" + fp(o.load_factor) + "|auto=" + (o.auto_resolve_protection ? "1" : "0") +
       "|ctrl=" + fp(o.control.epoch) + ":" +
       std::string(control::estimator_kind_name(o.control.estimator)) + ":" +
       fp(o.control.window) + ":" + fp(o.control.weight) + ":" + fp(o.control.deadband) +
       ":" + std::to_string(o.control.max_step) + "|dar=" + std::to_string(o.dar_trunk) +
       obs_fingerprint(o.obs);
  return s;
}

namespace {

// Live progress meter for the replication fan-out.  Writes `\r`-rewritten
// status lines to stderr ONLY (stdout stays byte-identical); each tick is
// one fprintf, which stdio serializes across worker threads.  The ETA is
// the usual linear extrapolation -- honest for the homogeneous tasks of a
// sweep, indicative otherwise.
class ProgressMeter {
 public:
  ProgressMeter(bool enabled, const char* label, std::size_t total)
      : enabled_(enabled), label_(label), total_(total),
        start_ns_(enabled ? obs::prof::wall_now_ns() : 0) {}

  /// Marks one task complete (cached tasks count too -- they are done).
  void tick() {
    if (!enabled_) return;
    const std::size_t done = ++done_;
    const double elapsed = (obs::prof::wall_now_ns() - start_ns_) * 1e-9;
    const double eta = done > 0 && done < total_
                           ? elapsed * static_cast<double>(total_ - done) /
                                 static_cast<double>(done)
                           : 0.0;
    std::fprintf(stderr, "\r%s: %zu/%zu tasks (%.0f%%), elapsed %.1fs, ETA %.1fs%s",
                 label_, done, total_,
                 total_ > 0 ? 100.0 * static_cast<double>(done) / static_cast<double>(total_)
                            : 100.0,
                 elapsed, eta, done == total_ ? "\n" : "");
  }

 private:
  bool enabled_;
  const char* label_;
  std::size_t total_;
  std::uint64_t start_ns_;
  std::atomic<std::size_t> done_{0};
};

std::string task_result_path(const std::string& dir, std::size_t task) {
  return dir + "/task-" + std::to_string(task) + ".res";
}

std::string task_checkpoint_path(const std::string& dir, std::size_t seed_index,
                                 std::size_t policy_index) {
  return dir + "/task-" + std::to_string(seed_index) + "-p" + std::to_string(policy_index) +
         ".ckpt";
}

// Rebuilds a replication's merged-metric registry from a carry file's
// flattened values: the schema is re-registered exactly as the live run
// would (same bind), then the accumulated values are imported.
obs::MetricRegistry rebuild_registry(const snapshot::ObsState& st, const SweepObsOptions& obs,
                                     double warmup, double measure, std::size_t links) {
  ReplicationObs run_obs(obs, warmup, measure);
  run_obs.probe.bind(links);
  run_obs.registry.import_accumulated(st.ints, st.reals);
  return std::move(run_obs.registry);
}

std::vector<snapshot::AppliedEventState> to_applied_state(
    const std::vector<scenario::AppliedEvent>& applied) {
  std::vector<snapshot::AppliedEventState> out;
  out.reserve(applied.size());
  for (const scenario::AppliedEvent& e : applied) {
    out.push_back(snapshot::AppliedEventState{e.time, static_cast<std::int32_t>(e.kind),
                                              e.links_changed, e.calls_killed});
  }
  return out;
}

std::vector<scenario::AppliedEvent> from_applied_state(
    const std::vector<snapshot::AppliedEventState>& applied, const std::string& path) {
  std::vector<scenario::AppliedEvent> out;
  out.reserve(applied.size());
  for (const snapshot::AppliedEventState& e : applied) {
    if (e.kind < 0 ||
        e.kind > static_cast<std::int32_t>(scenario::EventKind::kResolveProtection)) {
      throw std::invalid_argument("checkpoint '" + path + "': applied-event log names " +
                                  "unknown event kind " + std::to_string(e.kind));
    }
    out.push_back(scenario::AppliedEvent{e.time, static_cast<scenario::EventKind>(e.kind),
                                         e.links_changed, e.calls_killed});
  }
  return out;
}

void check_carry_file(const std::string& caller, const std::string& path,
                      const std::string& got_fingerprint, const std::string& want_fingerprint,
                      std::uint64_t got_task, std::size_t want_task, std::size_t got_slots,
                      std::size_t want_slots) {
  if (got_fingerprint != want_fingerprint) {
    throw std::invalid_argument(
        caller + ": checkpoint '" + path +
        "': sweep configuration changed since this file was written (delete the checkpoint "
        "directory to start over)");
  }
  if (got_task != want_task || got_slots != want_slots) {
    throw std::invalid_argument(caller + ": checkpoint '" + path +
                                "': task index or policy count does not match this sweep");
  }
}

// Thrown by the crash_after test hook to cut a scenario-sweep task down
// mid-run after its first periodic checkpoint hit disk.
struct CrashSignal {};

// Bundles each captured mid-run checkpoint with the sweep fingerprint and
// the trace records buffered so far, and writes it atomically; last capture
// wins (the resume picks up from the newest state on disk).
class TaskCheckpointSink final : public snapshot::CheckpointSink {
 public:
  std::string path;
  std::string fingerprint;
  obs::VectorTraceSink* collector{nullptr};
  bool crash_on_save{false};

  void on_checkpoint(const snapshot::ScenarioCheckpoint& ck) override {
    snapshot::SweepTaskCheckpoint tc;
    tc.fingerprint = fingerprint;
    tc.ckpt = ck;
    if (collector != nullptr) tc.trace_records = collector->records;
    snapshot::save_sweep_task_checkpoint(path, tc);
    if (crash_on_save) throw CrashSignal{};
  }
};

// Fresh policy instance for one replication.  Mirrors the per-seed
// construction of the serial protocol: stateful policies (sticky-random's
// per-pair memory, adaptive estimators) start cold on every replication.
std::unique_ptr<loss::RoutingPolicy> make_policy(PolicyKind kind, const net::Graph& graph,
                                                 const LoadPointState& load,
                                                 const std::vector<int>& capacities,
                                                 int max_alt_hops, std::uint64_t seed,
                                                 int dar_trunk) {
  switch (kind) {
    case PolicyKind::kSinglePath:
      return std::make_unique<loss::SinglePathPolicy>();
    case PolicyKind::kUncontrolledAlternate:
      return std::make_unique<loss::UncontrolledAlternatePolicy>();
    case PolicyKind::kControlledAlternate:
      return std::make_unique<core::ControlledAlternatePolicy>();
    case PolicyKind::kOttKrishnan:
      return std::make_unique<loss::OttKrishnanPolicy>(load.primary_loads, capacities);
    case PolicyKind::kAdaptiveControlled: {
      core::AdaptiveOptions adaptive;
      adaptive.max_alt_hops = max_alt_hops;
      return std::make_unique<core::AdaptiveControlledPolicy>(graph, adaptive);
    }
    case PolicyKind::kPerLengthControlled:
      return std::make_unique<core::PerLengthControlledPolicy>(graph, load.primary_loads,
                                                               max_alt_hops);
    case PolicyKind::kLeastBusy:
      return std::make_unique<loss::LeastBusyAlternatePolicy>(false);
    case PolicyKind::kLeastBusyProtected:
      return std::make_unique<loss::LeastBusyAlternatePolicy>(true);
    case PolicyKind::kStickyRandom:
      return std::make_unique<loss::StickyRandomPolicy>(graph.node_count(), seed, false);
    case PolicyKind::kStickyRandomProtected:
      return std::make_unique<loss::StickyRandomPolicy>(graph.node_count(), seed, true);
    case PolicyKind::kDar: {
      control::DarConfig dar;
      dar.trunk = dar_trunk;
      return std::make_unique<control::DarPolicy>(graph.node_count(), seed, dar);
    }
  }
  throw std::invalid_argument("make_policy: unknown kind");
}

SweepResult run_with_controller(core::Controller& controller, const net::Graph& graph,
                                const net::TrafficMatrix& nominal,
                                const std::vector<PolicyKind>& policies,
                                const SweepOptions& options) {
  if (policies.empty()) throw std::invalid_argument("run_sweep: no policies");
  if (options.seeds < 1) throw std::invalid_argument("run_sweep: seeds < 1");
  if (options.threads < 0) throw std::invalid_argument("run_sweep: threads < 0");
  if (!(options.measure > 0.0) || !(options.warmup >= 0.0)) {
    throw std::invalid_argument("run_sweep: bad horizon");
  }
  const int threads =
      options.threads == 0 ? sim::ThreadPool::hardware_threads() : options.threads;
  const double horizon = options.warmup + options.measure;
  const int n = graph.node_count();
  const std::size_t pair_count = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  const std::size_t policy_count = policies.size();
  const std::size_t seed_count = static_cast<std::size_t>(options.seeds);
  const std::vector<int> capacities = core::link_capacities(graph);

  SweepResult result;
  result.load_factors = options.load_factors;
  result.curves.resize(policy_count);
  for (std::size_t pi = 0; pi < policy_count; ++pi) {
    result.curves[pi].name = policy_name(policies[pi]);
  }

  // Serial prologue: retarget the controller once per load point and
  // snapshot the state replications depend on (protection levels, primary
  // loads).  The controller is left at the last load point, as before.
  std::vector<LoadPointState> load_points;
  {
    ALTROUTE_PROF_SCOPE(options.prof.profile, "prologue");
    load_points.reserve(options.load_factors.size());
    for (const double factor : options.load_factors) {
      LoadPointState state;
      state.traffic = nominal.scaled(factor);
      result.offered_erlangs.push_back(state.traffic.total());
      controller.retarget(state.traffic);
      if (options.erlang_bound) {
        result.erlang_bound.push_back(erlang::erlang_bound(graph, state.traffic).bound);
      }
      state.primary_loads = controller.primary_loads();
      state.reservations = controller.engine_options(options.warmup).reservations;
      load_points.push_back(std::move(state));
    }
  }

  // Fan-out: one task per (load point, seed); each replays every policy
  // against that seed's trace (common random numbers) and writes into its
  // own pre-sized slots.  Nothing below mutates shared state.
  const std::size_t task_count = load_points.size() * seed_count;
  std::vector<ReplicationOutcome> slots(task_count * policy_count);

  // Self-profiling storage, pre-sized like the result slots so the fan-out
  // only ever writes its own entries; the serial epilogue merges them in
  // task order (bit-identical at any thread count).  All empty when the
  // corresponding prof option is off.
  std::vector<obs::prof::EngineCounters> task_counters(
      options.prof.counters != nullptr ? task_count : 0);
  std::vector<obs::prof::PhaseAccumulator> task_profiles(
      options.prof.profile != nullptr ? task_count : 0);
  std::vector<double> task_wall(options.prof.task_timings != nullptr ? task_count : 0, 0.0);
  ProgressMeter progress(options.prof.progress, "run_sweep", task_count);

  // Crash-tolerant carries: tasks already completed by a previous (killed)
  // invocation of the same sweep load from disk in this serial prologue and
  // short-circuit the fan-out below.
  const bool carry = !options.checkpoint_dir.empty();
  std::vector<char> cached(task_count, 0);
  std::string fingerprint;
  if (carry) {
    fingerprint = sweep_fingerprint(graph, nominal, policies, options);
    std::filesystem::create_directories(options.checkpoint_dir);
    for (std::size_t task = 0; task < task_count; ++task) {
      const std::string path = task_result_path(options.checkpoint_dir, task);
      if (!std::filesystem::exists(path)) continue;
      const snapshot::SweepTaskResult res = snapshot::load_sweep_task_result(path);
      check_carry_file("run_sweep", path, res.fingerprint, fingerprint, res.task, task,
                       res.slots.size(), policy_count);
      for (std::size_t pi = 0; pi < policy_count; ++pi) {
        const snapshot::SweepSlotState& st = res.slots[pi];
        ReplicationOutcome& slot = slots[task * policy_count + pi];
        slot.blocking = st.blocking;
        slot.alternate_fraction = st.alternate_fraction;
        slot.pair_offered.assign(st.pair_offered.begin(), st.pair_offered.end());
        slot.pair_blocked.assign(st.pair_blocked.begin(), st.pair_blocked.end());
        if (st.obs.present != 0) {
          slot.metrics = rebuild_registry(st.obs, options.obs, options.warmup,
                                          options.measure,
                                          static_cast<std::size_t>(graph.link_count()));
        }
        slot.trace_records = st.trace_records;
      }
      cached[task] = 1;
    }
  }

  const auto run_replication = [&](std::size_t task) {
    [[maybe_unused]] obs::prof::PhaseAccumulator* const acc =
        task_profiles.empty() ? nullptr : &task_profiles[task];
    ALTROUTE_PROF_SCOPE(acc, "task");
    const std::size_t li = task / seed_count;
    const std::size_t s = task % seed_count;
    const LoadPointState& load = load_points[li];
    const std::uint64_t seed = options.base_seed + static_cast<std::uint64_t>(s);
    const sim::CallTrace trace = [&] {
      ALTROUTE_PROF_SCOPE(acc, "trace-gen");
      return sim::generate_trace(load.traffic, horizon, seed);
    }();
    for (std::size_t pi = 0; pi < policy_count; ++pi) {
      const std::unique_ptr<loss::RoutingPolicy> policy =
          make_policy(policies[pi], graph, load, capacities, options.max_alt_hops, seed,
                      options.dar_trunk);
      loss::EngineOptions engine;
      engine.warmup = options.warmup;
      engine.policy_seed = seed;
      engine.link_stats = false;
      engine.reservations = load.reservations;
      if (!task_counters.empty()) engine.counters = &task_counters[task];
      ReplicationObs run_obs(options.obs, options.warmup, options.measure);
      if (options.obs.enabled()) engine.probe = &run_obs.probe;
      const loss::RunResult run = [&] {
        ALTROUTE_PROF_SCOPE(acc, "engine");
        return loss::run_trace(graph, controller.routes(), *policy, trace, engine);
      }();
      ReplicationOutcome& slot = slots[task * policy_count + pi];
      slot.blocking = run.blocking();
      slot.alternate_fraction = run.alternate_fraction();
      if (options.obs.enabled()) run_obs.deposit(slot);
      if (options.fairness) {
        slot.pair_offered.resize(pair_count);
        slot.pair_blocked.resize(pair_count);
        for (std::size_t q = 0; q < pair_count; ++q) {
          slot.pair_offered[q] = run.per_pair[q].offered;
          slot.pair_blocked[q] = run.per_pair[q].blocked;
        }
      }
    }
  };
  const auto run_task_body = [&](std::size_t task) {
    if (cached[task]) return;
    if (options.crash_after >= 0 && static_cast<long long>(task) >= options.crash_after) {
      return;  // the simulated crash never reached this task
    }
    const std::uint64_t task_start = task_wall.empty() ? 0 : obs::prof::wall_now_ns();
    run_replication(task);
    if (!task_wall.empty()) {
      task_wall[task] = static_cast<double>(obs::prof::wall_now_ns() - task_start) * 1e-9;
    }
    if (!carry) return;
    snapshot::SweepTaskResult res;
    res.fingerprint = fingerprint;
    res.task = task;
    res.slots.reserve(policy_count);
    for (std::size_t pi = 0; pi < policy_count; ++pi) {
      ReplicationOutcome& slot = slots[task * policy_count + pi];
      snapshot::SweepSlotState st;
      st.blocking = slot.blocking;
      st.alternate_fraction = slot.alternate_fraction;
      st.pair_offered.assign(slot.pair_offered.begin(), slot.pair_offered.end());
      st.pair_blocked.assign(slot.pair_blocked.begin(), slot.pair_blocked.end());
      if (options.obs.metrics) {
        st.obs.present = 1;
        slot.metrics.export_accumulated(st.obs.ints, st.obs.reals);
      }
      st.trace_records = slot.trace_records;
      res.slots.push_back(std::move(st));
    }
    snapshot::save_sweep_task_result(task_result_path(options.checkpoint_dir, task), res);
  };
  const auto run_task = [&](std::size_t task) {
    run_task_body(task);
    progress.tick();
  };
  {
    ALTROUTE_PROF_SCOPE(options.prof.profile, "fanout");
    if (threads > 1) {
      sim::ThreadPool pool(threads);
      sim::parallel_for(&pool, task_count, run_task);
    } else {
      sim::parallel_for(nullptr, task_count, run_task);
    }
  }
  if (options.crash_after >= 0) {
    throw std::runtime_error("run_sweep: simulated crash (crash_after=" +
                             std::to_string(options.crash_after) + ")");
  }
  ALTROUTE_PROF_SCOPE(options.prof.profile, "epilogue");

  // Serial epilogue: reduce slots in (load point, policy, seed-ascending)
  // order.  Each RunningStats object receives exactly the additions of the
  // serial loop in the same order, so means/CIs match bit for bit.
  for (std::size_t li = 0; li < load_points.size(); ++li) {
    for (std::size_t pi = 0; pi < policy_count; ++pi) {
      sim::RunningStats blocking;
      sim::RunningStats alt_fraction;
      // Per-pair blocked/offered accumulated over seeds (ratio-of-sums
      // keeps rarely-offered pairs stable).
      std::vector<long long> pair_offered;
      std::vector<long long> pair_blocked;
      if (options.fairness) {
        pair_offered.assign(pair_count, 0);
        pair_blocked.assign(pair_count, 0);
      }
      for (std::size_t s = 0; s < seed_count; ++s) {
        const ReplicationOutcome& slot = slots[(li * seed_count + s) * policy_count + pi];
        blocking.add(slot.blocking);
        alt_fraction.add(slot.alternate_fraction);
        if (options.fairness) {
          for (std::size_t q = 0; q < pair_count; ++q) {
            pair_offered[q] += slot.pair_offered[q];
            pair_blocked[q] += slot.pair_blocked[q];
          }
        }
      }
      result.curves[pi].mean_blocking.push_back(blocking.mean());
      result.curves[pi].ci95.push_back(blocking.ci95_halfwidth());
      result.curves[pi].alternate_fraction.push_back(alt_fraction.mean());
      if (options.fairness) {
        std::vector<double> per_pair;
        for (std::size_t q = 0; q < pair_count; ++q) {
          if (pair_offered[q] > 0) {
            per_pair.push_back(static_cast<double>(pair_blocked[q]) /
                               static_cast<double>(pair_offered[q]));
          }
        }
        result.curves[pi].pair_blocking.push_back(sim::summarize(per_pair));
      }
    }
  }

  // Observability epilogue, also serial and in slot order: merged metrics
  // and the forwarded trace stream are bit-identical at any thread count.
  if (options.obs.metrics) {
    result.metrics.resize(policy_count);
    for (std::size_t pi = 0; pi < policy_count; ++pi) {
      for (std::size_t task = 0; task < task_count; ++task) {
        result.metrics[pi].merge(slots[task * policy_count + pi].metrics);
      }
    }
  }
  if (options.obs.trace != nullptr) {
    for (std::size_t task = 0; task < task_count; ++task) {
      for (std::size_t pi = 0; pi < policy_count; ++pi) {
        for (obs::TraceRecord record : slots[task * policy_count + pi].trace_records) {
          record.replication = static_cast<int>(task);
          record.policy = static_cast<int>(pi);
          options.obs.trace->write(record);
        }
      }
    }
  }

  // Self-profiling epilogue, serial and in task order like everything
  // above: counter totals and the merged phase table are bit-identical at
  // any thread count (durations legitimately vary; structure does not).
  if (options.prof.counters != nullptr) {
    for (const obs::prof::EngineCounters& c : task_counters) options.prof.counters->merge(c);
  }
  if (options.prof.profile != nullptr) {
    for (const obs::prof::PhaseAccumulator& acc : task_profiles) {
      options.prof.profile->merge(acc);
    }
  }
  if (options.prof.task_timings != nullptr) {
    for (std::size_t task = 0; task < task_count; ++task) {
      options.prof.task_timings->push_back(
          obs::prof::TaskTiming{options.load_factors[task / seed_count],
                                options.base_seed + static_cast<std::uint64_t>(task % seed_count),
                                task_wall[task]});
    }
  }
  return result;
}

}  // namespace

SweepResult run_sweep(const net::Graph& graph, const net::TrafficMatrix& nominal,
                      const std::vector<PolicyKind>& policies, const SweepOptions& options) {
  // Routes depend only on the graph and H: computed once and reused across
  // load points and seeds.
  core::Controller controller(graph, nominal, core::ControllerConfig{options.max_alt_hops});
  return run_with_controller(controller, graph, nominal, policies, options);
}

SweepResult run_sweep_with_routes(const net::Graph& graph, const net::TrafficMatrix& nominal,
                                  const routing::RouteTable& routes,
                                  const std::vector<PolicyKind>& policies,
                                  const SweepOptions& options) {
  core::Controller controller(graph, nominal, routes,
                              core::ControllerConfig{options.max_alt_hops});
  return run_with_controller(controller, graph, nominal, policies, options);
}

ScenarioSweepResult run_scenario_sweep(const net::Graph& graph,
                                       const net::TrafficMatrix& nominal,
                                       const scenario::Scenario& scen,
                                       const std::vector<PolicyKind>& policies,
                                       const ScenarioSweepOptions& options) {
  if (policies.empty()) throw std::invalid_argument("run_scenario_sweep: no policies");
  if (options.seeds < 1) throw std::invalid_argument("run_scenario_sweep: seeds < 1");
  if (options.threads < 0) throw std::invalid_argument("run_scenario_sweep: threads < 0");
  if (options.time_bins < 1) throw std::invalid_argument("run_scenario_sweep: time_bins < 1");
  if (!(options.measure > 0.0) || !(options.warmup >= 0.0)) {
    throw std::invalid_argument("run_scenario_sweep: bad horizon");
  }
  scen.validate();
  const int threads =
      options.threads == 0 ? sim::ThreadPool::hardware_threads() : options.threads;
  const double horizon = options.warmup + options.measure;
  const std::vector<int> capacities = core::link_capacities(graph);

  // Serial prologue: the t = 0 operating point every replication starts
  // from -- scaled traffic, min-hop primary demands, Eq. 15 levels on the
  // intact topology.  Mid-run changes are the scenario runner's business.
  LoadPointState load;
  {
    ALTROUTE_PROF_SCOPE(options.prof.profile, "prologue");
    load.traffic = nominal.scaled(options.load_factor);
    const routing::RouteTable routes =
        routing::build_min_hop_routes(graph, options.max_alt_hops);
    load.primary_loads = routing::primary_link_loads(graph, routes, load.traffic);
    load.reservations =
        core::protection_levels_from_lambda(graph, load.primary_loads, options.max_alt_hops);
  }

  struct ScenarioSlot {
    double blocking{0.0};
    long long dropped{0};
    std::vector<long long> bin_offered;
    std::vector<long long> bin_blocked;
    std::vector<scenario::AppliedEvent> applied;
    obs::MetricRegistry metrics;
    std::vector<obs::TraceRecord> trace_records;
  };
  const std::size_t policy_count = policies.size();
  const std::size_t seed_count = static_cast<std::size_t>(options.seeds);
  std::vector<ScenarioSlot> slots(seed_count * policy_count);

  // Self-profiling storage, one entry per seed task -- see
  // run_with_controller for the slot-order merge discipline.
  std::vector<obs::prof::EngineCounters> task_counters(
      options.prof.counters != nullptr ? seed_count : 0);
  std::vector<obs::prof::PhaseAccumulator> task_profiles(
      options.prof.profile != nullptr ? seed_count : 0);
  std::vector<double> task_wall(options.prof.task_timings != nullptr ? seed_count : 0, 0.0);
  ProgressMeter progress(options.prof.progress, "run_scenario_sweep", seed_count);

  // Crash-tolerant carries: completed seed tasks load from `task-<s>.res`;
  // interrupted (seed, policy) runs additionally resume from their newest
  // mid-run `task-<s>-p<pi>.ckpt`, re-seeding the trace buffer with the
  // records collected before the capture -- so the merged metrics and the
  // forwarded trace stream match an uninterrupted sweep bit for bit.
  const bool carry = !options.checkpoint_dir.empty();
  if (options.checkpoint_every > 0.0 && !carry) {
    throw std::invalid_argument("run_scenario_sweep: checkpoint_every needs checkpoint_dir");
  }
  std::vector<char> cached(seed_count, 0);
  std::string fingerprint;
  std::vector<std::unique_ptr<snapshot::SweepTaskCheckpoint>> midrun(seed_count *
                                                                     policy_count);
  if (carry) {
    fingerprint = scenario_sweep_fingerprint(graph, nominal, scen, policies, options);
    std::filesystem::create_directories(options.checkpoint_dir);
    for (std::size_t s = 0; s < seed_count; ++s) {
      const std::string path = task_result_path(options.checkpoint_dir, s);
      if (std::filesystem::exists(path)) {
        const snapshot::SweepTaskResult res = snapshot::load_sweep_task_result(path);
        check_carry_file("run_scenario_sweep", path, res.fingerprint, fingerprint, res.task,
                         s, res.slots.size(), policy_count);
        for (std::size_t pi = 0; pi < policy_count; ++pi) {
          const snapshot::SweepSlotState& st = res.slots[pi];
          ScenarioSlot& slot = slots[s * policy_count + pi];
          slot.blocking = st.blocking;
          slot.dropped = st.dropped;
          slot.bin_offered.assign(st.bin_offered.begin(), st.bin_offered.end());
          slot.bin_blocked.assign(st.bin_blocked.begin(), st.bin_blocked.end());
          slot.applied = from_applied_state(st.applied, path);
          if (st.obs.present != 0) {
            slot.metrics = rebuild_registry(st.obs, options.obs, options.warmup,
                                            options.measure,
                                            static_cast<std::size_t>(graph.link_count()));
          }
          slot.trace_records = st.trace_records;
        }
        cached[s] = 1;
        continue;
      }
      for (std::size_t pi = 0; pi < policy_count; ++pi) {
        const std::string ckpt_path = task_checkpoint_path(options.checkpoint_dir, s, pi);
        if (!std::filesystem::exists(ckpt_path)) continue;
        auto tc = std::make_unique<snapshot::SweepTaskCheckpoint>(
            snapshot::load_sweep_task_checkpoint(ckpt_path));
        check_carry_file("run_scenario_sweep", ckpt_path, tc->fingerprint, fingerprint, s, s,
                         policy_count, policy_count);
        midrun[s * policy_count + pi] = std::move(tc);
      }
    }
  }

  // Fan-out: one task per seed, each replaying every policy against that
  // seed's trace (common random numbers) into its own slots.
  const auto run_replication = [&](std::size_t s) {
    [[maybe_unused]] obs::prof::PhaseAccumulator* const acc =
        task_profiles.empty() ? nullptr : &task_profiles[s];
    ALTROUTE_PROF_SCOPE(acc, "task");
    const std::uint64_t seed = options.base_seed + static_cast<std::uint64_t>(s);
    const sim::CallTrace trace = [&] {
      ALTROUTE_PROF_SCOPE(acc, "trace-gen");
      return scenario::make_scenario_trace(load.traffic, scen, horizon, seed);
    }();
    for (std::size_t pi = 0; pi < policy_count; ++pi) {
      const std::unique_ptr<loss::RoutingPolicy> policy =
          make_policy(policies[pi], graph, load, capacities, options.max_alt_hops, seed,
                      options.dar_trunk);
      scenario::ScenarioEngineOptions engine;
      engine.warmup = options.warmup;
      engine.policy_seed = seed;
      engine.time_bins = options.time_bins;
      engine.max_alt_hops = options.max_alt_hops;
      engine.reservations = load.reservations;
      engine.auto_resolve_protection = options.auto_resolve_protection;
      if (options.control.enabled()) engine.control = &options.control;
      if (!task_counters.empty()) engine.counters = &task_counters[s];
      ReplicationObs run_obs(options.obs, options.warmup, options.measure);
      if (options.obs.enabled()) engine.probe = &run_obs.probe;
      TaskCheckpointSink sink;
      if (options.checkpoint_every > 0.0) {
        sink.path = task_checkpoint_path(options.checkpoint_dir, s, pi);
        sink.fingerprint = fingerprint;
        sink.collector = options.obs.trace != nullptr ? &run_obs.collector : nullptr;
        sink.crash_on_save =
            options.crash_after >= 0 && static_cast<long long>(s) == options.crash_after;
        engine.checkpoints = &sink;
        engine.checkpoint_every = options.checkpoint_every;
      }
      const snapshot::SweepTaskCheckpoint* resume_from = midrun[s * policy_count + pi].get();
      if (resume_from != nullptr) {
        engine.resume = &resume_from->ckpt;
        run_obs.collector.records = resume_from->trace_records;
      }
      const scenario::ScenarioRunResult r = [&] {
        ALTROUTE_PROF_SCOPE(acc, "engine");
        return scenario::run_scenario(graph, load.traffic, *policy, trace, scen, engine);
      }();
      ScenarioSlot& slot = slots[s * policy_count + pi];
      slot.blocking = r.run.blocking();
      slot.dropped = r.dropped;
      slot.bin_offered = r.run.bin_offered;
      slot.bin_blocked = r.run.bin_blocked;
      if (s == 0 && pi == 0) slot.applied = r.applied;
      if (options.obs.enabled()) run_obs.deposit(slot);
    }
  };
  const auto run_task_body = [&](std::size_t s) {
    if (cached[s]) return;
    if (options.crash_after >= 0) {
      // The task AT crash_after dies at its first mid-run capture; tasks
      // past it never start.
      const bool dies_midrun = options.checkpoint_every > 0.0 &&
                               static_cast<long long>(s) == options.crash_after;
      if (static_cast<long long>(s) >= options.crash_after && !dies_midrun) return;
      if (dies_midrun) {
        try {
          run_replication(s);
        } catch (const CrashSignal&) {
        }
        return;  // its state survives only as the .ckpt files on disk
      }
    }
    const std::uint64_t task_start = task_wall.empty() ? 0 : obs::prof::wall_now_ns();
    run_replication(s);
    if (!task_wall.empty()) {
      task_wall[s] = static_cast<double>(obs::prof::wall_now_ns() - task_start) * 1e-9;
    }
    if (!carry) return;
    snapshot::SweepTaskResult res;
    res.fingerprint = fingerprint;
    res.task = s;
    res.slots.reserve(policy_count);
    for (std::size_t pi = 0; pi < policy_count; ++pi) {
      ScenarioSlot& slot = slots[s * policy_count + pi];
      snapshot::SweepSlotState st;
      st.blocking = slot.blocking;
      st.dropped = slot.dropped;
      st.bin_offered.assign(slot.bin_offered.begin(), slot.bin_offered.end());
      st.bin_blocked.assign(slot.bin_blocked.begin(), slot.bin_blocked.end());
      st.applied = to_applied_state(slot.applied);
      if (options.obs.metrics) {
        st.obs.present = 1;
        slot.metrics.export_accumulated(st.obs.ints, st.obs.reals);
      }
      st.trace_records = slot.trace_records;
      res.slots.push_back(std::move(st));
    }
    snapshot::save_sweep_task_result(task_result_path(options.checkpoint_dir, s), res);
    for (std::size_t pi = 0; pi < policy_count; ++pi) {
      std::error_code ec;  // best effort: a stale .ckpt is superseded anyway
      std::filesystem::remove(task_checkpoint_path(options.checkpoint_dir, s, pi), ec);
    }
  };
  const auto run_task = [&](std::size_t s) {
    run_task_body(s);
    progress.tick();
  };
  {
    ALTROUTE_PROF_SCOPE(options.prof.profile, "fanout");
    if (threads > 1) {
      sim::ThreadPool pool(threads);
      sim::parallel_for(&pool, seed_count, run_task);
    } else {
      sim::parallel_for(nullptr, seed_count, run_task);
    }
  }
  if (options.crash_after >= 0) {
    throw std::runtime_error("run_scenario_sweep: simulated crash (crash_after=" +
                             std::to_string(options.crash_after) + ")");
  }
  ALTROUTE_PROF_SCOPE(options.prof.profile, "epilogue");

  // Serial epilogue: reduce in (policy, seed-ascending) order so sums and
  // RunningStats match the serial run bit for bit.
  ScenarioSweepResult result;
  const double bin_width = options.measure / options.time_bins;
  for (int b = 0; b < options.time_bins; ++b) {
    result.bin_start.push_back(options.warmup + b * bin_width);
  }
  result.applied = slots[0].applied;
  for (std::size_t pi = 0; pi < policy_count; ++pi) {
    ScenarioCurve curve;
    curve.name = policy_name(policies[pi]);
    curve.bin_offered.assign(static_cast<std::size_t>(options.time_bins), 0);
    curve.bin_blocked.assign(static_cast<std::size_t>(options.time_bins), 0);
    sim::RunningStats blocking;
    for (std::size_t s = 0; s < seed_count; ++s) {
      const ScenarioSlot& slot = slots[s * policy_count + pi];
      blocking.add(slot.blocking);
      curve.dropped += slot.dropped;
      for (int b = 0; b < options.time_bins; ++b) {
        curve.bin_offered[static_cast<std::size_t>(b)] +=
            slot.bin_offered[static_cast<std::size_t>(b)];
        curve.bin_blocked[static_cast<std::size_t>(b)] +=
            slot.bin_blocked[static_cast<std::size_t>(b)];
      }
    }
    curve.mean_blocking = blocking.mean();
    curve.ci95 = blocking.ci95_halfwidth();
    for (int b = 0; b < options.time_bins; ++b) {
      const long long offered = curve.bin_offered[static_cast<std::size_t>(b)];
      const long long blocked = curve.bin_blocked[static_cast<std::size_t>(b)];
      curve.bin_blocking.push_back(
          offered > 0 ? static_cast<double>(blocked) / static_cast<double>(offered) : 0.0);
    }
    result.curves.push_back(std::move(curve));
  }

  // Observability epilogue (serial, slot order) -- see run_with_controller.
  if (options.obs.metrics) {
    result.metrics.resize(policy_count);
    for (std::size_t pi = 0; pi < policy_count; ++pi) {
      for (std::size_t s = 0; s < seed_count; ++s) {
        result.metrics[pi].merge(slots[s * policy_count + pi].metrics);
      }
    }
  }
  if (options.obs.trace != nullptr) {
    for (std::size_t s = 0; s < seed_count; ++s) {
      for (std::size_t pi = 0; pi < policy_count; ++pi) {
        for (obs::TraceRecord record : slots[s * policy_count + pi].trace_records) {
          record.replication = static_cast<int>(s);
          record.policy = static_cast<int>(pi);
          options.obs.trace->write(record);
        }
      }
    }
  }

  // Self-profiling epilogue (serial, task order) -- see run_with_controller.
  if (options.prof.counters != nullptr) {
    for (const obs::prof::EngineCounters& c : task_counters) options.prof.counters->merge(c);
  }
  if (options.prof.profile != nullptr) {
    for (const obs::prof::PhaseAccumulator& acc : task_profiles) {
      options.prof.profile->merge(acc);
    }
  }
  if (options.prof.task_timings != nullptr) {
    for (std::size_t s = 0; s < seed_count; ++s) {
      options.prof.task_timings->push_back(
          obs::prof::TaskTiming{options.load_factor,
                                options.base_seed + static_cast<std::uint64_t>(s),
                                task_wall[s]});
    }
  }
  return result;
}

}  // namespace altroute::study
