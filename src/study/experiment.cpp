#include "study/experiment.hpp"

#include <memory>
#include <stdexcept>

#include "core/adaptive_policy.hpp"
#include "core/controlled_policy.hpp"
#include "core/controller.hpp"
#include "core/variants.hpp"
#include "erlang/erlang_bound.hpp"
#include "loss/dynamic_policies.hpp"
#include "loss/policies.hpp"
#include "sim/call_trace.hpp"

namespace altroute::study {

std::string policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kSinglePath:
      return "single-path";
    case PolicyKind::kUncontrolledAlternate:
      return "uncontrolled-alt";
    case PolicyKind::kControlledAlternate:
      return "controlled-alt";
    case PolicyKind::kOttKrishnan:
      return "ott-krishnan";
    case PolicyKind::kAdaptiveControlled:
      return "adaptive-controlled-alt";
    case PolicyKind::kPerLengthControlled:
      return "controlled-alt-perlen";
    case PolicyKind::kLeastBusy:
      return "least-busy-alt";
    case PolicyKind::kLeastBusyProtected:
      return "least-busy-alt-protected";
    case PolicyKind::kStickyRandom:
      return "sticky-random";
    case PolicyKind::kStickyRandomProtected:
      return "sticky-random-protected";
  }
  throw std::invalid_argument("policy_name: unknown kind");
}

namespace {

SweepResult run_with_controller(core::Controller& controller, const net::Graph& graph,
                                const net::TrafficMatrix& nominal,
                                const std::vector<PolicyKind>& policies,
                                const SweepOptions& options) {
  if (policies.empty()) throw std::invalid_argument("run_sweep: no policies");
  if (options.seeds < 1) throw std::invalid_argument("run_sweep: seeds < 1");
  if (!(options.measure > 0.0) || !(options.warmup >= 0.0)) {
    throw std::invalid_argument("run_sweep: bad horizon");
  }
  const double horizon = options.warmup + options.measure;
  const int n = graph.node_count();
  const std::size_t pair_count = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);

  SweepResult result;
  result.load_factors = options.load_factors;
  result.curves.resize(policies.size());
  for (std::size_t pi = 0; pi < policies.size(); ++pi) {
    result.curves[pi].name = policy_name(policies[pi]);
  }

  for (const double factor : options.load_factors) {
    const net::TrafficMatrix traffic = nominal.scaled(factor);
    result.offered_erlangs.push_back(traffic.total());
    controller.retarget(traffic);

    if (options.erlang_bound) {
      result.erlang_bound.push_back(erlang::erlang_bound(graph, traffic).bound);
    }

    std::vector<sim::RunningStats> blocking(policies.size());
    std::vector<sim::RunningStats> alt_fraction(policies.size());
    // Per-pair blocked/offered accumulated over seeds (ratio-of-sums keeps
    // rarely-offered pairs stable), one vector per policy.
    std::vector<std::vector<long long>> pair_offered;
    std::vector<std::vector<long long>> pair_blocked;
    if (options.fairness) {
      pair_offered.assign(policies.size(), std::vector<long long>(pair_count, 0));
      pair_blocked.assign(policies.size(), std::vector<long long>(pair_count, 0));
    }

    for (int s = 0; s < options.seeds; ++s) {
      const std::uint64_t seed = options.base_seed + static_cast<std::uint64_t>(s);
      const sim::CallTrace trace = sim::generate_trace(traffic, horizon, seed);

      for (std::size_t pi = 0; pi < policies.size(); ++pi) {
        std::unique_ptr<loss::RoutingPolicy> policy;
        switch (policies[pi]) {
          case PolicyKind::kSinglePath:
            policy = std::make_unique<loss::SinglePathPolicy>();
            break;
          case PolicyKind::kUncontrolledAlternate:
            policy = std::make_unique<loss::UncontrolledAlternatePolicy>();
            break;
          case PolicyKind::kControlledAlternate:
            policy = std::make_unique<core::ControlledAlternatePolicy>();
            break;
          case PolicyKind::kOttKrishnan:
            policy = std::make_unique<loss::OttKrishnanPolicy>(
                controller.primary_loads(), core::link_capacities(graph));
            break;
          case PolicyKind::kAdaptiveControlled: {
            core::AdaptiveOptions adaptive;
            adaptive.max_alt_hops = options.max_alt_hops;
            policy = std::make_unique<core::AdaptiveControlledPolicy>(graph, adaptive);
            break;
          }
          case PolicyKind::kPerLengthControlled:
            policy = std::make_unique<core::PerLengthControlledPolicy>(
                graph, controller.primary_loads(), options.max_alt_hops);
            break;
          case PolicyKind::kLeastBusy:
            policy = std::make_unique<loss::LeastBusyAlternatePolicy>(false);
            break;
          case PolicyKind::kLeastBusyProtected:
            policy = std::make_unique<loss::LeastBusyAlternatePolicy>(true);
            break;
          case PolicyKind::kStickyRandom:
            policy = std::make_unique<loss::StickyRandomPolicy>(graph.node_count(), seed, false);
            break;
          case PolicyKind::kStickyRandomProtected:
            policy = std::make_unique<loss::StickyRandomPolicy>(graph.node_count(), seed, true);
            break;
        }
        loss::EngineOptions engine = controller.engine_options(options.warmup, seed);
        engine.link_stats = false;
        const loss::RunResult run =
            loss::run_trace(graph, controller.routes(), *policy, trace, engine);
        blocking[pi].add(run.blocking());
        alt_fraction[pi].add(run.alternate_fraction());
        if (options.fairness) {
          for (std::size_t q = 0; q < pair_count; ++q) {
            pair_offered[pi][q] += run.per_pair[q].offered;
            pair_blocked[pi][q] += run.per_pair[q].blocked;
          }
        }
      }
    }

    for (std::size_t pi = 0; pi < policies.size(); ++pi) {
      result.curves[pi].mean_blocking.push_back(blocking[pi].mean());
      result.curves[pi].ci95.push_back(blocking[pi].ci95_halfwidth());
      result.curves[pi].alternate_fraction.push_back(alt_fraction[pi].mean());
      if (options.fairness) {
        std::vector<double> per_pair;
        for (std::size_t q = 0; q < pair_count; ++q) {
          if (pair_offered[pi][q] > 0) {
            per_pair.push_back(static_cast<double>(pair_blocked[pi][q]) /
                               static_cast<double>(pair_offered[pi][q]));
          }
        }
        result.curves[pi].pair_blocking.push_back(sim::summarize(per_pair));
      }
    }
  }
  return result;
}

}  // namespace

SweepResult run_sweep(const net::Graph& graph, const net::TrafficMatrix& nominal,
                      const std::vector<PolicyKind>& policies, const SweepOptions& options) {
  // Routes depend only on the graph and H: computed once and reused across
  // load points and seeds.
  core::Controller controller(graph, nominal, core::ControllerConfig{options.max_alt_hops});
  return run_with_controller(controller, graph, nominal, policies, options);
}

SweepResult run_sweep_with_routes(const net::Graph& graph, const net::TrafficMatrix& nominal,
                                  const routing::RouteTable& routes,
                                  const std::vector<PolicyKind>& policies,
                                  const SweepOptions& options) {
  core::Controller controller(graph, nominal, routes,
                              core::ControllerConfig{options.max_alt_hops});
  return run_with_controller(controller, graph, nominal, policies, options);
}

}  // namespace altroute::study
