// Study-side glue for the trace-analytics layer (obs/analysis): builds an
// AnalysisConfig from the same inputs a sweep takes, and runs/renders the
// post-pass for the --analyze / --analysis-out CLI flags.
//
// The live path is deliberately indirect: the sweep's trace records are
// formatted to JSONL bytes first and those bytes are analyzed -- the SAME
// parser and pipeline the offline `tools/altroute_analyze` applies to a
// saved --trace file -- so live and offline reports over the same run are
// byte-identical by construction (the determinism acceptance criterion).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "netgraph/graph.hpp"
#include "netgraph/traffic_matrix.hpp"
#include "obs/analysis/analyzer.hpp"
#include "obs/analysis/render.hpp"
#include "study/experiment.hpp"

namespace altroute::study {

/// Builds the analyzer config for runs on `graph` offered `nominal`:
/// Lambda^k from the min-hop primary program under the nominal matrix
/// (Eq. 1; the analyzer scales it per load factor), C^k and the "a->b"
/// link names from the graph, policy names from the sweep's request.
/// `replications_per_point` maps trace replication stamps to load points
/// (the load-sweep harness's task order is load-major, so pass the seed
/// count; pass 0 for single-point and scenario runs).
[[nodiscard]] obs::analysis::AnalysisConfig analysis_config_for(
    const net::Graph& graph, const net::TrafficMatrix& nominal, int max_alt_hops,
    const std::vector<PolicyKind>& policies, const std::vector<double>& load_factors,
    int replications_per_point, double warmup, double measure, int time_bins = 20);

/// Analyzes JSONL trace bytes, prints the text report to `out`, and writes
/// the JSON report to `json_path` when set.  Returns the report so callers
/// can inspect verdicts (e.g. exit non-zero on a Theorem-1 violation).
obs::analysis::AnalysisReport render_analysis(std::string_view jsonl,
                                              const obs::analysis::AnalysisConfig& config,
                                              std::ostream& out,
                                              const std::optional<std::string>& json_path);

}  // namespace altroute::study
