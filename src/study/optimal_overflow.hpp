// Exact analysis of the canonical overflow system -- and the true optimum.
//
// The smallest network exhibiting the paper's whole phenomenology: target
// traffic from O to D with a direct link (the primary), one two-hop
// alternate via T whose links also carry their own background primary
// traffic, everything Poisson/Exp(1):
//
//        target rate t            background a         background b
//     O =============== D      O ----link a---- T    T ----link b---- D
//         direct, C_d               C_a                   C_b
//
// A target call may be carried direct (1 circuit), carried on the
// alternate (1 circuit on EACH of a and b -- the extra resource cost that
// drives the avalanche), or lost.  Background calls are ordinary primary
// traffic on a and b: admitted whenever their link has room, lost
// otherwise.  The full state (d, x, a, b) is a tiny CTMC, so every policy
// can be evaluated EXACTLY (stationary distribution -> loss rates, no
// simulation noise), and the true minimum-loss routing policy can be
// computed by relative value iteration over the same state space.
//
// This module answers two questions the paper's references circle around
// (Nguyen [33] on the optimality of trunk reservation, Ott-Krishnan [34]):
// how much does Eq.-15 control give up against the exact optimum, and is
// the guarantee (controlled <= single-path) visible in exact arithmetic?
#pragma once

namespace altroute::study {

struct OverflowSystem {
  int direct_capacity{6};
  int via_a_capacity{6};
  int via_b_capacity{6};
  double target_rate{5.0};       ///< Erlangs O -> D
  double background_a_rate{3.0}; ///< Erlangs of link-a primary traffic
  double background_b_rate{3.0}; ///< Erlangs of link-b primary traffic
};

enum class OverflowPolicy {
  kSinglePath,    ///< direct or lost
  kUncontrolled,  ///< overflow whenever both alternate links have room
  kControlled,    ///< overflow below the Eq.-15 thresholds (H = 2)
  kOptimal,       ///< minimum total loss rate, by relative value iteration
};

struct OverflowEvaluation {
  double loss_rate{0.0};            ///< total lost calls per unit time
  double target_blocking{0.0};      ///< P(target call lost)
  double background_blocking{0.0};  ///< P(background call lost), both links pooled
  double overflow_fraction{0.0};    ///< share of carried target calls on the alternate
  int reservation_a{0};             ///< r used on link a (controlled only)
  int reservation_b{0};             ///< r used on link b (controlled only)
};

/// Exact evaluation of one policy on the system.  For kOptimal the optimal
/// stationary policy is computed first (value iteration to 1e-12) and then
/// evaluated like the fixed rules.  Throws on non-positive capacities or
/// negative rates.
[[nodiscard]] OverflowEvaluation evaluate_overflow_policy(const OverflowSystem& system,
                                                          OverflowPolicy policy);

}  // namespace altroute::study
