// Multi-seed, multi-load, multi-policy sweep harness -- the machinery
// behind every blocking-vs-load figure in the paper.
//
// The measurement protocol follows Section 4: each sample run covers 100
// time units after a 10-unit warm-up from an idle network, is repeated for
// 10 seeds, and every policy is replayed against the SAME per-seed call
// trace (common random numbers).  For the controlled scheme the protection
// levels are recomputed per load point from that load's traffic matrix.
//
// Replications are independent given their per-load-point controller state
// and their seed, so the harness can fan (load point x seed) runs across a
// fixed thread pool (SweepOptions::threads) with results bit-for-bit
// identical to the serial order -- see DESIGN.md "Parallel sweep harness".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "control/config.hpp"
#include "netgraph/graph.hpp"
#include "netgraph/traffic_matrix.hpp"
#include "obs/metrics.hpp"
#include "obs/prof/counters.hpp"
#include "obs/prof/manifest.hpp"
#include "obs/prof/profiler.hpp"
#include "obs/trace.hpp"
#include "routing/route_table.hpp"
#include "scenario/runner.hpp"
#include "sim/stats.hpp"

namespace altroute::study {

/// Which routing schemes a sweep compares.
enum class PolicyKind {
  kSinglePath,
  kUncontrolledAlternate,
  kControlledAlternate,
  kOttKrishnan,
  kAdaptiveControlled,
  /// Per-call-length protection variant (core::PerLengthControlledPolicy).
  kPerLengthControlled,
  /// Mitra-Gibbens-style least-busy alternative, unprotected / protected.
  kLeastBusy,
  kLeastBusyProtected,
  /// Gibbens-Kelly sticky random (DAR), unprotected / protected.
  kStickyRandom,
  kStickyRandomProtected,
  /// BT-style dynamic alternate routing: sticky random with a TRUNK
  /// reservation guard on every alternate leg (control::DarPolicy).  The
  /// trunk level comes from SweepOptions::dar_trunk /
  /// ScenarioSweepOptions::dar_trunk.
  kDar,
};

/// Human-readable policy name (matches RoutingPolicy::name()).
[[nodiscard]] std::string policy_name(PolicyKind kind);

/// Observability of a sweep.  Each replication instruments its runs with a
/// private (registry, sink) pair; the serial epilogue merges registries per
/// policy and forwards buffered trace records to `trace` in slot order --
/// so merged metrics and the trace stream are bit-identical at any
/// SweepOptions::threads value.
struct SweepObsOptions {
  /// Collect a merged MetricRegistry per policy (SweepResult::metrics /
  /// ScenarioSweepResult::metrics).
  bool metrics{false};
  /// When > 0 (and metrics is on), sample per-link occupancy on an
  /// event-time grid of this many points across the measurement window.
  /// Merged registries hold the SUM over replications at each grid point.
  int occupancy_samples{0};
  /// Trace destination, or nullptr for no tracing.  Records arrive in slot
  /// order, stamped with the replication index (the (load point, seed) task
  /// index for load sweeps, the seed index for scenario sweeps) and the
  /// policy's position in the request.  The sink's kind mask filters at the
  /// source.  Not owned; must outlive the sweep call.
  obs::TraceSink* trace{nullptr};

  [[nodiscard]] bool enabled() const { return metrics || trace != nullptr; }
};

/// Self-profiling of a sweep (obs/prof).  Everything here is additive
/// instrumentation: none of these options changes the sweep's results or
/// its configuration fingerprint, so checkpoint carries stay compatible.
///
/// Interaction with checkpoint carries: counters, phases, and task timings
/// describe work done by THIS process -- tasks loaded from a carry
/// directory contribute nothing (their wall time is ~0 and their engine
/// never ran here).
struct SweepProfOptions {
  /// When non-null, every replication's deterministic engine counters are
  /// accumulated into this struct, merged in slot order by the serial
  /// epilogue -- totals are bit-identical at any `threads` value.
  obs::prof::EngineCounters* counters{nullptr};
  /// When non-null, phase timings are charged here: the harness phases
  /// ("prologue", "fanout", "epilogue") on the calling thread, plus one
  /// private accumulator per task ("task", "task/trace-gen",
  /// "task/engine") merged in slot order -- so the SET of phases and their
  /// call counts are thread-count-invariant; only durations vary.
  obs::prof::PhaseAccumulator* profile{nullptr};
  /// When non-null, receives one wall-clock entry per (load point, seed)
  /// task in task order -- the thread-pool load-imbalance table.
  std::vector<obs::prof::TaskTiming>* task_timings{nullptr};
  /// Live progress meter (completed/total tasks, ETA) on stderr.  stdout
  /// is never touched, so piped output stays byte-identical.
  bool progress{false};
};

struct SweepOptions {
  /// Multipliers applied to the nominal traffic matrix, one per load point.
  std::vector<double> load_factors{1.0};
  /// Independent replications per load point.
  int seeds{10};
  /// Measured time units per replication (after warm-up).
  double measure{100.0};
  /// Warm-up time units from an idle network.
  double warmup{10.0};
  /// Maximum alternate hop count H.
  int max_alt_hops{6};
  /// Base RNG seed; replication s uses seed base + s.
  std::uint64_t base_seed{1};
  /// Worker threads for the replication fan-out: 1 runs serially on the
  /// calling thread (no pool is even constructed), N > 1 uses a fixed pool
  /// of N workers, 0 means "all hardware threads".  Results are bit-for-bit
  /// identical for every value -- each (load point, seed) replication draws
  /// from its own pre-derived RNG stream and writes into its own result
  /// slot; see DESIGN.md "Parallel sweep harness".
  int threads{1};
  /// Also evaluate the cut-set Erlang Bound per load point.
  bool erlang_bound{true};
  /// Collect per-O-D fairness summaries (costs one extra pass per run).
  bool fairness{false};
  /// Trunk reservation for PolicyKind::kDar replications (ignored unless
  /// that policy is in the request).
  int dar_trunk{1};
  /// Metrics / tracing for the sweep (off by default: zero overhead).
  SweepObsOptions obs;
  /// Self-profiling: counters / phase timings / task table / progress
  /// (off by default; never changes results or the fingerprint).
  SweepProfOptions prof;

  // --- crash tolerance (src/snapshot) --------------------------------------
  /// Directory for per-task carry files; empty disables.  Every completed
  /// (load point x seed) task writes `task-<k>.res` (atomically); a rerun
  /// of the SAME configuration loads those instead of recomputing, so a
  /// killed sweep resumes where it stopped with bit-identical results.  A
  /// file whose configuration fingerprint differs is rejected loudly.
  /// run_sweep caches at task granularity only -- the static engine's
  /// departure entries point into the shared route table, so its runs are
  /// not mid-run checkpointable (run_scenario_sweep's are).
  std::string checkpoint_dir;
  /// TESTING / CI: complete tasks with index < crash_after, skip the rest,
  /// and throw after the fan-out -- a deterministic stand-in for a crash.
  /// -1 = off.
  long long crash_after{-1};
};

/// One policy's curve across the sweep's load points.
struct PolicyCurve {
  std::string name;
  std::vector<double> mean_blocking;       ///< mean over seeds
  std::vector<double> ci95;                ///< +- half-width, Student-t
  std::vector<double> alternate_fraction;  ///< mean share of carried calls on alternates
  /// Per-load-point dispersion of per-pair blocking (mean over seeds per
  /// pair, then summarized across pairs); empty unless options.fairness.
  std::vector<sim::SampleSummary> pair_blocking;
};

struct SweepResult {
  std::vector<double> load_factors;
  std::vector<double> offered_erlangs;  ///< total offered load per point
  std::vector<PolicyCurve> curves;      ///< one per requested policy, same order
  std::vector<double> erlang_bound;     ///< empty unless options.erlang_bound
  /// One merged registry per policy (same order as curves), folded over
  /// (load point, seed) in slot order; empty unless options.obs.metrics.
  std::vector<obs::MetricRegistry> metrics;
};

/// Runs the sweep on `graph` with nominal matrix `nominal`, using the
/// standard min-hop primary program.
[[nodiscard]] SweepResult run_sweep(const net::Graph& graph,
                                    const net::TrafficMatrix& nominal,
                                    const std::vector<PolicyKind>& policies,
                                    const SweepOptions& options);

/// Same, but with an externally supplied route program (e.g. the
/// bifurcated min-loss primaries of Section 4.2.2); options.max_alt_hops
/// still governs the protection levels.
[[nodiscard]] SweepResult run_sweep_with_routes(const net::Graph& graph,
                                                const net::TrafficMatrix& nominal,
                                                const routing::RouteTable& routes,
                                                const std::vector<PolicyKind>& policies,
                                                const SweepOptions& options);

// ---------------------------------------------------------------------------
// Scenario sweeps: the robustness axis.  One scenario (mid-run failures,
// repairs, capacity changes, load swings -- see scenario/scenario.hpp) is
// replayed over many seeds and policies, producing the transient per-bin
// blocking time series around each event.  Replications fan across the
// same thread pool as run_sweep with the same bit-identical guarantee.

struct ScenarioSweepOptions {
  /// Independent replications (one trace per seed; every policy replays
  /// the same per-seed trace -- common random numbers).
  int seeds{10};
  /// Measured time units per replication (after warm-up).
  double measure{100.0};
  /// Warm-up time units from an idle network.
  double warmup{10.0};
  /// Maximum alternate hop count H (route rebuilds and Eq. 15 re-solves).
  int max_alt_hops{6};
  /// Base RNG seed; replication s uses seed base + s.
  std::uint64_t base_seed{1};
  /// Worker threads for the replication fan-out (as SweepOptions::threads:
  /// 1 = serial, 0 = all hardware threads; never changes results).
  int threads{1};
  /// Bins the measurement window splits into for the transient series.
  int time_bins{10};
  /// Multiplier applied to the nominal matrix at t = 0 (the scenario's
  /// traffic_scale events move the load from there).
  double load_factor{1.0};
  /// Forwarded to ScenarioEngineOptions::auto_resolve_protection.
  bool auto_resolve_protection{false};
  /// Adaptive control plane (src/control): control.epoch > 0 runs the
  /// closed-loop r* controller inside EVERY replication's engine --
  /// estimators are per-replication, so results stay bit-identical at any
  /// `threads` value.  Disabled by default (epoch = 0).
  control::ControlConfig control{};
  /// Trunk reservation for PolicyKind::kDar replications (ignored unless
  /// that policy is in the request).
  int dar_trunk{1};
  /// Metrics / tracing for the sweep (off by default: zero overhead).
  SweepObsOptions obs;
  /// Self-profiling: counters / phase timings / task table / progress
  /// (off by default; never changes results or the fingerprint).
  SweepProfOptions prof;

  // --- crash tolerance (src/snapshot) --------------------------------------
  /// Directory for carry files; empty disables.  Completed seed tasks write
  /// `task-<s>.res`; with checkpoint_every > 0 each in-progress (seed,
  /// policy) run additionally writes a mid-run checkpoint
  /// `task-<s>-p<pi>.ckpt` at every period (removed once the task
  /// completes).  A rerun of the same configuration loads finished tasks
  /// and resumes interrupted runs mid-flight -- results, merged metrics,
  /// and the trace stream stay bit-identical to an uninterrupted sweep.
  std::string checkpoint_dir;
  /// Mid-run checkpoint period in simulation time units (0 = completion-
  /// granular caching only).  Needs checkpoint_dir.
  double checkpoint_every{0.0};
  /// TESTING / CI: complete tasks with index < crash_after; the task AT
  /// crash_after dies at its first mid-run checkpoint (when
  /// checkpoint_every > 0) or is skipped; later tasks are skipped; then the
  /// sweep throws -- a deterministic stand-in for a crash.  -1 = off.
  long long crash_after{-1};
};

/// One policy's transient series across the scenario.
struct ScenarioCurve {
  std::string name;
  double mean_blocking{0.0};  ///< mean over seeds of per-run blocking
  double ci95{0.0};           ///< +- half-width, Student-t
  long long dropped{0};       ///< in-flight calls killed by events, all seeds
  std::vector<long long> bin_offered;  ///< summed over seeds
  std::vector<long long> bin_blocked;
  std::vector<double> bin_blocking;  ///< blocked/offered per bin (ratio of sums)
};

struct ScenarioSweepResult {
  /// Left edge of each time bin (warmup + k * width).
  std::vector<double> bin_start;
  std::vector<ScenarioCurve> curves;  ///< one per requested policy, same order
  /// Event application log of one replication (identical across seeds and
  /// policies up to kill counts; taken from the first policy, first seed).
  std::vector<scenario::AppliedEvent> applied;
  /// One merged registry per policy (same order as curves), folded over
  /// seeds in slot order; empty unless options.obs.metrics.
  std::vector<obs::MetricRegistry> metrics;
};

/// Replays `scen` on `graph` for every policy and seed.  Protection levels
/// at t = 0 come from Eq. 15 on the intact topology at the load-scaled
/// matrix (the scenario's resolve_protection events update them mid-run).
[[nodiscard]] ScenarioSweepResult run_scenario_sweep(const net::Graph& graph,
                                                     const net::TrafficMatrix& nominal,
                                                     const scenario::Scenario& scen,
                                                     const std::vector<PolicyKind>& policies,
                                                     const ScenarioSweepOptions& options);

// ---------------------------------------------------------------------------
// Configuration fingerprints.  One string rendering every input that shapes
// a sweep's numbers (doubles in exact hex-float form) -- the checkpoint
// carry files use it as their resume guard, and a run manifest records it
// as its config_fingerprint so two manifests are comparable exactly when
// their runs were.  Profiling options never enter the fingerprint: they
// cannot change results.

[[nodiscard]] std::string sweep_fingerprint(const net::Graph& graph,
                                            const net::TrafficMatrix& nominal,
                                            const std::vector<PolicyKind>& policies,
                                            const SweepOptions& options);

[[nodiscard]] std::string scenario_sweep_fingerprint(const net::Graph& graph,
                                                     const net::TrafficMatrix& nominal,
                                                     const scenario::Scenario& scen,
                                                     const std::vector<PolicyKind>& policies,
                                                     const ScenarioSweepOptions& options);

}  // namespace altroute::study
