#include "study/cli.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "obs/trace.hpp"

namespace altroute::study {

namespace {

double parse_double(const std::string& flag, const std::string& value) {
  std::size_t used = 0;
  double out = 0.0;
  try {
    out = std::stod(value, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument(flag + ": expected a number, got '" + value + "'");
  }
  if (used != value.size()) {
    throw std::invalid_argument(flag + ": trailing junk in '" + value + "'");
  }
  return out;
}

int parse_int(const std::string& flag, const std::string& value) {
  const double d = parse_double(flag, value);
  const int i = static_cast<int>(d);
  if (static_cast<double>(i) != d) {
    throw std::invalid_argument(flag + ": expected an integer, got '" + value + "'");
  }
  return i;
}

}  // namespace

CliOptions parse_cli(int argc, char** argv) {
  CliOptions options;
  const auto need_value = [&](int& i, const std::string& flag) -> std::string {
    if (i + 1 >= argc) throw std::invalid_argument(flag + ": missing value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seeds") {
      options.seeds = parse_int(arg, need_value(i, arg));
      if (*options.seeds < 1) throw std::invalid_argument("--seeds: must be >= 1");
    } else if (arg == "--measure") {
      options.measure = parse_double(arg, need_value(i, arg));
      if (!(*options.measure > 0.0)) throw std::invalid_argument("--measure: must be > 0");
    } else if (arg == "--warmup") {
      options.warmup = parse_double(arg, need_value(i, arg));
      if (!(*options.warmup >= 0.0)) throw std::invalid_argument("--warmup: must be >= 0");
    } else if (arg == "--loads") {
      std::vector<double> loads;
      std::stringstream ss(need_value(i, arg));
      std::string item;
      while (std::getline(ss, item, ',')) {
        if (!item.empty()) loads.push_back(parse_double(arg, item));
      }
      if (loads.empty()) throw std::invalid_argument("--loads: empty list");
      options.loads = std::move(loads);
    } else if (arg == "--hops") {
      options.hops = parse_int(arg, need_value(i, arg));
      if (*options.hops < 1) throw std::invalid_argument("--hops: must be >= 1");
    } else if (arg == "--threads") {
      options.threads = parse_int(arg, need_value(i, arg));
      if (*options.threads < 0) throw std::invalid_argument("--threads: must be >= 0");
    } else if (arg == "--csv") {
      options.csv = need_value(i, arg);
    } else if (arg == "--scenario") {
      options.scenario = need_value(i, arg);
    } else if (arg == "--metrics") {
      options.metrics = need_value(i, arg);
    } else if (arg == "--trace") {
      options.trace = need_value(i, arg);
    } else if (arg == "--trace-filter") {
      const std::string value = need_value(i, arg);
      if (value == "list" || value == "help") {
        options.trace_filter_list = true;
      } else {
        obs::parse_trace_filter(value);  // reject unknown kinds at parse time
        options.trace_filter = value;
      }
    } else if (arg == "--analyze") {
      options.analyze = true;
    } else if (arg == "--analysis-out") {
      options.analysis_out = need_value(i, arg);
    } else if (arg == "--fast") {
      options.fast = true;
    } else if (arg == "--control") {
      options.control = control::parse_control_spec(need_value(i, arg));
    } else if (arg == "--policy") {
      options.dar = control::parse_dar_spec(need_value(i, arg));
    } else if (arg == "--checkpoint-dir") {
      options.checkpoint_dir = need_value(i, arg);
      if (options.checkpoint_dir->empty()) {
        throw std::invalid_argument("--checkpoint-dir: empty path");
      }
    } else if (arg == "--checkpoint-every") {
      options.checkpoint_every = parse_double(arg, need_value(i, arg));
      if (!(*options.checkpoint_every > 0.0)) {
        throw std::invalid_argument("--checkpoint-every: must be > 0");
      }
    } else if (arg == "--crash-after") {
      options.crash_after = parse_int(arg, need_value(i, arg));
      if (*options.crash_after < 0) throw std::invalid_argument("--crash-after: must be >= 0");
    } else if (arg == "--checkpoint-at") {
      options.checkpoint_at = parse_double(arg, need_value(i, arg));
      if (!(*options.checkpoint_at >= 0.0)) {
        throw std::invalid_argument("--checkpoint-at: must be >= 0");
      }
    } else if (arg == "--checkpoint-out") {
      options.checkpoint_out = need_value(i, arg);
    } else if (arg == "--resume") {
      options.resume = need_value(i, arg);
    } else if (arg == "--profile") {
      options.profile = true;
    } else if (arg == "--manifest-out") {
      options.manifest_out = need_value(i, arg);
    } else if (arg == "--flight-recorder") {
      options.flight_recorder = parse_int(arg, need_value(i, arg));
      if (*options.flight_recorder < 1) {
        throw std::invalid_argument("--flight-recorder: must be >= 1");
      }
    } else if (arg == "--progress") {
      options.progress = true;
    } else {
      throw std::invalid_argument("unknown flag '" + arg +
                                  "' (known: --seeds --measure --warmup --loads --hops "
                                  "--threads --csv --scenario --metrics --trace "
                                  "--trace-filter --analyze --analysis-out --fast "
                                  "--control --policy "
                                  "--checkpoint-dir --checkpoint-every --crash-after "
                                  "--checkpoint-at --checkpoint-out --resume "
                                  "--profile --manifest-out --flight-recorder --progress)");
    }
  }
  return options;
}

RunShape shape_from_cli(const CliOptions& cli, RunShape defaults) {
  RunShape shape = defaults;
  if (cli.fast) {
    shape.seeds = std::max(2, shape.seeds / 5);
    shape.measure = std::max(10.0, shape.measure / 2.0);
  }
  if (cli.seeds) shape.seeds = *cli.seeds;
  if (cli.measure) shape.measure = *cli.measure;
  if (cli.warmup) shape.warmup = *cli.warmup;
  if (cli.threads) shape.threads = *cli.threads;
  return shape;
}

}  // namespace altroute::study
