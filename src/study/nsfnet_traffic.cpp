#include "study/nsfnet_traffic.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "netgraph/topologies.hpp"
#include "routing/shortest_paths.hpp"

namespace altroute::study {

namespace {

struct Reconstruction {
  net::TrafficMatrix traffic;
  ReconstructionQuality quality;
};

Reconstruction reconstruct() {
  const net::Graph graph = net::nsfnet_t3();
  const auto& table = net::nsfnet_table1();
  const int n = graph.node_count();
  const std::size_t links = static_cast<std::size_t>(graph.link_count());

  // Pair list and incidence: rows(A) = links, cols(A) = ordered pairs; the
  // column of a pair holds 1 for every link on its min-hop primary.
  struct Pair {
    net::NodeId src;
    net::NodeId dst;
    std::vector<net::LinkId> primary_links;
  };
  std::vector<Pair> pairs;
  pairs.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(n - 1));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const auto path = routing::min_hop_path(graph, net::NodeId(i), net::NodeId(j));
      pairs.push_back(Pair{net::NodeId(i), net::NodeId(j), path ? path->links : std::vector<net::LinkId>{}});
    }
  }

  std::vector<double> target(links, 0.0);
  for (std::size_t k = 0; k < links; ++k) target[k] = table[k].lambda;

  // Projected gradient descent on f(t) = ||A t - target||^2 / 2, t >= 0.
  // Step size 1 / ||A||^2 upper-bounded via ||A||_2^2 <= ||A||_1 * ||A||_inf.
  std::vector<int> pairs_per_link(links, 0);
  std::size_t max_hops = 1;
  for (const Pair& p : pairs) {
    max_hops = std::max(max_hops, p.primary_links.size());
    for (const net::LinkId id : p.primary_links) ++pairs_per_link[id.index()];
  }
  const int max_pairs_on_link = *std::max_element(pairs_per_link.begin(), pairs_per_link.end());
  const double step = 1.0 / (static_cast<double>(max_pairs_on_link) * static_cast<double>(max_hops));

  // Start from an even split of each link's target over the pairs crossing
  // it (a crude but strictly feasible warm start).
  std::vector<double> t(pairs.size(), 0.0);
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    double share = 0.0;
    for (const net::LinkId id : pairs[p].primary_links) {
      share += target[id.index()] / pairs_per_link[id.index()];
    }
    if (!pairs[p].primary_links.empty()) {
      t[p] = share / static_cast<double>(pairs[p].primary_links.size());
    }
  }

  std::vector<double> loads(links);
  const auto compute_loads = [&] {
    std::fill(loads.begin(), loads.end(), 0.0);
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      for (const net::LinkId id : pairs[p].primary_links) loads[id.index()] += t[p];
    }
  };

  const int kMaxIterations = 200000;
  int used = kMaxIterations;
  for (int iter = 0; iter < kMaxIterations; ++iter) {
    compute_loads();
    double sq = 0.0;
    for (std::size_t k = 0; k < links; ++k) {
      const double r = loads[k] - target[k];
      sq += r * r;
    }
    if (sq < 1e-16) {
      used = iter;
      break;
    }
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      double g = 0.0;
      for (const net::LinkId id : pairs[p].primary_links) {
        g += loads[id.index()] - target[id.index()];
      }
      t[p] = std::max(0.0, t[p] - step * g);
    }
  }

  Reconstruction out{net::TrafficMatrix(n), {}};
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    if (t[p] > 1e-9) out.traffic.set(pairs[p].src, pairs[p].dst, t[p]);
  }
  compute_loads();
  double sq = 0.0;
  double worst = 0.0;
  for (std::size_t k = 0; k < links; ++k) {
    const double r = std::abs(loads[k] - target[k]);
    worst = std::max(worst, r);
    sq += r * r;
  }
  out.quality.max_abs_residual = worst;
  out.quality.rms_residual = std::sqrt(sq / static_cast<double>(links));
  out.quality.iterations = used;
  return out;
}

const Reconstruction& cached() {
  static const Reconstruction instance = reconstruct();
  return instance;
}

}  // namespace

const net::TrafficMatrix& nsfnet_nominal_traffic() { return cached().traffic; }

const ReconstructionQuality& nsfnet_reconstruction_quality() { return cached().quality; }

}  // namespace altroute::study
