#include "study/prof_capture.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>

namespace altroute::study {

bool manifest_path_is_openmetrics(const std::string& path) {
  const auto ends_with = [&](const char* suffix) {
    const std::string s = suffix;
    return path.size() >= s.size() && path.compare(path.size() - s.size(), s.size(), s) == 0;
  };
  return ends_with(".om") || ends_with(".prom");
}

ProfCapture::ProfCapture(std::string tool)
    : tool_(std::move(tool)),
      wall_start_ns_(obs::prof::wall_now_ns()),
      cpu_start_ns_(obs::prof::process_cpu_now_ns()) {}

void ProfCapture::attach(const CliOptions& cli, SweepObsOptions& obs,
                         SweepProfOptions& prof) {
  if (cli.wants_manifest()) {
    prof.counters = &counters_;
    prof.profile = &phases_;
    prof.task_timings = &tasks_;
  }
  prof.progress = cli.progress;
  if (cli.flight_recorder.has_value()) {
    // Tee in FRONT of the run's trace sink: the ring sees everything, the
    // downstream sink still filters with its own mask, so --trace output
    // is byte-identical with or without the recorder.
    recorder_ = std::make_unique<obs::prof::FlightRecorder>(
        static_cast<std::size_t>(*cli.flight_recorder), obs::kAllTraceKinds, obs.trace);
    obs.trace = recorder_.get();
    crash_scope_ = std::make_unique<obs::prof::CrashDumpScope>(recorder_.get(), tool_);
  }
}

obs::prof::RunManifest ProfCapture::manifest(const std::string& fingerprint,
                                             int threads) const {
  obs::prof::RunManifest m;
  m.tool = tool_;
  m.git_sha = obs::prof::build_git_sha();
  m.config_fingerprint = fingerprint;
  m.threads = threads;
  m.wall_seconds = (obs::prof::wall_now_ns() - wall_start_ns_) * 1e-9;
  const std::uint64_t cpu_now = obs::prof::process_cpu_now_ns();
  m.cpu_seconds = cpu_now > cpu_start_ns_ ? (cpu_now - cpu_start_ns_) * 1e-9 : 0.0;
  m.counters = counters_;
  m.phases = phases_.phases();
  m.tasks = tasks_;
  return m;
}

void ProfCapture::emit(const CliOptions& cli, const std::string& fingerprint, int threads,
                       std::ostream& out) const {
  if (!cli.wants_manifest()) return;
  const obs::prof::RunManifest m = manifest(fingerprint, threads);
  if (cli.profile) {
    out << "\n== run profile (" << m.tool << ", git " << m.git_sha << ", " << m.threads
        << " threads) ==\n";
    out << obs::prof::phase_table(m.phases);
    out << "\n" << obs::prof::task_table(m.tasks);
    out << "\ncounters: " << m.counters.to_json() << "\n";
  }
  if (cli.manifest_out.has_value()) {
    std::ofstream file(*cli.manifest_out);
    if (!file) {
      throw std::runtime_error("--manifest-out: cannot open '" + *cli.manifest_out + "'");
    }
    file << (manifest_path_is_openmetrics(*cli.manifest_out) ? m.to_openmetrics()
                                                             : m.to_json());
  }
}

}  // namespace altroute::study
