#include "study/optimal_overflow.hpp"

#include <cmath>
#include <utility>
#include <stdexcept>
#include <vector>

#include "erlang/state_protection.hpp"

namespace altroute::study {

namespace {

// Dense state indexing over (d, x, a, b) with the joint feasibility
// x + a <= C_a and x + b <= C_b enforced at transition time; infeasible
// combinations simply have zero probability.
struct StateSpace {
  int cd, ca, cb;

  [[nodiscard]] std::size_t size() const {
    return static_cast<std::size_t>(cd + 1) * static_cast<std::size_t>(ca + 1) *
           static_cast<std::size_t>(ca + 1) * static_cast<std::size_t>(cb + 1);
  }
  [[nodiscard]] std::size_t index(int d, int x, int a, int b) const {
    return ((static_cast<std::size_t>(d) * (ca + 1) + static_cast<std::size_t>(x)) *
                (ca + 1) +
            static_cast<std::size_t>(a)) *
               (cb + 1) +
           static_cast<std::size_t>(b);
  }
};

enum class Action { kReject, kDirect, kAlternate };

}  // namespace

OverflowEvaluation evaluate_overflow_policy(const OverflowSystem& system,
                                            OverflowPolicy policy) {
  const int cd = system.direct_capacity;
  const int ca = system.via_a_capacity;
  const int cb = system.via_b_capacity;
  if (cd <= 0 || ca <= 0 || cb <= 0) {
    throw std::invalid_argument("evaluate_overflow_policy: capacities must be positive");
  }
  const double t = system.target_rate;
  const double la = system.background_a_rate;
  const double lb = system.background_b_rate;
  if (!(t >= 0.0) || !(la >= 0.0) || !(lb >= 0.0)) {
    throw std::invalid_argument("evaluate_overflow_policy: negative rate");
  }

  OverflowEvaluation out;
  if (policy == OverflowPolicy::kControlled) {
    out.reservation_a = erlang::min_state_protection(la, ca, 2);
    out.reservation_b = erlang::min_state_protection(lb, cb, 2);
  }

  const StateSpace space{cd, ca, cb};
  const double uniformization = t + la + lb + cd + ca + cb + 1.0;

  const auto feasible = [&](int d, int x, int a, int b) {
    return d <= cd && x + a <= ca && x + b <= cb;
  };
  const auto can_alternate = [&](int x, int a, int b) {
    if (x + a + 1 > ca || x + b + 1 > cb) return false;
    if (policy == OverflowPolicy::kControlled) {
      if (x + a + 1 > ca - out.reservation_a) return false;
      if (x + b + 1 > cb - out.reservation_b) return false;
    }
    return true;
  };

  // The fixed rules' action in a given state (kOptimal fills this from the
  // value iteration below).
  std::vector<Action> action(space.size(), Action::kReject);
  const auto fixed_action = [&](int d, int x, int a, int b) {
    if (d < cd) return Action::kDirect;
    if (policy != OverflowPolicy::kSinglePath && can_alternate(x, a, b)) {
      return Action::kAlternate;
    }
    return Action::kReject;
  };

  if (policy == OverflowPolicy::kOptimal) {
    // Relative value iteration for the average-cost MDP: the only decision
    // is the target-arrival action; background arrivals and departures are
    // uncontrolled.  Cost 1 per lost call (target or background).
    // In-place (Gauss-Seidel-style) sweeps converge much faster than
    // Jacobi, and the GREEDY POLICY stabilizes long before the values do,
    // so iteration stops once three consecutive extractions (50 sweeps
    // apart) agree, with a Bellman-residual fallback.
    std::vector<double> v(space.size(), 0.0);
    const auto greedy = [&](std::vector<Action>& into) {
      for (int d = 0; d <= cd; ++d) {
        for (int x = 0; x <= ca; ++x) {
          for (int a = 0; a + x <= ca; ++a) {
            for (int b = 0; b + x <= cb; ++b) {
              Action best_action = Action::kReject;
              double best = 1.0 + v[space.index(d, x, a, b)];
              if (x + a + 1 <= ca && x + b + 1 <= cb &&
                  v[space.index(d, x + 1, a, b)] < best) {
                best = v[space.index(d, x + 1, a, b)];
                best_action = Action::kAlternate;
              }
              // Direct evaluated last with <= so ties prefer the cheap path.
              if (d < cd && v[space.index(d + 1, x, a, b)] <= best) {
                best_action = Action::kDirect;
              }
              into[space.index(d, x, a, b)] = best_action;
            }
          }
        }
      }
    };
    std::vector<Action> previous(space.size(), Action::kReject);
    std::vector<Action> current(space.size(), Action::kReject);
    std::vector<double> v_previous(space.size(), 0.0);
    int stable_extractions = 0;
    for (int sweep = 0; sweep < 1000000; ++sweep) {
      v_previous = v;
      for (int d = 0; d <= cd; ++d) {
        for (int x = 0; x <= ca; ++x) {
          for (int a = 0; a + x <= ca; ++a) {
            for (int b = 0; b + x <= cb; ++b) {
              double value = 0.0;
              // Target arrival: pick the cheapest action.
              double best = 1.0 + v[space.index(d, x, a, b)];  // reject costs one call
              if (d < cd) best = std::min(best, v[space.index(d + 1, x, a, b)]);
              if (x + a + 1 <= ca && x + b + 1 <= cb) {
                best = std::min(best, v[space.index(d, x + 1, a, b)]);
              }
              value += t * best;
              // Background arrivals: forced accept when room, else lost.
              value += la * (x + a + 1 <= ca ? v[space.index(d, x, a + 1, b)]
                                             : 1.0 + v[space.index(d, x, a, b)]);
              value += lb * (x + b + 1 <= cb ? v[space.index(d, x, a, b + 1)]
                                             : 1.0 + v[space.index(d, x, a, b)]);
              // Departures.
              value += d * v[space.index(d - (d > 0 ? 1 : 0), x, a, b)];
              value += x * v[space.index(d, x - (x > 0 ? 1 : 0), a, b)];
              value += a * v[space.index(d, x, a - (a > 0 ? 1 : 0), b)];
              value += b * v[space.index(d, x, a, b - (b > 0 ? 1 : 0))];
              // Dummy self-loop to complete the uniformization.
              value += (uniformization - t - la - lb - d - x - a - b) *
                       v[space.index(d, x, a, b)];
              v[space.index(d, x, a, b)] = value / uniformization;
            }
          }
        }
      }
      const double base = v[0];
      for (double& value : v) value -= base;
      // Convergence on the RELATIVE values over FEASIBLE states only: the
      // raw updates drift upward by the average cost per sweep (removed by
      // the base subtraction), and the infeasible holes of the dense
      // indexing are never updated, so including them would freeze the
      // measured delta at the base shift.
      double delta = 0.0;
      for (int d = 0; d <= cd; ++d) {
        for (int x = 0; x <= ca; ++x) {
          for (int a = 0; a + x <= ca; ++a) {
            for (int b = 0; b + x <= cb; ++b) {
              const std::size_t s = space.index(d, x, a, b);
              delta = std::max(delta, std::abs(v[s] - v_previous[s]));
            }
          }
        }
      }
      if (delta < 1e-12) break;
      if (sweep % 100 == 99) {
        greedy(current);
        if (current == previous) {
          // Four agreeing extractions spanning 400 sweeps, with the values
          // already moving slowly: the argmin structure has locked in even
          // though the relative values keep polishing their last digits.
          if (++stable_extractions >= 4 && delta < 1e-6) break;
        } else {
          stable_extractions = 0;
          previous.swap(current);
        }
      }
    }
    greedy(action);
  } else {
    for (int d = 0; d <= cd; ++d) {
      for (int x = 0; x <= ca; ++x) {
        for (int a = 0; a + x <= ca; ++a) {
          for (int b = 0; b + x <= cb; ++b) {
            action[space.index(d, x, a, b)] = fixed_action(d, x, a, b);
          }
        }
      }
    }
  }

  // Exact stationary distribution of the induced CTMC.  Enumerate the
  // feasible states compactly, build the sparse incoming-arc lists once,
  // and run Gauss-Seidel on the balance equations
  //     pi(s) * outrate(s) = sum over arcs s' -> s of pi(s') * rate,
  // which converges orders of magnitude faster than uniformized power
  // iteration on this chain.
  std::vector<std::size_t> compact(space.size(), static_cast<std::size_t>(-1));
  std::vector<std::size_t> dense_of;
  for (int d = 0; d <= cd; ++d) {
    for (int x = 0; x <= ca; ++x) {
      for (int a = 0; a + x <= ca; ++a) {
        for (int b = 0; b + x <= cb; ++b) {
          compact[space.index(d, x, a, b)] = dense_of.size();
          dense_of.push_back(space.index(d, x, a, b));
        }
      }
    }
  }
  const std::size_t n_states = dense_of.size();
  std::vector<std::vector<std::pair<std::size_t, double>>> incoming(n_states);
  std::vector<double> outrate(n_states, 0.0);
  const auto add_arc = [&](std::size_t from_dense, std::size_t to_dense, double rate) {
    const std::size_t from = compact[from_dense];
    const std::size_t to = compact[to_dense];
    incoming[to].emplace_back(from, rate);
    outrate[from] += rate;
  };
  for (int d = 0; d <= cd; ++d) {
    for (int x = 0; x <= ca; ++x) {
      for (int a = 0; a + x <= ca; ++a) {
        for (int b = 0; b + x <= cb; ++b) {
          const std::size_t s = space.index(d, x, a, b);
          switch (action[s]) {
            case Action::kDirect:
              add_arc(s, space.index(d + 1, x, a, b), t);
              break;
            case Action::kAlternate:
              add_arc(s, space.index(d, x + 1, a, b), t);
              break;
            case Action::kReject:
              break;  // lost call: no state change
          }
          if (x + a + 1 <= ca) add_arc(s, space.index(d, x, a + 1, b), la);
          if (x + b + 1 <= cb) add_arc(s, space.index(d, x, a, b + 1), lb);
          if (d > 0) add_arc(s, space.index(d - 1, x, a, b), d);
          if (x > 0) add_arc(s, space.index(d, x - 1, a, b), x);
          if (a > 0) add_arc(s, space.index(d, x, a - 1, b), a);
          if (b > 0) add_arc(s, space.index(d, x, a, b - 1), b);
        }
      }
    }
  }
  std::vector<double> pi_compact(n_states, 1.0 / static_cast<double>(n_states));
  std::vector<double> pi_previous(n_states);
  for (int sweep = 0; sweep < 100000; ++sweep) {
    pi_previous = pi_compact;
    for (std::size_t s = 0; s < n_states; ++s) {
      if (outrate[s] <= 0.0) continue;  // absorbing is impossible here, but guard
      double inflow = 0.0;
      for (const auto& [from, rate] : incoming[s]) inflow += pi_compact[from] * rate;
      pi_compact[s] = inflow / outrate[s];
    }
    double total = 0.0;
    for (const double mass : pi_compact) total += mass;
    for (double& mass : pi_compact) mass /= total;
    // Convergence is measured on the NORMALIZED iterates: the raw balance
    // update can drift in overall scale without the solution changing.
    double delta = 0.0;
    for (std::size_t s = 0; s < n_states; ++s) {
      delta = std::max(delta, std::abs(pi_compact[s] - pi_previous[s]));
    }
    if (delta < 1e-13) break;
  }
  // Spread back onto the dense indexing used by the accounting loop below.
  std::vector<double> pi(space.size(), 0.0);
  for (std::size_t s = 0; s < n_states; ++s) pi[dense_of[s]] = pi_compact[s];

  // Loss rates from the stationary distribution (PASTA).
  double target_lost_rate = 0.0;
  double background_lost_rate = 0.0;
  double overflow_accept_rate = 0.0;
  double direct_accept_rate = 0.0;
  for (int d = 0; d <= cd; ++d) {
    for (int x = 0; x <= ca; ++x) {
      for (int a = 0; a + x <= ca; ++a) {
        for (int b = 0; b + x <= cb; ++b) {
          if (!feasible(d, x, a, b)) continue;
          const std::size_t s = space.index(d, x, a, b);
          const double mass = pi[s];
          if (mass == 0.0) continue;
          switch (action[s]) {
            case Action::kReject:
              target_lost_rate += mass * t;
              break;
            case Action::kDirect:
              direct_accept_rate += mass * t;
              break;
            case Action::kAlternate:
              overflow_accept_rate += mass * t;
              break;
          }
          if (x + a + 1 > ca) background_lost_rate += mass * la;
          if (x + b + 1 > cb) background_lost_rate += mass * lb;
        }
      }
    }
  }
  out.loss_rate = target_lost_rate + background_lost_rate;
  out.target_blocking = t > 0.0 ? target_lost_rate / t : 0.0;
  out.background_blocking = (la + lb) > 0.0 ? background_lost_rate / (la + lb) : 0.0;
  const double carried = direct_accept_rate + overflow_accept_rate;
  out.overflow_fraction = carried > 0.0 ? overflow_accept_rate / carried : 0.0;
  return out;
}

}  // namespace altroute::study
