// Text-table and CSV rendering of experiment results.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "study/experiment.hpp"

namespace altroute::study {

/// Fixed-width text table builder: set headers, append rows of cells,
/// render with aligned columns.  Used by every bench binary so all paper
/// reproductions share one look.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Appends one row; must have as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Renders with 2-space gutters and a dash rule under the header.
  [[nodiscard]] std::string str() const;

  /// Renders as RFC-4180-ish CSV (no quoting needed for our cells).
  [[nodiscard]] std::string csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of significant decimals.
[[nodiscard]] std::string fmt(double value, int decimals = 4);

/// Formats a blocking probability for log-style tables: scientific with 3
/// significant digits ("2.31e-04"), or "0" when exactly zero.
[[nodiscard]] std::string fmt_sci(double value);

/// Builds the standard blocking-vs-load table of a sweep: one row per load
/// point, one column per policy (mean +- ci), optional Erlang Bound column.
/// `scientific` selects fmt_sci for the log-scale figures.
[[nodiscard]] TextTable sweep_table(const SweepResult& result, bool scientific = false);

/// Builds the transient time series of a scenario sweep: one row per time
/// bin ("t" = the bin's left edge), one blocking column per policy, and a
/// trailing "events" column marking which scenario events fired inside the
/// bin (empty when none did).
[[nodiscard]] TextTable scenario_table(const ScenarioSweepResult& result);

/// Builds the merged-metrics summary of an instrumented sweep: one row per
/// instrument (counters by value, histograms by mean, link counters by
/// total), one column per policy.  Registries must share a schema (they do
/// by construction -- every replication binds the same probe).  Throws
/// std::invalid_argument when `metrics` is empty or sizes disagree.
[[nodiscard]] TextTable metrics_table(const std::vector<obs::MetricRegistry>& metrics,
                                      const std::vector<std::string>& policy_names);

/// Convenience overloads pulling the policy names from the result's curves.
[[nodiscard]] TextTable metrics_table(const SweepResult& result);
[[nodiscard]] TextTable metrics_table(const ScenarioSweepResult& result);

/// Renders merged per-policy metrics as one deterministic JSON object
/// {"policy-name": <registry JSON>, ...} in request order (the --metrics
/// file format).
[[nodiscard]] std::string metrics_json(const std::vector<obs::MetricRegistry>& metrics,
                                       const std::vector<std::string>& policy_names);

/// Writes `content` to `path`, creating/truncating; throws on failure.
void write_file(const std::string& path, const std::string& content);

}  // namespace altroute::study
