// Text-table and CSV rendering of experiment results.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "study/experiment.hpp"

namespace altroute::study {

/// Fixed-width text table builder: set headers, append rows of cells,
/// render with aligned columns.  Used by every bench binary so all paper
/// reproductions share one look.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Appends one row; must have as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Renders with 2-space gutters and a dash rule under the header.
  [[nodiscard]] std::string str() const;

  /// Renders as RFC-4180-ish CSV (no quoting needed for our cells).
  [[nodiscard]] std::string csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of significant decimals.
[[nodiscard]] std::string fmt(double value, int decimals = 4);

/// Formats a blocking probability for log-style tables: scientific with 3
/// significant digits ("2.31e-04"), or "0" when exactly zero.
[[nodiscard]] std::string fmt_sci(double value);

/// Builds the standard blocking-vs-load table of a sweep: one row per load
/// point, one column per policy (mean +- ci), optional Erlang Bound column.
/// `scientific` selects fmt_sci for the log-scale figures.
[[nodiscard]] TextTable sweep_table(const SweepResult& result, bool scientific = false);

/// Builds the transient time series of a scenario sweep: one row per time
/// bin ("t" = the bin's left edge), one blocking column per policy, and a
/// trailing "events" column marking which scenario events fired inside the
/// bin (empty when none did).
[[nodiscard]] TextTable scenario_table(const ScenarioSweepResult& result);

/// Writes `content` to `path`, creating/truncating; throws on failure.
void write_file(const std::string& path, const std::string& content);

}  // namespace altroute::study
