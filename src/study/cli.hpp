// Tiny command-line parser shared by the bench/experiment binaries.
//
// Supported flags (all optional; benches supply paper defaults):
//   --seeds N        replications per load point
//   --measure T      measured time units (paper: 100)
//   --warmup T       warm-up time units (paper: 10)
//   --loads a,b,c    load factors / offered loads, comma separated
//   --hops H         maximum alternate hop count
//   --threads N      worker threads for replications (0 = all hardware)
//   --csv PATH       also write the main table as CSV
//   --scenario PATH  JSON scenario file (benches with a scenario section
//                    replay it instead of their built-in one)
//   --metrics PATH   write merged per-policy metrics as JSON
//   --trace PATH     write the structured event trace as JSON lines
//   --trace-filter K comma-separated record kinds for --trace
//                    (call_admitted,call_blocked,... ; default all);
//                    the special values `list` / `help` make the binary
//                    print every valid kind name and exit
//   --analyze        run the trace-analytics post-pass (Theorem-1 audit,
//                    attribution matrix, CIs) and print the report
//   --analysis-out P also write the analysis report as JSON to P
//                    (implies --analyze)
//   --fast           shrink seeds/horizon for a quick smoke run
//
// Adaptive control plane (src/control; DESIGN.md "Control plane"):
//   --control SPEC   comma-separated key=value pairs turning on the
//                    closed-loop r* controller in scenario sweeps, e.g.
//                    "epoch=5,estimator=ewma,window=2,deadband=0.1"
//                    (keys: epoch, estimator=mle|ewma, window, weight,
//                    deadband, max-step)
//   --policy SPEC    adds a dynamic alternate policy to the compared
//                    schemes; currently "dar" or "dar,trunk=N"
//                    (sticky-random with trunk reservation)
//
// Checkpoint / resume (src/snapshot; see DESIGN.md "Checkpoint & fork"):
//   --checkpoint-dir D    sweep carry directory: completed tasks persist
//                         task-<k>.res there and a rerun of the same
//                         configuration resumes instead of recomputing
//   --checkpoint-every T  scenario sweeps also write mid-run checkpoints
//                         every T sim-time units (needs --checkpoint-dir)
//   --crash-after K       TESTING: die deterministically around task K
//                         (completed tasks stay on disk; resume continues)
//   --checkpoint-at T     single-run binaries: capture state at sim time T
//   --checkpoint-out F    write the captured state to F (.ckpt)
//   --resume F            single-run binaries: restore from F and continue
//
// Profiling / run health (src/obs/prof; DESIGN.md "Profiling & run health"):
//   --profile             print the phase-timing and per-task duration
//                         tables plus the deterministic engine counters
//   --manifest-out F      write the run manifest (git sha, configuration
//                         fingerprint, phase/counter totals, task table)
//                         to F: JSON, or OpenMetrics text exposition when
//                         F ends in .om or .prom
//   --flight-recorder N   keep the last N trace records in a ring buffer,
//                         dumped to stderr on a fatal signal.  Teed in
//                         FRONT of any --trace sink, so the trace file's
//                         bytes never change
//   --progress            live completed/total + ETA meter on stderr
//                         (stdout stays byte-identical)
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "control/config.hpp"

namespace altroute::study {

struct CliOptions {
  std::optional<int> seeds;
  std::optional<double> measure;
  std::optional<double> warmup;
  std::optional<std::vector<double>> loads;
  std::optional<int> hops;
  std::optional<int> threads;
  std::optional<std::string> csv;
  std::optional<std::string> scenario;
  std::optional<std::string> metrics;
  std::optional<std::string> trace;
  /// Kind list for --trace (see obs::parse_trace_filter); unset = all.
  std::optional<std::string> trace_filter;
  /// `--trace-filter list` / `help`: the binary should print
  /// obs::trace_kind_list() and exit 0 instead of running.
  bool trace_filter_list{false};
  /// Run the analysis post-pass and print the text report.
  bool analyze{false};
  /// Also write the analysis report as JSON here (implies analyze).
  std::optional<std::string> analysis_out;
  bool fast{false};
  /// Parsed --control spec (validated at parse time); unset = control off.
  /// Binaries with a scenario section forward it to
  /// ScenarioSweepOptions::control.
  std::optional<control::ControlConfig> control;
  /// Parsed --policy spec; set = add PolicyKind::kDar with this trunk
  /// level to the compared schemes.
  std::optional<control::DarConfig> dar;
  /// Sweep carry directory (SweepOptions/ScenarioSweepOptions
  /// checkpoint_dir): resume a killed sweep with bit-identical results.
  std::optional<std::string> checkpoint_dir;
  /// Mid-run checkpoint period for scenario sweeps (checkpoint_every).
  std::optional<double> checkpoint_every;
  /// Deterministic crash-injection task index (crash_after); testing/CI.
  std::optional<long long> crash_after;
  /// Single-run capture time / output path / resume source.
  std::optional<double> checkpoint_at;
  std::optional<std::string> checkpoint_out;
  std::optional<std::string> resume;
  /// Print the phase/task profile tables and counter totals.
  bool profile{false};
  /// Write the run manifest here (JSON; OpenMetrics text for .om/.prom).
  std::optional<std::string> manifest_out;
  /// Flight-recorder ring capacity in trace records; unset = off.
  std::optional<int> flight_recorder;
  /// Live progress meter on stderr (SweepProfOptions::progress).
  bool progress{false};

  /// True when any analysis output was requested.
  [[nodiscard]] bool wants_analysis() const { return analyze || analysis_out.has_value(); }

  /// True when the run should assemble a RunManifest (--profile and/or
  /// --manifest-out).
  [[nodiscard]] bool wants_manifest() const { return profile || manifest_out.has_value(); }

  /// True when any prof/observability wiring beyond the defaults was
  /// requested (the tools use this to decide whether to run their
  /// instrumented sweep at all).
  [[nodiscard]] bool wants_prof() const {
    return wants_manifest() || flight_recorder.has_value() || progress;
  }
};

/// Parses argv; throws std::invalid_argument (with a usage hint) on unknown
/// flags or malformed values.
[[nodiscard]] CliOptions parse_cli(int argc, char** argv);

/// Applies --seeds/--measure/--warmup/--fast to a value set of paper
/// defaults.  --fast divides seeds by 5 (min 2) and halves the horizon.
struct RunShape {
  int seeds{10};
  double measure{100.0};
  double warmup{10.0};
  /// Replication worker threads (SweepOptions::threads): 1 = serial,
  /// 0 = all hardware threads.  Never changes results, only wall clock.
  int threads{1};
};
[[nodiscard]] RunShape shape_from_cli(const CliOptions& cli, RunShape defaults = {});

}  // namespace altroute::study
