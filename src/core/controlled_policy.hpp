// Controlled alternate routing -- the paper's contribution.
//
// Tier 1: the call tries its SI primary path; admission needs only a free
// circuit per link.  Tier 2: if the primary is blocked, loop-free alternate
// paths of at most H hops are probed in order of increasing length, and a
// link admits the alternate-class set-up only while its occupancy is below
// C^k - r^k.  With r^k chosen per Eq. 15 (see core/protection.hpp), every
// accepted alternate call improves on single-path routing in expectation.
//
// The reservation levels live in NetworkState (each link "computes its own
// threshold"); this policy simply probes alternates under the
// alternate-call admission rule, which is the entirety of the distributed
// control -- no global state, no link-state advertisement.
#pragma once

#include "loss/policy.hpp"

namespace altroute::core {

class ControlledAlternatePolicy final : public loss::RoutingPolicy {
 public:
  [[nodiscard]] loss::RouteDecision route(const loss::RoutingContext& ctx) override;
  [[nodiscard]] std::string_view name() const override { return "controlled-alt"; }
};

}  // namespace altroute::core
