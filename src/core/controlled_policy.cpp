#include "core/controlled_policy.hpp"

#include <limits>

namespace altroute::core {

loss::RouteDecision ControlledAlternatePolicy::route(const loss::RoutingContext& ctx) {
  loss::RouteDecision d;
  const std::size_t p = loss::pick_primary(ctx.routes, ctx.primary_pick);
  if (p == std::numeric_limits<std::size_t>::max()) return d;
  const routing::Path& primary = ctx.routes.primaries[p];
  if (ctx.state.path_admissible(primary, loss::CallClass::kPrimary, ctx.bandwidth)) {
    d.path = &primary;
    d.call_class = loss::CallClass::kPrimary;
    return d;
  }
  for (const routing::Path& alt : ctx.routes.alternates) {
    if (alt == primary) continue;
    ++d.alternates_probed;
    if (ctx.state.path_admissible(alt, loss::CallClass::kAlternate, ctx.bandwidth)) {
      d.path = &alt;
      d.call_class = loss::CallClass::kAlternate;
      return d;
    }
  }
  return d;
}

}  // namespace altroute::core
