// Network-wide state-protection tables (Eq. 15 applied per link).
#pragma once

#include <vector>

#include "netgraph/graph.hpp"
#include "netgraph/traffic_matrix.hpp"
#include "routing/route_table.hpp"

namespace altroute::core {

/// Per-link capacities of a graph, indexed by LinkId.
[[nodiscard]] std::vector<int> link_capacities(const net::Graph& graph);

/// Computes every link's smallest admissible reservation level from the
/// primary demands Lambda^k implied by (routes, traffic) via Eq. 1, for the
/// given maximum alternate hop count H.  This is exactly the computation
/// each link would perform locally from its own Lambda estimate -- done
/// here centrally for the simulator, as in the paper's experiments ("we
/// simply assumed that a link knew Lambda^k a priori").
[[nodiscard]] std::vector<int> protection_levels(const net::Graph& graph,
                                                 const routing::RouteTable& routes,
                                                 const net::TrafficMatrix& traffic,
                                                 int max_alt_hops);

/// Same, but from an explicit Lambda vector (e.g. one produced by the
/// online estimator).
[[nodiscard]] std::vector<int> protection_levels_from_lambda(const net::Graph& graph,
                                                             const std::vector<double>& lambda,
                                                             int max_alt_hops);

}  // namespace altroute::core
