// Provably-safe variants of the state-protection control.
//
// The paper's baseline uses one network-wide H (the maximum alternate hop
// count) in Eq. 15.  Two refinements keep the Theorem-1 guarantee while
// reserving less:
//
//  * Per-link H^k (the paper's footnote 5): link k only ever carries
//    alternate calls of at most H^k = max hops over the alternates that
//    actually traverse k, so it may protect with bound 1/H^k >= 1/H.
//
//  * Per-call-length thresholds: an alternate call on an h-hop path
//    displaces at most h * max-per-link-bound primary calls, so each link
//    on the path only needs its bound below 1/h for THIS call.  Shorter
//    alternates then see much smaller reservations -- without the
//    inflation the paper warns about for schemes that additionally
//    prioritize short paths against long ones (here no alternate protects
//    against another; links still only distinguish primary vs alternate,
//    plus the set-up packet's hop count, which it carries anyway).
#pragma once

#include <vector>

#include "loss/policy.hpp"
#include "netgraph/graph.hpp"
#include "routing/route_table.hpp"

namespace altroute::core {

/// H^k per link: the maximum hop count over all alternate paths in
/// `routes` that traverse link k, excluding paths identical to their
/// pair's primary (those travel as primary-class calls).  Links traversed
/// by no alternate get 1 (Eq. 15 then yields r = 0).
[[nodiscard]] std::vector<int> per_link_max_alt_hops(const net::Graph& graph,
                                                     const routing::RouteTable& routes);

/// Eq. 15 levels using the per-link H^k instead of a global H.
[[nodiscard]] std::vector<int> protection_levels_per_link_h(const net::Graph& graph,
                                                            const routing::RouteTable& routes,
                                                            const net::TrafficMatrix& traffic);

/// Controlled alternate routing with per-call-length thresholds: an
/// alternate call whose path has h hops is admitted at a link only while
/// occupancy < C - r(lambda, C, h).  The r tables for every h in
/// [1, max_alt_hops] are precomputed at construction.
class PerLengthControlledPolicy final : public loss::RoutingPolicy {
 public:
  /// `lambda` is the per-link primary demand (Eq. 1); thresholds follow.
  PerLengthControlledPolicy(const net::Graph& graph, const std::vector<double>& lambda,
                            int max_alt_hops);

  [[nodiscard]] loss::RouteDecision route(const loss::RoutingContext& ctx) override;
  [[nodiscard]] std::string_view name() const override { return "controlled-alt-perlen"; }

  /// Reservation applied to an alternate of `hops` hops at `link`
  /// (exposed for tests).
  [[nodiscard]] int reservation(net::LinkId link, int hops) const {
    return r_by_h_[static_cast<std::size_t>(hops)][link.index()];
  }

 private:
  [[nodiscard]] bool admissible(const loss::RoutingContext& ctx, const routing::Path& path) const;

  std::vector<std::vector<int>> r_by_h_;  // [hop count][link]
};

}  // namespace altroute::core
