#include "core/adaptive_policy.hpp"

#include <limits>
#include <stdexcept>

#include "core/protection.hpp"
#include "erlang/state_protection.hpp"

namespace altroute::core {

AdaptiveControlledPolicy::AdaptiveControlledPolicy(const net::Graph& graph,
                                                   const AdaptiveOptions& options)
    : capacity_(link_capacities(graph)), options_(options) {
  if (!(options.window > 0.0)) throw std::invalid_argument("AdaptiveOptions: window <= 0");
  if (!(options.ewma_weight > 0.0) || options.ewma_weight > 1.0) {
    throw std::invalid_argument("AdaptiveOptions: ewma_weight out of (0, 1]");
  }
  if (options.max_alt_hops < 1) throw std::invalid_argument("AdaptiveOptions: H < 1");
  if (!(options.initial_lambda >= 0.0)) {
    throw std::invalid_argument("AdaptiveOptions: negative initial lambda");
  }
  lambda_.assign(capacity_.size(), options.initial_lambda);
  window_count_.assign(capacity_.size(), 0);
  reservation_.resize(capacity_.size());
  for (std::size_t k = 0; k < capacity_.size(); ++k) {
    reservation_[k] =
        erlang::min_state_protection(lambda_[k], capacity_[k], options_.max_alt_hops);
  }
}

void AdaptiveControlledPolicy::roll_windows(double now) {
  while (now >= window_start_ + options_.window) {
    for (std::size_t k = 0; k < lambda_.size(); ++k) {
      const double window_rate = static_cast<double>(window_count_[k]) / options_.window;
      lambda_[k] = (1.0 - options_.ewma_weight) * lambda_[k] +
                   options_.ewma_weight * window_rate;
      window_count_[k] = 0;
      reservation_[k] =
          erlang::min_state_protection(lambda_[k], capacity_[k], options_.max_alt_hops);
    }
    window_start_ += options_.window;
  }
}

void AdaptiveControlledPolicy::observe_primary_demand(const routing::Path& primary) {
  // Every primary set-up counts toward the demand of every link on the
  // primary path, whether or not the call completes: Lambda^k is offered
  // primary load, not carried load (Eq. 1).
  for (const net::LinkId id : primary.links) ++window_count_[id.index()];
}

bool AdaptiveControlledPolicy::alternate_admissible(const loss::RoutingContext& ctx,
                                                    const routing::Path& path) const {
  // Local admission test against the policy's own reservation levels (the
  // engine's NetworkState carries the a-priori levels, which this policy
  // deliberately ignores: its links trust only their own estimates).
  for (const net::LinkId id : path.links) {
    const auto link = ctx.state.link(id);
    if (link.occupancy() + ctx.bandwidth > link.capacity()) return false;
    if (link.occupancy() + ctx.bandwidth > link.capacity() - reservation_[id.index()]) {
      return false;
    }
  }
  return true;
}

loss::RouteDecision AdaptiveControlledPolicy::route(const loss::RoutingContext& ctx) {
  roll_windows(ctx.now);
  loss::RouteDecision d;
  const std::size_t p = loss::pick_primary(ctx.routes, ctx.primary_pick);
  if (p == std::numeric_limits<std::size_t>::max()) return d;
  const routing::Path& primary = ctx.routes.primaries[p];
  observe_primary_demand(primary);
  if (ctx.state.path_admissible(primary, loss::CallClass::kPrimary, ctx.bandwidth)) {
    d.path = &primary;
    d.call_class = loss::CallClass::kPrimary;
    return d;
  }
  for (const routing::Path& alt : ctx.routes.alternates) {
    if (alt == primary) continue;
    ++d.alternates_probed;
    if (alternate_admissible(ctx, alt)) {
      d.path = &alt;
      d.call_class = loss::CallClass::kAlternate;
      return d;
    }
  }
  return d;
}

}  // namespace altroute::core
