#include "core/adaptive_policy.hpp"

#include <cstring>
#include <limits>
#include <stdexcept>

#include "core/protection.hpp"
#include "erlang/state_protection.hpp"

namespace altroute::core {

namespace {

// Little-endian u64 push/pull for the policy-state blob.
void push_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void push_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  push_u64(out, bits);
}

std::uint64_t pull_u64(const std::vector<std::uint8_t>& in, std::size_t word) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[word * 8 + static_cast<std::size_t>(i)]) << (8 * i);
  }
  return v;
}

double pull_f64(const std::vector<std::uint8_t>& in, std::size_t word) {
  const std::uint64_t bits = pull_u64(in, word);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

}  // namespace

AdaptiveControlledPolicy::AdaptiveControlledPolicy(const net::Graph& graph,
                                                   const AdaptiveOptions& options)
    : capacity_(link_capacities(graph)), options_(options) {
  if (!(options.window > 0.0)) throw std::invalid_argument("AdaptiveOptions: window <= 0");
  if (!(options.ewma_weight > 0.0) || options.ewma_weight > 1.0) {
    throw std::invalid_argument("AdaptiveOptions: ewma_weight out of (0, 1]");
  }
  if (options.max_alt_hops < 1) throw std::invalid_argument("AdaptiveOptions: H < 1");
  if (!(options.initial_lambda >= 0.0)) {
    throw std::invalid_argument("AdaptiveOptions: negative initial lambda");
  }
  lambda_.assign(capacity_.size(), options.initial_lambda);
  window_count_.assign(capacity_.size(), 0);
  reservation_.resize(capacity_.size());
  for (std::size_t k = 0; k < capacity_.size(); ++k) {
    reservation_[k] =
        erlang::min_state_protection(lambda_[k], capacity_[k], options_.max_alt_hops);
  }
}

void AdaptiveControlledPolicy::roll_windows(double now) {
  while (now >= window_start_ + options_.window) {
    for (std::size_t k = 0; k < lambda_.size(); ++k) {
      const double window_rate = static_cast<double>(window_count_[k]) / options_.window;
      lambda_[k] = (1.0 - options_.ewma_weight) * lambda_[k] +
                   options_.ewma_weight * window_rate;
      window_count_[k] = 0;
      reservation_[k] =
          erlang::min_state_protection(lambda_[k], capacity_[k], options_.max_alt_hops);
    }
    window_start_ += options_.window;
  }
}

void AdaptiveControlledPolicy::observe_primary_demand(const routing::Path& primary) {
  // Every primary set-up counts toward the demand of every link on the
  // primary path, whether or not the call completes: Lambda^k is offered
  // primary load, not carried load (Eq. 1).
  for (const net::LinkId id : primary.links) ++window_count_[id.index()];
}

bool AdaptiveControlledPolicy::alternate_admissible(const loss::RoutingContext& ctx,
                                                    const routing::Path& path) const {
  // Local admission test against the policy's own reservation levels (the
  // engine's NetworkState carries the a-priori levels, which this policy
  // deliberately ignores: its links trust only their own estimates).
  for (const net::LinkId id : path.links) {
    const auto link = ctx.state.link(id);
    if (link.occupancy() + ctx.bandwidth > link.capacity()) return false;
    if (link.occupancy() + ctx.bandwidth > link.capacity() - reservation_[id.index()]) {
      return false;
    }
  }
  return true;
}

loss::RouteDecision AdaptiveControlledPolicy::route(const loss::RoutingContext& ctx) {
  roll_windows(ctx.now);
  loss::RouteDecision d;
  const std::size_t p = loss::pick_primary(ctx.routes, ctx.primary_pick);
  if (p == std::numeric_limits<std::size_t>::max()) return d;
  const routing::Path& primary = ctx.routes.primaries[p];
  observe_primary_demand(primary);
  if (ctx.state.path_admissible(primary, loss::CallClass::kPrimary, ctx.bandwidth)) {
    d.path = &primary;
    d.call_class = loss::CallClass::kPrimary;
    return d;
  }
  for (const routing::Path& alt : ctx.routes.alternates) {
    if (alt == primary) continue;
    ++d.alternates_probed;
    if (alternate_admissible(ctx, alt)) {
      d.path = &alt;
      d.call_class = loss::CallClass::kAlternate;
      return d;
    }
  }
  return d;
}

std::vector<std::uint8_t> AdaptiveControlledPolicy::snapshot_state() const {
  // One word of link count and the window clock, then per link: lambda,
  // window count, reservation.
  std::vector<std::uint8_t> blob;
  blob.reserve((2 + 3 * lambda_.size()) * 8);
  push_u64(blob, lambda_.size());
  push_f64(blob, window_start_);
  for (const double l : lambda_) push_f64(blob, l);
  for (const long long c : window_count_) push_u64(blob, static_cast<std::uint64_t>(c));
  for (const int r : reservation_) push_u64(blob, static_cast<std::uint64_t>(r));
  return blob;
}

void AdaptiveControlledPolicy::restore_state(const std::vector<std::uint8_t>& blob) {
  const std::size_t links = lambda_.size();
  const std::size_t expected = (2 + 3 * links) * 8;
  if (blob.size() != expected || pull_u64(blob, 0) != links) {
    throw std::invalid_argument(
        "AdaptiveControlledPolicy::restore_state: blob does not match this policy's " +
        std::to_string(links) + "-link estimator (got " + std::to_string(blob.size()) +
        " bytes, expected " + std::to_string(expected) + ")");
  }
  window_start_ = pull_f64(blob, 1);
  for (std::size_t k = 0; k < links; ++k) {
    lambda_[k] = pull_f64(blob, 2 + k);
    window_count_[k] = static_cast<long long>(pull_u64(blob, 2 + links + k));
    reservation_[k] = static_cast<int>(pull_u64(blob, 2 + 2 * links + k));
  }
}

}  // namespace altroute::core
