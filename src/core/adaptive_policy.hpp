// Controlled alternate routing with ONLINE Lambda estimation.
//
// The paper's experiments assume each link knows its primary demand
// Lambda^k a priori and leaves the estimation procedure open ("the estimate
// can be found from the primary call set-ups that fly past the link, or
// from measurements of established calls").  This extension closes that
// loop: each link counts the primary set-ups that traverse it over fixed
// estimation windows, smooths the windowed rates with an EWMA, and
// recomputes its own Eq.-15 protection level whenever the estimate moves.
// Because state protection is robust to Lambda errors (Key, Section 2.2 of
// [21]), the adaptive scheme converges to the a-priori scheme's behavior --
// a property tests/test_adaptive.cpp verifies.
#pragma once

#include <vector>

#include "loss/policy.hpp"
#include "netgraph/graph.hpp"

namespace altroute::core {

struct AdaptiveOptions {
  /// Length of one counting window, in units of mean holding time.
  double window{5.0};
  /// EWMA weight given to the newest window's rate.
  double ewma_weight{0.3};
  /// Maximum alternate hop count H for the Eq.-15 recomputation.
  int max_alt_hops{6};
  /// Starting Lambda estimate for every link (Erlangs).  A pessimistic
  /// (high) start makes early reservations conservative, protecting primary
  /// traffic while the estimator learns.
  double initial_lambda{0.0};
};

class AdaptiveControlledPolicy final : public loss::RoutingPolicy {
 public:
  AdaptiveControlledPolicy(const net::Graph& graph, const AdaptiveOptions& options);

  [[nodiscard]] loss::RouteDecision route(const loss::RoutingContext& ctx) override;
  [[nodiscard]] std::string_view name() const override { return "adaptive-controlled-alt"; }

  /// Current per-link Lambda estimates (Erlangs).
  [[nodiscard]] const std::vector<double>& lambda_estimates() const { return lambda_; }
  /// Current per-link protection levels derived from the estimates.
  [[nodiscard]] const std::vector<int>& reservations() const { return reservation_; }

  /// Checkpoint support: the estimator state (EWMA estimates, window
  /// counts, recomputed reservations, window clock) -- a resumed run
  /// continues learning exactly where the saved one left off.
  [[nodiscard]] std::vector<std::uint8_t> snapshot_state() const override;
  void restore_state(const std::vector<std::uint8_t>& blob) override;

 private:
  void roll_windows(double now);
  void observe_primary_demand(const routing::Path& primary);
  [[nodiscard]] bool alternate_admissible(const loss::RoutingContext& ctx,
                                          const routing::Path& path) const;

  std::vector<int> capacity_;
  AdaptiveOptions options_;
  std::vector<double> lambda_;          // EWMA estimate per link
  std::vector<long long> window_count_; // primary set-ups seen this window
  std::vector<int> reservation_;        // locally recomputed r^k
  double window_start_{0.0};
};

}  // namespace altroute::core
