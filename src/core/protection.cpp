#include "core/protection.hpp"

#include "erlang/state_protection.hpp"

namespace altroute::core {

std::vector<int> link_capacities(const net::Graph& graph) {
  std::vector<int> caps;
  caps.reserve(static_cast<std::size_t>(graph.link_count()));
  for (const net::Link& l : graph.links()) caps.push_back(l.capacity);
  return caps;
}

std::vector<int> protection_levels(const net::Graph& graph, const routing::RouteTable& routes,
                                   const net::TrafficMatrix& traffic, int max_alt_hops) {
  const std::vector<double> lambda = routing::primary_link_loads(graph, routes, traffic);
  return protection_levels_from_lambda(graph, lambda, max_alt_hops);
}

std::vector<int> protection_levels_from_lambda(const net::Graph& graph,
                                               const std::vector<double>& lambda,
                                               int max_alt_hops) {
  return erlang::state_protection_levels(lambda, link_capacities(graph), max_alt_hops);
}

}  // namespace altroute::core
