#include "core/controller.hpp"

#include <utility>

#include "core/variants.hpp"
#include "erlang/state_protection.hpp"

namespace altroute::core {

Controller::Controller(net::Graph graph, net::TrafficMatrix nominal, ControllerConfig config)
    : graph_(std::move(graph)),
      nominal_(std::move(nominal)),
      config_(config),
      routes_(routing::build_min_hop_routes(graph_, config_.max_alt_hops,
                                            config_.max_paths_per_pair)) {
  retarget(nominal_);
}

Controller::Controller(net::Graph graph, net::TrafficMatrix nominal,
                       routing::RouteTable routes, ControllerConfig config)
    : graph_(std::move(graph)),
      nominal_(std::move(nominal)),
      config_(config),
      routes_(std::move(routes)) {
  retarget(nominal_);
}

void Controller::retarget(const net::TrafficMatrix& traffic) {
  lambda_ = routing::primary_link_loads(graph_, routes_, traffic);
  // The memo rebuilds only links whose (Lambda, C) changed; its r* scan is
  // identical to erlang::min_state_protection, so the levels are
  // bit-identical to the direct computation.
  memo_.configure(lambda_, link_capacities(graph_));
  if (config_.per_link_h) {
    const std::vector<int> h = per_link_max_alt_hops(graph_, routes_);
    reservations_.resize(lambda_.size());
    for (std::size_t k = 0; k < lambda_.size(); ++k) {
      reservations_[k] = memo_.link(k).r_star(h[k]);
    }
  } else {
    reservations_ = memo_.protection_levels(config_.max_alt_hops);
  }
}

loss::EngineOptions Controller::engine_options(double warmup,
                                               std::uint64_t policy_seed) const {
  loss::EngineOptions options;
  options.warmup = warmup;
  options.policy_seed = policy_seed;
  options.reservations = reservations_;
  return options;
}

loss::RunResult Controller::run(loss::RoutingPolicy& policy, const sim::CallTrace& trace,
                                double warmup) const {
  return loss::run_trace(graph_, routes_, policy, trace, engine_options(warmup));
}

std::vector<LinkReport> Controller::link_report() const {
  std::vector<LinkReport> rows;
  rows.reserve(static_cast<std::size_t>(graph_.link_count()));
  for (int k = 0; k < graph_.link_count(); ++k) {
    const net::LinkId id(k);
    const net::Link& l = graph_.link(id);
    rows.push_back(LinkReport{id, l.src, l.dst, l.capacity, lambda_[id.index()],
                              reservations_[id.index()]});
  }
  return rows;
}

}  // namespace altroute::core
