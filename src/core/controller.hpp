// High-level facade: assembles topology + traffic into a ready-to-run
// controlled-alternate-routing deployment.
//
// This is the entry point a downstream user starts from (see
// examples/quickstart.cpp): given a Graph and a nominal TrafficMatrix it
// computes the unique min-hop primaries, the ordered alternate lists capped
// at H hops, the per-link primary demands (Eq. 1), and the per-link
// state-protection levels (Eq. 15), and hands out engine options that apply
// those levels to a simulation run.
#pragma once

#include <cstdint>
#include <vector>

#include "core/protection.hpp"
#include "erlang/memo.hpp"
#include "loss/engine.hpp"
#include "netgraph/graph.hpp"
#include "netgraph/traffic_matrix.hpp"
#include "routing/route_table.hpp"

namespace altroute::core {

struct ControllerConfig {
  /// Maximum alternate path hop count H (design parameter of Section 3.1).
  int max_alt_hops{6};
  /// Safety cap on alternate enumeration per ordered pair.
  std::size_t max_paths_per_pair{100000};
  /// Footnote-5 variant: compute each link's protection from the longest
  /// alternate that actually traverses it (H^k) instead of the global H.
  /// Never reserves more than the global-H rule; see core/variants.hpp.
  bool per_link_h{false};
};

/// Per-link summary row (the columns of the paper's Table 1).
struct LinkReport {
  net::LinkId link;
  net::NodeId src;
  net::NodeId dst;
  int capacity{0};
  double lambda{0.0};  ///< primary demand, Eq. 1
  int reservation{0};  ///< r^k from Eq. 15 at the controller's H
};

class Controller {
 public:
  /// Builds routes/loads/levels for min-hop primaries.  The graph and
  /// matrix are copied; the controller is self-contained afterwards.
  Controller(net::Graph graph, net::TrafficMatrix nominal, ControllerConfig config = {});

  /// Same, but with an externally supplied primary/alternate program (e.g.
  /// the bifurcated output of routing::optimize_min_loss_primaries).
  Controller(net::Graph graph, net::TrafficMatrix nominal, routing::RouteTable routes,
             ControllerConfig config = {});

  [[nodiscard]] const net::Graph& graph() const { return graph_; }
  [[nodiscard]] const net::TrafficMatrix& nominal_traffic() const { return nominal_; }
  [[nodiscard]] const routing::RouteTable& routes() const { return routes_; }
  [[nodiscard]] const std::vector<double>& primary_loads() const { return lambda_; }
  [[nodiscard]] const std::vector<int>& reservations() const { return reservations_; }
  [[nodiscard]] int max_alt_hops() const { return config_.max_alt_hops; }

  /// Recomputes Lambda and the protection levels for a scaled load (the
  /// levels are functions of the traffic matrix in force).  Section 4
  /// recomputes them per load point when sweeping.
  void retarget(const net::TrafficMatrix& traffic);

  /// Engine options carrying this controller's reservation levels.
  [[nodiscard]] loss::EngineOptions engine_options(double warmup = 10.0,
                                                   std::uint64_t policy_seed = 0x5eed) const;

  /// Runs one policy over one trace with this controller's levels applied.
  [[nodiscard]] loss::RunResult run(loss::RoutingPolicy& policy, const sim::CallTrace& trace,
                                    double warmup = 10.0) const;

  /// Table-1-style per-link rows at the current traffic.
  [[nodiscard]] std::vector<LinkReport> link_report() const;

 private:
  net::Graph graph_;
  net::TrafficMatrix nominal_;
  ControllerConfig config_;
  routing::RouteTable routes_;
  std::vector<double> lambda_;
  std::vector<int> reservations_;
  /// Per-link Erlang tables keyed on (Lambda, C): retargets that leave a
  /// link's demand unchanged reuse its cached inverse sequence and r*.
  erlang::NetworkErlangMemo memo_;
};

}  // namespace altroute::core
