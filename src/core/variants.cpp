#include "core/variants.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/protection.hpp"
#include "erlang/state_protection.hpp"

namespace altroute::core {

std::vector<int> per_link_max_alt_hops(const net::Graph& graph,
                                       const routing::RouteTable& routes) {
  if (routes.nodes() != graph.node_count()) {
    throw std::invalid_argument("per_link_max_alt_hops: size mismatch");
  }
  std::vector<int> h(static_cast<std::size_t>(graph.link_count()), 1);
  for (int i = 0; i < graph.node_count(); ++i) {
    for (int j = 0; j < graph.node_count(); ++j) {
      if (i == j) continue;
      const routing::RouteSet& set = routes.at(net::NodeId(i), net::NodeId(j));
      for (const routing::Path& alt : set.alternates) {
        const bool is_primary =
            std::find(set.primaries.begin(), set.primaries.end(), alt) != set.primaries.end();
        if (is_primary) continue;
        for (const net::LinkId k : alt.links) {
          h[k.index()] = std::max(h[k.index()], alt.hops());
        }
      }
    }
  }
  return h;
}

std::vector<int> protection_levels_per_link_h(const net::Graph& graph,
                                              const routing::RouteTable& routes,
                                              const net::TrafficMatrix& traffic) {
  const std::vector<double> lambda = routing::primary_link_loads(graph, routes, traffic);
  const std::vector<int> h = per_link_max_alt_hops(graph, routes);
  const std::vector<int> capacity = link_capacities(graph);
  std::vector<int> r(lambda.size());
  for (std::size_t k = 0; k < lambda.size(); ++k) {
    r[k] = erlang::min_state_protection(lambda[k], capacity[k], h[k]);
  }
  return r;
}

PerLengthControlledPolicy::PerLengthControlledPolicy(const net::Graph& graph,
                                                     const std::vector<double>& lambda,
                                                     int max_alt_hops) {
  if (lambda.size() != static_cast<std::size_t>(graph.link_count())) {
    throw std::invalid_argument("PerLengthControlledPolicy: lambda size mismatch");
  }
  if (max_alt_hops < 1) throw std::invalid_argument("PerLengthControlledPolicy: H < 1");
  const std::vector<int> capacity = link_capacities(graph);
  r_by_h_.resize(static_cast<std::size_t>(max_alt_hops) + 1);
  for (int h = 1; h <= max_alt_hops; ++h) {
    auto& row = r_by_h_[static_cast<std::size_t>(h)];
    row.resize(lambda.size());
    for (std::size_t k = 0; k < lambda.size(); ++k) {
      row[k] = erlang::min_state_protection(lambda[k], capacity[k], h);
    }
  }
  // Index 0 is never used (alternates have >= 1 hop); keep it empty-safe.
  r_by_h_[0] = r_by_h_[1];
}

bool PerLengthControlledPolicy::admissible(const loss::RoutingContext& ctx,
                                           const routing::Path& path) const {
  const auto h = static_cast<std::size_t>(path.hops());
  if (h >= r_by_h_.size()) return false;  // longer than the configured H: refuse
  const std::vector<int>& r = r_by_h_[h];
  for (const net::LinkId id : path.links) {
    const auto link = ctx.state.link(id);
    if (link.occupancy() + ctx.bandwidth > link.capacity()) return false;
    if (link.occupancy() + ctx.bandwidth > link.capacity() - r[id.index()]) return false;
  }
  return true;
}

loss::RouteDecision PerLengthControlledPolicy::route(const loss::RoutingContext& ctx) {
  loss::RouteDecision d;
  const std::size_t p = loss::pick_primary(ctx.routes, ctx.primary_pick);
  if (p == std::numeric_limits<std::size_t>::max()) return d;
  const routing::Path& primary = ctx.routes.primaries[p];
  if (ctx.state.path_admissible(primary, loss::CallClass::kPrimary, ctx.bandwidth)) {
    d.path = &primary;
    d.call_class = loss::CallClass::kPrimary;
    return d;
  }
  for (const routing::Path& alt : ctx.routes.alternates) {
    if (alt == primary) continue;
    ++d.alternates_probed;
    if (admissible(ctx, alt)) {
      d.path = &alt;
      d.call_class = loss::CallClass::kAlternate;
      return d;
    }
  }
  return d;
}

}  // namespace altroute::core
