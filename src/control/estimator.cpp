#include "control/estimator.hpp"

#include <stdexcept>

namespace altroute::control {

LoadEstimator::LoadEstimator(const ControlConfig& config, int nodes)
    : config_(config), nodes_(nodes) {
  config_.validate();
  if (nodes < 1) throw std::invalid_argument("LoadEstimator: nodes must be >= 1");
  const auto pairs = static_cast<std::size_t>(nodes) * static_cast<std::size_t>(nodes);
  estimate_.assign(pairs, 0.0);
  window_sum_.assign(pairs, 0.0);
  hold_total_.assign(pairs, 0.0);
}

void LoadEstimator::roll_to(double t) {
  while (window_start_ + config_.window <= t) {
    for (std::size_t q = 0; q < estimate_.size(); ++q) {
      const double window_load = window_sum_[q] / config_.window;
      if (config_.estimator == EstimatorKind::kWindowedMle) {
        hold_total_[q] += window_sum_[q];
        estimate_[q] = hold_total_[q] /
                       (static_cast<double>(windows_done_ + 1) * config_.window);
      } else {
        estimate_[q] = windows_done_ == 0
                           ? window_load
                           : (1.0 - config_.weight) * estimate_[q] +
                                 config_.weight * window_load;
      }
      window_sum_[q] = 0.0;
    }
    ++windows_done_;
    window_start_ += config_.window;
  }
}

void LoadEstimator::observe(double t, int src, int dst, double hold) {
  roll_to(t);
  if (src < 0 || src >= nodes_ || dst < 0 || dst >= nodes_) {
    throw std::invalid_argument("LoadEstimator::observe: node outside the network");
  }
  window_sum_[static_cast<std::size_t>(src) * static_cast<std::size_t>(nodes_) +
              static_cast<std::size_t>(dst)] += hold;
  ++observations_;
}

void LoadEstimator::restore(double window_start, std::uint64_t windows_done,
                            std::uint64_t observations, std::vector<double> estimate,
                            std::vector<double> window_sum, std::vector<double> hold_total) {
  const std::size_t pairs = estimate_.size();
  if (estimate.size() != pairs || window_sum.size() != pairs || hold_total.size() != pairs) {
    throw std::invalid_argument(
        "LoadEstimator::restore: state does not match this network's " +
        std::to_string(pairs) + "-pair shape");
  }
  window_start_ = window_start;
  windows_done_ = windows_done;
  observations_ = observations;
  estimate_ = std::move(estimate);
  window_sum_ = std::move(window_sum);
  hold_total_ = std::move(hold_total);
}

}  // namespace altroute::control
