#include "control/controller.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/protection.hpp"
#include "routing/route_table.hpp"

namespace altroute::control {

EpochController::EpochController(const ControlConfig& config, int nodes, std::size_t links,
                                 const std::vector<int>& initial_reservation)
    : config_(config), links_(links), estimator_(config, nodes) {
  config_.validate();
  if (!config_.enabled()) {
    throw std::invalid_argument("EpochController: config has epoch = 0 (control disabled)");
  }
  if (!initial_reservation.empty() && initial_reservation.size() != links) {
    throw std::invalid_argument(
        "EpochController: initial reservation vector does not match the link count");
  }
  lambda_ref_.assign(links, -1.0);
  reservation_ = initial_reservation.empty() ? std::vector<int>(links, 0)
                                             : initial_reservation;
}

EpochController::Outcome EpochController::run_epoch(double t, const net::Graph& graph,
                                                    const routing::RouteTable& routes,
                                                    int max_alt_hops) {
  if (static_cast<std::size_t>(graph.link_count()) != links_) {
    throw std::invalid_argument("EpochController::run_epoch: graph link count changed");
  }
  estimator_.roll_to(t);

  // Per-pair estimates -> per-link primary loads through the CURRENT routes.
  const int n = estimator_.nodes();
  net::TrafficMatrix estimated(n);
  const std::vector<double>& pair_est = estimator_.estimates();
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const double v = pair_est[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
                                static_cast<std::size_t>(j)];
      if (v > 0.0) estimated.set(net::NodeId(i), net::NodeId(j), v);
    }
  }
  const std::vector<double> lambda_hat =
      routing::primary_link_loads(graph, routes, estimated);

  Outcome out;
  out.capacity = core::link_capacities(graph);
  out.lambda_eff.resize(links_);
  // Hysteresis first: held links keep their reference lambda, so their
  // (lambda, C) memo key is unchanged and the solve below is a cache hit.
  std::vector<char> held(links_, 0);
  for (std::size_t k = 0; k < links_; ++k) {
    const double ref = lambda_ref_[k];
    if (ref >= 0.0 &&
        std::abs(lambda_hat[k] - ref) <= config_.deadband * std::max(ref, 1e-12)) {
      held[k] = 1;
      out.lambda_eff[k] = ref;
    } else {
      out.lambda_eff[k] = lambda_hat[k];
      lambda_ref_[k] = lambda_hat[k];
    }
  }
  memo_.configure(out.lambda_eff, out.capacity);
  const std::vector<int> candidate = memo_.protection_levels(max_alt_hops);

  out.reservation.resize(links_);
  for (std::size_t k = 0; k < links_; ++k) {
    if (held[k]) ++out.links_held;
    // A hold pins the REFERENCE lambda, not the reservation: r always
    // walks toward the candidate for the effective lambda, so a
    // rate-limited link still reaches its Eq.-15 level across epochs of
    // unchanged estimates instead of freezing mid-walk.  On a quiet link
    // the candidate equals the level already in force and nothing moves.
    int r = candidate[k];
    if (config_.max_step > 0) {
      r = std::clamp(r, reservation_[k] - config_.max_step,
                     reservation_[k] + config_.max_step);
    }
    // A capacity shrink between epochs can strand a held or rate-limited r
    // above the link's new size; the admission state rejects reservations
    // outside [0, capacity], so the installed level is always clamped.
    r = std::clamp(r, 0, out.capacity[k]);
    if (r != reservation_[k]) ++out.links_changed;
    reservation_[k] = r;
    out.reservation[k] = r;
  }
  ++epochs_done_;
  retargets_ += static_cast<std::uint64_t>(out.links_changed);
  holds_ += static_cast<std::uint64_t>(out.links_held);
  return out;
}

ControlMemento EpochController::save() const {
  ControlMemento m;
  m.window_start = estimator_.window_start();
  m.windows_done = estimator_.windows_done();
  m.observations = estimator_.observations();
  m.pair_estimate = estimator_.estimates();
  m.pair_window_sum = estimator_.window_sums();
  m.pair_hold_total = estimator_.hold_totals();
  m.link_lambda_ref = lambda_ref_;
  m.reservation.assign(reservation_.begin(), reservation_.end());
  m.epochs_done = epochs_done_;
  m.retargets = retargets_;
  m.holds = holds_;
  return m;
}

void EpochController::load(const ControlMemento& m) {
  if (m.link_lambda_ref.size() != links_ || m.reservation.size() != links_) {
    throw std::invalid_argument(
        "EpochController::load: control state does not match this network's " +
        std::to_string(links_) + "-link shape");
  }
  estimator_.restore(m.window_start, m.windows_done, m.observations, m.pair_estimate,
                     m.pair_window_sum, m.pair_hold_total);
  lambda_ref_ = m.link_lambda_ref;
  reservation_.assign(m.reservation.begin(), m.reservation.end());
  epochs_done_ = m.epochs_done;
  retargets_ = m.retargets;
  holds_ = m.holds;
}

}  // namespace altroute::control
