// Online offered-load estimation from observed arrivals.
//
// The paper's Eq.-15 solves assume the offered-load matrix Lambda is known
// exactly; a closed-loop controller must MEASURE it.  A LoadEstimator
// tracks, per ordered O-D pair, the classic holding-time-weighted arrival
// census: arrivals are binned into jumping windows of length `window` on
// the event timeline, and each completed window w contributes its observed
// offered load
//
//     L_w(i, j) = sum of holding times of (i, j) arrivals in w / window
//
// (for Poisson arrivals with mean holding h, E[L_w] = lambda * h -- the
// offered load in Erlangs, exactly the quantity Eq. 15 wants).  Two
// reductions over completed windows are selectable (config.hpp):
//
//   kWindowedMle  pooled estimate sum_w L_w / #windows -- the maximum-
//                 likelihood estimate over all completed windows, which
//                 converges to the true Lambda on stationary traffic
//                 (the property tests pin the tolerance);
//   kEwma         estimate <- (1 - weight) * estimate + weight * L_w on
//                 each completed window -- bounded memory of the past, so
//                 it tracks load shifts (failures, traffic scaling) at the
//                 cost of stationary variance.
//
// Empty windows count: a pair that stops receiving traffic decays toward
// zero under both reductions.  Windows roll deterministically from observed
// event times only -- the estimator never reads a wall clock -- so the
// whole control plane inherits the engines' bit-identical replay.
//
// The per-LINK tracker of the control plane is derived, not duplicated:
// the controller maps the per-pair estimates through the current primary
// routes with routing::primary_link_loads (the paper's Eq. 1), so link
// estimates follow topology changes automatically (see controller.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "control/config.hpp"

namespace altroute::control {

class LoadEstimator {
 public:
  /// `nodes` sizes the per-ordered-pair state; the estimator starts its
  /// first window at t = 0.
  LoadEstimator(const ControlConfig& config, int nodes);

  /// One observed call request from src to dst at time t with holding time
  /// `hold` (counted whether the call is later admitted or blocked --
  /// offered load is what Eq. 15 wants).  Rolls completed windows first;
  /// t must be non-decreasing across calls (event-timeline order).
  void observe(double t, int src, int dst, double hold);

  /// Completes every window that ends at or before t (controllers call
  /// this at each epoch so estimates reflect all windows ending by then).
  void roll_to(double t);

  /// Current per-pair offered-load estimates, row-major nodes x nodes
  /// (diagonal stays 0).  Zero until the first window completes.
  [[nodiscard]] const std::vector<double>& estimates() const { return estimate_; }

  [[nodiscard]] int nodes() const { return nodes_; }
  [[nodiscard]] std::uint64_t windows_done() const { return windows_done_; }
  [[nodiscard]] std::uint64_t observations() const { return observations_; }

  // --- checkpoint support (plain-data state; see controller.hpp) -----------
  [[nodiscard]] double window_start() const { return window_start_; }
  [[nodiscard]] const std::vector<double>& window_sums() const { return window_sum_; }
  [[nodiscard]] const std::vector<double>& hold_totals() const { return hold_total_; }
  void restore(double window_start, std::uint64_t windows_done, std::uint64_t observations,
               std::vector<double> estimate, std::vector<double> window_sum,
               std::vector<double> hold_total);

 private:
  ControlConfig config_;
  int nodes_{0};
  double window_start_{0.0};
  std::uint64_t windows_done_{0};
  std::uint64_t observations_{0};
  std::vector<double> estimate_;    ///< per pair, current reduction value
  std::vector<double> window_sum_;  ///< per pair, holding-time sum of the open window
  std::vector<double> hold_total_;  ///< per pair, sum over completed windows (kWindowedMle)
};

}  // namespace altroute::control
