// Dynamic Alternative Routing (Gibbens, Kelly & Key) with trunk
// reservation, the British Telecom scheme the paper positions its Eq.-15
// state protection against.
//
// DAR is sticky-random alternate selection (each ordered pair remembers
// ONE current alternate; keep it while it admits, resample uniformly on
// block) plus DAR's own stability mechanism: TRUNK RESERVATION.  An
// overflow call is carried on its remembered alternate only when every
// link of that alternate would still have at least `trunk` free circuits
// AFTER carrying it -- i.e. free >= bandwidth + trunk on every hop.  That
// static reserve is DAR's defense against overflow crowding: with trunk=0
// it degenerates to plain sticky random, whose single probe per call is
// too gentle to show the uncontrolled scheme's hysteresis but pays a
// measured 2-3x blocking penalty above the critical load, which a small
// trunk reserve removes (see EXPERIMENTS.md, ext-n).
//
// The alternate probes with class kAlternate, so when the engine's Eq.-15
// protection levels are ALSO in force the call must clear both guards;
// run DAR with r = 0 (the usual configuration) to study trunk reservation
// in isolation.  One probe per overflow, local state only -- the
// signaling-cost contrast with the paper's sequential probing carries
// over from StickyRandomPolicy (loss/dynamic_policies.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "control/config.hpp"
#include "loss/policy.hpp"
#include "sim/rng.hpp"

namespace altroute::control {

class DarPolicy final : public loss::RoutingPolicy {
 public:
  /// `nodes` sizes the per-pair memory; `seed` drives the random resamples
  /// (stream-split from the engine's policy seed, so DAR runs share the
  /// common-random-numbers structure of the other dynamic policies).
  DarPolicy(int nodes, std::uint64_t seed, const DarConfig& config);

  [[nodiscard]] loss::RouteDecision route(const loss::RoutingContext& ctx) override;
  [[nodiscard]] std::string_view name() const override { return "dar"; }

  [[nodiscard]] int trunk() const { return config_.trunk; }

  /// Currently remembered alternate index for a pair (for tests); SIZE_MAX
  /// when unset.
  [[nodiscard]] std::size_t current_alternate(net::NodeId src, net::NodeId dst) const {
    return sticky_[pair_index(src, dst)];
  }

  /// Checkpoint support: RNG state, the trunk parameter (echoed so a
  /// resume under a different --policy spec is rejected, not silently
  /// re-parameterized), and the per-pair sticky memory.
  [[nodiscard]] std::vector<std::uint8_t> snapshot_state() const override;
  void restore_state(const std::vector<std::uint8_t>& blob) override;

 private:
  [[nodiscard]] std::size_t pair_index(net::NodeId src, net::NodeId dst) const {
    return src.index() * static_cast<std::size_t>(nodes_) + dst.index();
  }

  int nodes_;
  DarConfig config_;
  sim::Rng rng_;
  std::vector<std::size_t> sticky_;
};

}  // namespace altroute::control
