// The closed-loop epoch controller: estimated Lambda in, Eq.-15 r* out.
//
// An EpochController owns a LoadEstimator (fed one observation per call
// request by the engine) and, at each control epoch t = k * config.epoch
// on the event timeline, re-derives the per-link state-protection levels
// r* from the ESTIMATED offered loads:
//
//   1. roll the estimator to t, map the per-pair estimates through the
//      CURRENT primary routes (routing::primary_link_loads, the paper's
//      Eq. 1) -- this is the control plane's per-link load tracker, and it
//      follows failures/repairs automatically because the engine rebuilds
//      routes before the next epoch fires;
//   2. hysteresis: a link whose estimate moved by at most
//      deadband * reference since its last ACCEPTED re-solve keeps its
//      reference lambda, so estimator noise cannot flap protection levels
//      (the no-oscillation property test).  Only the reference is pinned:
//      r keeps walking toward the reference's Eq.-15 level, so holds never
//      freeze an unfinished rate-limit walk or a stale capacity clamp;
//   3. re-solve Eq. 15 for the effective lambda vector through a private
//      NetworkErlangMemo (held links keep an unchanged (Lambda, C) key, so
//      they are memo hits, not recomputes);
//   4. rate limit: clamp each accepted link's new r to within max_step of
//      the level currently in force (0 = unlimited).
//
// The Outcome reports everything the hooks need -- the reservation vector
// now in force, the effective lambda vector, the capacities used, and the
// changed/held census -- and the engine records it as a kControlEpoch
// trace record.  That record makes r* a PURE FUNCTION of recorded state:
// the checker re-derives r from (lambda_eff, capacity, H, max_step, the
// previous record) and rejects any drift (the epoch-purity invariant).
//
// Determinism: the controller reads only event-timeline inputs and solves
// through the same inverse Erlang-B sequences as the offline Controller,
// so adaptive runs stay bit-identical at any thread count on both queue
// engines (ctest-pinned).
#pragma once

#include <cstdint>
#include <vector>

#include "control/estimator.hpp"
#include "erlang/memo.hpp"
#include "netgraph/graph.hpp"
#include "routing/route_table.hpp"

namespace altroute::control {

/// Complete mid-run state of the control plane, as plain data -- the
/// snapshot layer serializes exactly these fields (section CTRL), so
/// capture/resume of an adaptive run is bit-identical.
struct ControlMemento {
  // Estimator.
  double window_start{0.0};
  std::uint64_t windows_done{0};
  std::uint64_t observations{0};
  std::vector<double> pair_estimate;
  std::vector<double> pair_window_sum;
  std::vector<double> pair_hold_total;
  // Controller.
  std::vector<double> link_lambda_ref;  ///< -1 = no accepted solve yet
  std::vector<std::int32_t> reservation;
  std::uint64_t epochs_done{0};
  std::uint64_t retargets{0};  ///< links whose r changed, cumulative
  std::uint64_t holds{0};      ///< links held inside the deadband, cumulative
};

class EpochController {
 public:
  /// `initial_reservation` is the per-link protection vector in force at
  /// run start (empty = all zeros); the rate limiter clamps the first
  /// epoch's changes against it.
  EpochController(const ControlConfig& config, int nodes, std::size_t links,
                  const std::vector<int>& initial_reservation);

  /// Feeds one observed call request to the estimator.
  void observe(double t, int src, int dst, double hold) {
    estimator_.observe(t, src, dst, hold);
  }

  /// What one epoch did (the engine's hook payload).
  struct Outcome {
    int links_changed{0};
    int links_held{0};
    std::vector<int> reservation;    ///< per link, now in force
    std::vector<double> lambda_eff;  ///< per link, lambda the solve used
    std::vector<int> capacity;       ///< per link, capacity the solve used
  };

  /// Runs the control epoch at time t against the engine's current graph
  /// and routes.  Returns the outcome; the caller installs
  /// outcome.reservation into the network state.
  [[nodiscard]] Outcome run_epoch(double t, const net::Graph& graph,
                                  const routing::RouteTable& routes, int max_alt_hops);

  [[nodiscard]] const ControlConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t epochs_done() const { return epochs_done_; }
  [[nodiscard]] std::uint64_t retargets() const { return retargets_; }
  [[nodiscard]] std::uint64_t holds() const { return holds_; }
  [[nodiscard]] std::uint64_t observations() const { return estimator_.observations(); }
  /// Event time of the next pending epoch (k * epoch for the smallest
  /// unfired k >= 1).
  [[nodiscard]] double next_epoch_time() const {
    return static_cast<double>(epochs_done_ + 1) * config_.epoch;
  }

  /// The estimator, for audits and tests.
  [[nodiscard]] const LoadEstimator& estimator() const { return estimator_; }

  // --- checkpoint support ---------------------------------------------------
  [[nodiscard]] ControlMemento save() const;
  /// Restores a memento; throws std::invalid_argument with a pointed
  /// message when its shape does not match this controller's network.
  void load(const ControlMemento& memento);

 private:
  ControlConfig config_;
  std::size_t links_{0};
  LoadEstimator estimator_;
  erlang::NetworkErlangMemo memo_;
  std::vector<double> lambda_ref_;      ///< per link; -1 = no accepted solve yet
  std::vector<int> reservation_;        ///< per link, last applied
  std::uint64_t epochs_done_{0};
  std::uint64_t retargets_{0};
  std::uint64_t holds_{0};
};

}  // namespace altroute::control
