#include "control/config.hpp"

#include <charconv>
#include <cmath>
#include <stdexcept>

namespace altroute::control {

namespace {

[[noreturn]] void fail_control(const std::string& why) {
  throw std::invalid_argument("control spec: " + why);
}

[[noreturn]] void fail_policy(const std::string& why) {
  throw std::invalid_argument("policy spec: " + why);
}

using FailFn = void (*)(const std::string&);

/// Strict full-token double parse ("5", "0.25", "1e2"); rejects partial
/// consumption, so "5x" and "" are errors, not silent truncations.
double parse_double(std::string_view token, const std::string& key, FailFn fail) {
  double value = 0.0;
  const auto [end, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || end != token.data() + token.size()) {
    fail("value '" + std::string(token) + "' of '" + key + "' is not a number");
  }
  if (!std::isfinite(value)) {
    fail("value of '" + key + "' must be finite");
  }
  return value;
}

int parse_int(std::string_view token, const std::string& key, FailFn fail) {
  int value = 0;
  const auto [end, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || end != token.data() + token.size()) {
    fail("value '" + std::string(token) + "' of '" + key + "' is not an integer");
  }
  return value;
}

/// Splits `spec` into key=value pairs and feeds them to `pair_fn`.
template <class PairFn>
void each_pair(std::string_view spec, void (*fail)(const std::string&), PairFn&& pair_fn) {
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view token = spec.substr(start, comma - start);
    if (token.empty()) {
      fail("empty key=value token (double comma or trailing comma?)");
    }
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      fail("token '" + std::string(token) + "' is not of the form key=value");
    }
    pair_fn(token.substr(0, eq), token.substr(eq + 1));
    if (comma == spec.size()) break;
    start = comma + 1;
  }
}

}  // namespace

std::string_view estimator_kind_name(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kWindowedMle:
      return "mle";
    case EstimatorKind::kEwma:
      return "ewma";
  }
  throw std::invalid_argument("estimator_kind_name: unknown kind");
}

void ControlConfig::validate() const {
  const auto fail = [](const std::string& why) {
    throw std::invalid_argument("control config: " + why);
  };
  if (!(epoch >= 0.0) || !std::isfinite(epoch)) fail("epoch must be >= 0 and finite");
  if (estimator != EstimatorKind::kWindowedMle && estimator != EstimatorKind::kEwma) {
    fail("unknown estimator kind");
  }
  if (!(window > 0.0) || !std::isfinite(window)) fail("window must be > 0 and finite");
  if (!(weight > 0.0) || !(weight <= 1.0)) fail("weight must lie in (0, 1]");
  if (!(deadband >= 0.0) || !std::isfinite(deadband)) fail("deadband must be >= 0");
  if (max_step < 0) fail("max-step must be >= 0");
}

void DarConfig::validate() const {
  if (trunk < 0) throw std::invalid_argument("policy config: trunk must be >= 0");
}

ControlConfig parse_control_spec(std::string_view spec) {
  ControlConfig cfg;
  if (spec.empty()) fail_control("empty spec (expected epoch=... at least)");
  bool saw_epoch = false;
  each_pair(spec, fail_control, [&](std::string_view key, std::string_view value) {
    const std::string k(key);
    if (key == "epoch") {
      cfg.epoch = parse_double(value, k, fail_control);
      saw_epoch = true;
    } else if (key == "estimator") {
      if (value == "mle") {
        cfg.estimator = EstimatorKind::kWindowedMle;
      } else if (value == "ewma") {
        cfg.estimator = EstimatorKind::kEwma;
      } else {
        fail_control("unknown estimator '" + std::string(value) + "' (known: mle ewma)");
      }
    } else if (key == "window") {
      cfg.window = parse_double(value, k, fail_control);
    } else if (key == "weight") {
      cfg.weight = parse_double(value, k, fail_control);
    } else if (key == "deadband") {
      cfg.deadband = parse_double(value, k, fail_control);
    } else if (key == "max-step") {
      cfg.max_step = parse_int(value, k, fail_control);
    } else {
      fail_control("unknown key '" + k +
                   "' (known: epoch estimator window weight deadband max-step)");
    }
  });
  if (!saw_epoch) fail_control("missing required key 'epoch'");
  if (!(cfg.epoch > 0.0)) fail_control("epoch must be > 0 (omit --control to disable)");
  cfg.validate();
  return cfg;
}

DarConfig parse_dar_spec(std::string_view spec) {
  // `spec` is the full --policy value: "dar" or "dar,<key=value,...>".
  DarConfig cfg;
  std::size_t comma = spec.find(',');
  const std::string_view name = spec.substr(0, comma == std::string_view::npos ? spec.size()
                                                                               : comma);
  if (name != "dar") {
    fail_policy("unknown policy '" + std::string(name) + "' (known: dar)");
  }
  if (comma != std::string_view::npos) {
    const std::string_view rest = spec.substr(comma + 1);
    if (rest.empty()) fail_policy("trailing comma after 'dar'");
    each_pair(rest, fail_policy, [&](std::string_view key, std::string_view value) {
      if (key == "trunk") {
        cfg.trunk = parse_int(value, "trunk", fail_policy);
      } else {
        fail_policy("unknown key '" + std::string(key) + "' (known: trunk)");
      }
    });
  }
  cfg.validate();
  return cfg;
}

}  // namespace altroute::control
