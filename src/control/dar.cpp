#include "control/dar.hpp"

#include <limits>
#include <stdexcept>

namespace altroute::control {

namespace {

constexpr std::size_t kUnset = std::numeric_limits<std::size_t>::max();

// Little-endian u64 push/pull for the policy-state blob (opaque to the
// snapshot container; only this policy reads it back).
void push_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t pull_u64(const std::vector<std::uint8_t>& in, std::size_t word) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[word * 8 + static_cast<std::size_t>(i)]) << (8 * i);
  }
  return v;
}

}  // namespace

DarPolicy::DarPolicy(int nodes, std::uint64_t seed, const DarConfig& config)
    : nodes_(nodes),
      config_(config),
      rng_(seed, 0xDA85),
      sticky_(static_cast<std::size_t>(nodes) * static_cast<std::size_t>(nodes), kUnset) {
  if (nodes < 1) throw std::invalid_argument("DarPolicy: nodes < 1");
  config_.validate();
}

loss::RouteDecision DarPolicy::route(const loss::RoutingContext& ctx) {
  loss::RouteDecision d;
  const std::size_t p = loss::pick_primary(ctx.routes, ctx.primary_pick);
  if (p == std::numeric_limits<std::size_t>::max()) return d;
  const routing::Path& primary = ctx.routes.primaries[p];
  if (ctx.state.path_admissible(primary, loss::CallClass::kPrimary, ctx.bandwidth)) {
    d.path = &primary;
    d.call_class = loss::CallClass::kPrimary;
    return d;
  }
  // Candidate alternates exclude the primary itself.
  std::size_t candidates = 0;
  for (const routing::Path& alt : ctx.routes.alternates) {
    if (!(alt == primary)) ++candidates;
  }
  if (candidates == 0) return d;
  const auto nth_candidate = [&](std::size_t n) -> const routing::Path& {
    for (const routing::Path& alt : ctx.routes.alternates) {
      if (alt == primary) continue;
      if (n == 0) return alt;
      --n;
    }
    return ctx.routes.alternates.front();  // unreachable by construction
  };
  // Trunk reservation: the alternate may carry the overflow only if every
  // hop keeps >= trunk circuits free after it (free >= bandwidth + trunk).
  const auto clears_trunk = [&](const routing::Path& path) {
    for (const net::LinkId id : path.links) {
      if (ctx.state.link(id).free_circuits() < ctx.bandwidth + config_.trunk) return false;
    }
    return true;
  };

  std::size_t& remembered = sticky_[pair_index(ctx.src, ctx.dst)];
  if (remembered == kUnset || remembered >= candidates) {
    remembered = rng_.below(candidates);
  }
  const routing::Path& attempt = nth_candidate(remembered);
  ++d.alternates_probed;
  if (clears_trunk(attempt) &&
      ctx.state.path_admissible(attempt, loss::CallClass::kAlternate, ctx.bandwidth)) {
    d.path = &attempt;  // success: the choice sticks
    d.call_class = loss::CallClass::kAlternate;
    return d;
  }
  // Blocked: lose the call and resample a fresh random alternate for the
  // pair's next overflow.
  remembered = rng_.below(candidates);
  return d;
}

std::vector<std::uint8_t> DarPolicy::snapshot_state() const {
  // 4 words of RNG state, trunk, pair count, one word per pair.
  std::vector<std::uint8_t> blob;
  blob.reserve((6 + sticky_.size()) * 8);
  for (const std::uint64_t word : rng_.state()) push_u64(blob, word);
  push_u64(blob, static_cast<std::uint64_t>(config_.trunk));
  push_u64(blob, sticky_.size());
  for (const std::size_t s : sticky_) push_u64(blob, static_cast<std::uint64_t>(s));
  return blob;
}

void DarPolicy::restore_state(const std::vector<std::uint8_t>& blob) {
  const std::size_t expected = (6 + sticky_.size()) * 8;
  if (blob.size() != expected || pull_u64(blob, 5) != sticky_.size()) {
    throw std::invalid_argument(
        "DarPolicy::restore_state: blob does not match this policy's " +
        std::to_string(sticky_.size()) + "-pair memory (got " + std::to_string(blob.size()) +
        " bytes, expected " + std::to_string(expected) + ")");
  }
  if (pull_u64(blob, 4) != static_cast<std::uint64_t>(config_.trunk)) {
    throw std::invalid_argument(
        "DarPolicy::restore_state: checkpoint was taken with trunk=" +
        std::to_string(pull_u64(blob, 4)) + " but this run has trunk=" +
        std::to_string(config_.trunk) + " (resume with the same --policy spec)");
  }
  rng_.set_state({pull_u64(blob, 0), pull_u64(blob, 1), pull_u64(blob, 2), pull_u64(blob, 3)});
  for (std::size_t q = 0; q < sticky_.size(); ++q) {
    sticky_[q] = static_cast<std::size_t>(pull_u64(blob, 5 + 1 + q));
  }
}

}  // namespace altroute::control
