// Configuration of the adaptive control plane (src/control/).
//
// A ControlConfig describes one closed-loop controller: the control epoch
// period on the EVENT timeline (epochs are deterministic simulation events
// at t = epoch, 2*epoch, ..., interleaved with scenario events -- never
// wall clock), the offered-load estimator variant feeding it, and the
// hysteresis knobs (deadband, per-epoch change rate limit) that keep the
// Eq.-15 protection levels from flapping on estimator noise.  The engines
// take `const ControlConfig*` with nullptr / !enabled() meaning "off", so
// an uncontrolled run pays one never-taken branch per arrival and nothing
// else -- the same discipline as obs::Probe.
//
// parse_control_spec / parse_dar_spec are the CLI-facing parsers
// ("--control epoch=5,estimator=ewma,deadband=0.1", "--policy dar,trunk=2");
// they reject malformed input with one pointed std::invalid_argument line
// in the style of the scenario JSON parser (tests/data/control_bad mirrors
// tests/data/scenario_bad).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace altroute::control {

/// Offered-load estimator variant (see estimator.hpp).
enum class EstimatorKind : std::int32_t {
  kWindowedMle = 0,  ///< pooled windowed MLE: converges on stationary traffic
  kEwma = 1,         ///< exponentially weighted windows: tracks load shifts
};

/// Lower-case token used by --control and in error messages ("mle", "ewma").
[[nodiscard]] std::string_view estimator_kind_name(EstimatorKind kind);

struct ControlConfig {
  /// Control epoch period in simulated time; 0 disables the control plane.
  double epoch{0.0};
  EstimatorKind estimator{EstimatorKind::kWindowedMle};
  /// Estimator measurement-window length (arrival counts are binned into
  /// jumping windows of this length; see estimator.hpp).
  double window{5.0};
  /// EWMA weight on the newest completed window (kEwma only).
  double weight{0.3};
  /// Relative deadband: a link whose estimated Lambda moved by at most
  /// deadband * reference since its last accepted re-solve keeps its
  /// REFERENCE lambda (hysteresis -- estimator noise cannot retarget it;
  /// r still tracks the reference's Eq.-15 level, so a rate-limited walk
  /// or a capacity change completes even while the link is held).
  double deadband{0.0};
  /// Per-epoch rate limit: |r_new - r_old| <= max_step per link
  /// (0 = unlimited).
  int max_step{0};

  [[nodiscard]] bool enabled() const { return epoch > 0.0; }

  /// Throws std::invalid_argument with a pointed "control config: ..."
  /// message on out-of-range values (negative epoch, window <= 0, weight
  /// outside (0, 1], negative deadband or max_step).
  void validate() const;
};

/// Knobs of the DAR-style sticky-random alternate policy (dar.hpp).
struct DarConfig {
  /// Trunk reservation: an alternate is admitted only when every link of
  /// the attempted path would keep at least this many free circuits after
  /// booking (Gibbens & Kelly's DAR trunk reservation parameter).
  int trunk{1};

  void validate() const;
};

/// Parses a --control spec: comma-separated key=value pairs over the keys
/// epoch, estimator (mle | ewma), window, weight, deadband, max-step.
/// Example: "epoch=5,estimator=ewma,window=2,weight=0.25,deadband=0.1".
/// The result is validate()d.  Throws std::invalid_argument with a pointed
/// "control spec: ..." message naming the offending token.
[[nodiscard]] ControlConfig parse_control_spec(std::string_view spec);

/// Parses a --policy spec.  Currently the only dynamic policy is "dar",
/// optionally with options: "dar" or "dar,trunk=2".  Throws
/// std::invalid_argument with a pointed "policy spec: ..." message on an
/// unknown policy name, key, or malformed value.
[[nodiscard]] DarConfig parse_dar_spec(std::string_view spec);

}  // namespace altroute::control
