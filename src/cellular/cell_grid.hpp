// Hexagonal cellular layout for the channel-borrowing application of
// Section 3.2.
//
// Cells live on a rows x cols hex grid with wrap-around (a torus, so every
// cell has exactly six neighbors and no boundary effects).  When cell o
// borrows a channel from neighbor b, that channel is locked in the co-cell
// set of the borrow: the lender b plus the two cells adjacent to BOTH o and
// b (on a hex grid an adjacent pair shares exactly two common neighbors).
// A borrowed call therefore consumes capacity in |co-cell set| = 3 cells --
// the cellular analog of a 3-hop alternate path, which is why the paper
// prescribes the Eq.-15 reservation level with H = 3.
#pragma once

#include <array>
#include <vector>

namespace altroute::cellular {

/// Index of a cell in row-major order.
using CellId = int;

class CellGrid {
 public:
  /// rows >= 3 and cols >= 3 (and cols even, for periodic hex alignment)
  /// keep the six neighbors of every cell distinct under wrap-around.
  CellGrid(int rows, int cols);

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] int cell_count() const { return rows_ * cols_; }

  /// The six hex neighbors of `cell`, in a fixed clockwise order.
  [[nodiscard]] const std::array<CellId, 6>& neighbors(CellId cell) const {
    return neighbors_[static_cast<std::size_t>(cell)];
  }

  /// True when a and b are hex-adjacent.
  [[nodiscard]] bool adjacent(CellId a, CellId b) const;

  /// The co-cell set of a borrow by `borrower` from adjacent `lender`:
  /// {lender, common neighbor 1, common neighbor 2}, always size 3.
  /// Throws std::invalid_argument when the cells are not adjacent.
  [[nodiscard]] std::array<CellId, 3> borrow_lock_set(CellId borrower, CellId lender) const;

 private:
  int rows_;
  int cols_;
  std::vector<std::array<CellId, 6>> neighbors_;
};

}  // namespace altroute::cellular
