// Channel-borrowing simulation (Section 3.2's Multiple-Service /
// Multiple-Resource application of the state-protection control).
//
// Calls arrive at each cell as independent Poisson streams and hold an
// Exp(1) time.  A call is served by one channel of its own cell when one is
// free.  Under borrowing, a call arriving at a full cell may take a channel
// from the least-busy adjacent cell, which locks one channel in each cell
// of the borrow's co-cell set (3 cells, see CellGrid::borrow_lock_set).
// The CONTROLLED scheme admits a borrow in a cell only while that cell's
// busy+locked count is below C - r, with r = min_state_protection(lambda,
// C, H=3) computed from the cell's own offered load -- the exact transplant
// of the paper's rule, guaranteeing improvement over no borrowing.
#pragma once

#include <cstdint>
#include <vector>

#include "cellular/cell_grid.hpp"

namespace altroute::cellular {

enum class BorrowingMode {
  kNone,          ///< blocked calls are lost (the "single-path" analog)
  kUncontrolled,  ///< borrow whenever every lock-set cell has a free channel
  kControlled,    ///< borrow only below the state-protection thresholds
};

struct BorrowingConfig {
  int channels_per_cell{50};
  /// Offered load per cell, Erlangs; one entry per cell or a single entry
  /// replicated to all cells.
  std::vector<double> offered;
  double measure{100.0};
  double warmup{10.0};
  BorrowingMode mode{BorrowingMode::kControlled};
  /// H used for the controlled thresholds; the co-cell set size (3) per the
  /// paper's prescription.
  int max_resource_sets{3};
};

struct BorrowingResult {
  long long offered_calls{0};
  long long blocked_calls{0};
  long long borrowed_calls{0};
  std::vector<double> per_cell_blocking;
  std::vector<int> reservations;  ///< thresholds in force (empty for kNone/kUncontrolled)

  [[nodiscard]] double blocking() const {
    return offered_calls > 0
               ? static_cast<double>(blocked_calls) / static_cast<double>(offered_calls)
               : 0.0;
  }
};

/// Runs one replication; deterministic in `seed` (and mode-independent
/// arrivals: the same seed gives the same call trace for every mode).
[[nodiscard]] BorrowingResult run_borrowing(const CellGrid& grid, const BorrowingConfig& config,
                                            std::uint64_t seed);

}  // namespace altroute::cellular
