#include "cellular/cell_grid.hpp"

#include <algorithm>
#include <stdexcept>

namespace altroute::cellular {

CellGrid::CellGrid(int rows, int cols) : rows_(rows), cols_(cols) {
  // Even row count keeps the odd-r offset parity consistent across the row
  // wrap; the >= 4 minimums keep all six neighbors distinct on the torus.
  if (rows < 4 || rows % 2 != 0 || cols < 4) {
    throw std::invalid_argument("CellGrid: need even rows >= 4 and cols >= 4");
  }
  neighbors_.resize(static_cast<std::size_t>(rows * cols));
  const auto id = [this](int r, int c) {
    const int rr = ((r % rows_) + rows_) % rows_;
    const int cc = ((c % cols_) + cols_) % cols_;
    return rr * cols_ + cc;
  };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      // Odd-r offset hex neighborhood, clockwise from "east".
      std::array<CellId, 6> nb{};
      if (r % 2 == 0) {
        nb = {id(r, c + 1),     id(r + 1, c),     id(r + 1, c - 1),
              id(r, c - 1),     id(r - 1, c - 1), id(r - 1, c)};
      } else {
        nb = {id(r, c + 1),     id(r + 1, c + 1), id(r + 1, c),
              id(r, c - 1),     id(r - 1, c),     id(r - 1, c + 1)};
      }
      neighbors_[static_cast<std::size_t>(id(r, c))] = nb;
    }
  }
  // Torus sanity: all six neighbors of every cell must be distinct and
  // different from the cell itself.
  for (int cell = 0; cell < cell_count(); ++cell) {
    auto nb = neighbors_[static_cast<std::size_t>(cell)];
    std::sort(nb.begin(), nb.end());
    for (std::size_t i = 0; i < nb.size(); ++i) {
      if (nb[i] == cell || (i > 0 && nb[i] == nb[i - 1])) {
        throw std::logic_error("CellGrid: degenerate torus neighborhood");
      }
    }
  }
}

bool CellGrid::adjacent(CellId a, CellId b) const {
  const auto& nb = neighbors(a);
  return std::find(nb.begin(), nb.end(), b) != nb.end();
}

std::array<CellId, 3> CellGrid::borrow_lock_set(CellId borrower, CellId lender) const {
  if (!adjacent(borrower, lender)) {
    throw std::invalid_argument("borrow_lock_set: cells are not adjacent");
  }
  const auto& nb_borrower = neighbors(borrower);
  const auto& nb_lender = neighbors(lender);
  std::array<CellId, 3> locked{lender, -1, -1};
  std::size_t found = 1;
  for (const CellId x : nb_borrower) {
    if (x == lender) continue;
    if (std::find(nb_lender.begin(), nb_lender.end(), x) != nb_lender.end()) {
      if (found >= locked.size()) {
        throw std::logic_error("borrow_lock_set: more than two common neighbors");
      }
      locked[found++] = x;
    }
  }
  if (found != locked.size()) {
    throw std::logic_error("borrow_lock_set: fewer than two common neighbors");
  }
  return locked;
}

}  // namespace altroute::cellular
