#include "cellular/borrowing_sim.hpp"

#include <algorithm>
#include <stdexcept>

#include "erlang/state_protection.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace altroute::cellular {

namespace {

// A carried call occupies one channel in 1 cell (home) or 3 cells (borrow).
struct ActiveCall {
  std::array<CellId, 3> cells{-1, -1, -1};
  int cell_count{1};
};

struct Arrival {
  double time;
  double holding;
  CellId cell;
};

}  // namespace

BorrowingResult run_borrowing(const CellGrid& grid, const BorrowingConfig& config,
                              std::uint64_t seed) {
  const int cells = grid.cell_count();
  std::vector<double> offered = config.offered;
  if (offered.size() == 1) offered.assign(static_cast<std::size_t>(cells), offered[0]);
  if (offered.size() != static_cast<std::size_t>(cells)) {
    throw std::invalid_argument("run_borrowing: offered size must be 1 or cell_count");
  }
  if (config.channels_per_cell <= 0) {
    throw std::invalid_argument("run_borrowing: channels_per_cell <= 0");
  }
  if (!(config.measure > 0.0) || !(config.warmup >= 0.0)) {
    throw std::invalid_argument("run_borrowing: bad horizon");
  }
  const double horizon = config.warmup + config.measure;

  // Per-cell thresholds for the controlled mode: each cell computes its own
  // r from its own offered load, exactly as a link computes Eq. 15.
  std::vector<int> reservation(static_cast<std::size_t>(cells), 0);
  if (config.mode == BorrowingMode::kControlled) {
    for (int c = 0; c < cells; ++c) {
      reservation[static_cast<std::size_t>(c)] = erlang::min_state_protection(
          offered[static_cast<std::size_t>(c)], config.channels_per_cell,
          config.max_resource_sets);
    }
  }

  // Pre-generate arrivals per cell (mode-independent, common random numbers).
  std::vector<Arrival> arrivals;
  for (int c = 0; c < cells; ++c) {
    const double rate = offered[static_cast<std::size_t>(c)];
    if (rate <= 0.0) continue;
    sim::Rng rng(seed, static_cast<std::uint64_t>(c) + 1);
    double t = rng.exponential(rate);
    while (t < horizon) {
      arrivals.push_back(Arrival{t, rng.exponential(1.0), c});
      t += rng.exponential(rate);
    }
  }
  std::sort(arrivals.begin(), arrivals.end(), [](const Arrival& a, const Arrival& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.cell < b.cell;
  });

  std::vector<int> busy(static_cast<std::size_t>(cells), 0);  // busy + locked channels
  sim::EventQueue<ActiveCall> departures;

  BorrowingResult result;
  result.per_cell_blocking.assign(static_cast<std::size_t>(cells), 0.0);
  result.reservations =
      (config.mode == BorrowingMode::kControlled) ? reservation : std::vector<int>{};
  std::vector<long long> cell_offered(static_cast<std::size_t>(cells), 0);
  std::vector<long long> cell_blocked(static_cast<std::size_t>(cells), 0);

  const int capacity = config.channels_per_cell;
  const auto admits_borrow = [&](CellId c) {
    if (busy[static_cast<std::size_t>(c)] >= capacity) return false;
    if (config.mode == BorrowingMode::kControlled &&
        busy[static_cast<std::size_t>(c)] >= capacity - reservation[static_cast<std::size_t>(c)]) {
      return false;
    }
    return true;
  };

  for (const Arrival& arrival : arrivals) {
    while (!departures.empty() && departures.next_time() <= arrival.time) {
      const auto [t, call] = departures.pop();
      for (int i = 0; i < call.cell_count; ++i) {
        --busy[static_cast<std::size_t>(call.cells[static_cast<std::size_t>(i)])];
      }
    }

    const bool measured = arrival.time >= config.warmup;
    if (measured) {
      ++result.offered_calls;
      ++cell_offered[static_cast<std::size_t>(arrival.cell)];
    }

    ActiveCall call;
    bool accepted = false;
    if (busy[static_cast<std::size_t>(arrival.cell)] < capacity) {
      call.cells[0] = arrival.cell;
      call.cell_count = 1;
      accepted = true;
    } else if (config.mode != BorrowingMode::kNone) {
      // Borrow from the least-busy admitting neighbor (smallest id ties).
      CellId best = -1;
      for (const CellId nb : grid.neighbors(arrival.cell)) {
        if (!admits_borrow(nb)) continue;
        if (best < 0 || busy[static_cast<std::size_t>(nb)] < busy[static_cast<std::size_t>(best)] ||
            (busy[static_cast<std::size_t>(nb)] == busy[static_cast<std::size_t>(best)] && nb < best)) {
          best = nb;
        }
      }
      if (best >= 0) {
        const auto locked = grid.borrow_lock_set(arrival.cell, best);
        bool all_admit = true;
        for (const CellId c : locked) {
          if (!admits_borrow(c)) {
            all_admit = false;
            break;
          }
        }
        if (all_admit) {
          call.cells = locked;
          call.cell_count = 3;
          accepted = true;
          if (measured) ++result.borrowed_calls;
        }
      }
    }

    if (accepted) {
      for (int i = 0; i < call.cell_count; ++i) {
        ++busy[static_cast<std::size_t>(call.cells[static_cast<std::size_t>(i)])];
      }
      departures.schedule(arrival.time + arrival.holding, call);
    } else if (measured) {
      ++result.blocked_calls;
      ++cell_blocked[static_cast<std::size_t>(arrival.cell)];
    }
  }

  for (int c = 0; c < cells; ++c) {
    const auto idx = static_cast<std::size_t>(c);
    if (cell_offered[idx] > 0) {
      result.per_cell_blocking[idx] =
          static_cast<double>(cell_blocked[idx]) / static_cast<double>(cell_offered[idx]);
    }
  }
  return result;
}

}  // namespace altroute::cellular
