#include "erlang/erlang_b.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace altroute::erlang {

namespace {

void check_args(double a, int c) {
  if (!(a >= 0.0)) throw std::invalid_argument("erlang_b: offered load must be >= 0");
  if (c < 0) throw std::invalid_argument("erlang_b: capacity must be >= 0");
}

}  // namespace

double erlang_b(double a, int c) {
  check_args(a, c);
  if (c == 0) return 1.0;
  if (a == 0.0) return 0.0;
  double y = 1.0;  // y_0
  for (int x = 1; x <= c; ++x) {
    y = 1.0 + (static_cast<double>(x) / a) * y;
    // y grows monotonically; for tiny loads it can overflow to +inf, which
    // correctly yields B == 0 below.
    if (std::isinf(y)) return 0.0;
  }
  return 1.0 / y;
}

std::vector<double> inverse_erlang_sequence(double a, int c) {
  check_args(a, c);
  std::vector<double> y(static_cast<std::size_t>(c) + 1);
  y[0] = 1.0;
  if (a == 0.0) {
    for (int x = 1; x <= c; ++x) {
      y[static_cast<std::size_t>(x)] = std::numeric_limits<double>::infinity();
    }
    return y;
  }
  for (int x = 1; x <= c; ++x) {
    y[static_cast<std::size_t>(x)] =
        1.0 + (static_cast<double>(x) / a) * y[static_cast<std::size_t>(x - 1)];
  }
  return y;
}

double erlang_b_dload(double a, int c) {
  check_args(a, c);
  if (c == 0) return 0.0;  // B is identically 1
  if (a == 0.0) return (c == 1) ? 1.0 : 0.0;
  const double b = erlang_b(a, c);
  return b * (static_cast<double>(c) / a + b - 1.0);
}

double carried_load(double a, int c) { return a * (1.0 - erlang_b(a, c)); }

double loss_rate(double a, int c) { return a * erlang_b(a, c); }

double loss_rate_dload(double a, int c) {
  check_args(a, c);
  if (a == 0.0) return (c == 0) ? 1.0 : 0.0;
  return erlang_b(a, c) + a * erlang_b_dload(a, c);
}

double erlang_b_continuous(double a, double x) {
  if (!(a >= 0.0)) throw std::invalid_argument("erlang_b_continuous: load must be >= 0");
  if (!(x >= 0.0)) throw std::invalid_argument("erlang_b_continuous: capacity must be >= 0");
  if (x == 0.0) return 1.0;
  if (a == 0.0) return 0.0;
  // 1/B = integral_0^inf e^(-u) (1 + u/a)^x du  (substituting u = a t).
  // The integrand is log-concave-ish with a single scale; composite Simpson
  // on [0, U] with U chosen so the tail is below 1e-16 of the bulk.
  double upper = 50.0;
  for (int iter = 0; iter < 8; ++iter) {
    upper = 50.0 + x * std::log1p(upper / a);
  }
  const auto f = [a, x](double u) { return std::exp(-u + x * std::log1p(u / a)); };
  // Simpson with enough panels for ~1e-11 relative accuracy on this smooth
  // integrand; panel count scales with the interval length.
  const int panels = 2 * std::max(2000, static_cast<int>(upper * 8.0));
  const double h = upper / panels;
  double sum = f(0.0) + f(upper);
  for (int i = 1; i < panels; ++i) {
    sum += f(h * i) * ((i % 2 != 0) ? 4.0 : 2.0);
  }
  const double inv_b = sum * h / 3.0;
  return 1.0 / inv_b;
}

}  // namespace altroute::erlang
