#include "erlang/erlang_bound.hpp"

#include <stdexcept>

#include "erlang/erlang_b.hpp"

namespace altroute::erlang {

CutBound erlang_bound(const net::Graph& graph, const net::TrafficMatrix& traffic) {
  const int n = graph.node_count();
  if (n < 2) throw std::invalid_argument("erlang_bound: need at least 2 nodes");
  if (n > 24) throw std::invalid_argument("erlang_bound: exhaustive cut search capped at 24 nodes");
  if (traffic.size() != n) throw std::invalid_argument("erlang_bound: traffic size mismatch");

  const double total_traffic = traffic.total();
  CutBound best;
  if (total_traffic <= 0.0) return best;

  // Per-link endpoint masks let each cut be scored in O(links + n^2).
  const auto links = graph.links();

  const std::uint32_t limit = 1u << (n - 1);  // node 0 pinned in S
  const std::uint32_t full = (1u << n) - 1u;
  for (std::uint32_t half_mask = 0; half_mask < limit; ++half_mask) {
    const std::uint32_t mask = (half_mask << 1) | 1u;  // include node 0
    if (mask == full) continue;                        // S must be proper

    double fwd_traffic = 0.0;
    double rev_traffic = 0.0;
    for (int i = 0; i < n; ++i) {
      const bool i_in = (mask >> i) & 1u;
      for (int j = 0; j < n; ++j) {
        if (i == j) continue;
        const bool j_in = (mask >> j) & 1u;
        if (i_in == j_in) continue;
        const double t = traffic.at(net::NodeId(i), net::NodeId(j));
        if (i_in) {
          fwd_traffic += t;
        } else {
          rev_traffic += t;
        }
      }
    }

    int fwd_cap = 0;
    int rev_cap = 0;
    for (const net::Link& l : links) {
      if (!l.enabled) continue;
      const bool s_in = (mask >> l.src.value) & 1u;
      const bool d_in = (mask >> l.dst.value) & 1u;
      if (s_in && !d_in) fwd_cap += l.capacity;
      if (!s_in && d_in) rev_cap += l.capacity;
    }

    const double value = (fwd_traffic / total_traffic) * erlang_b(fwd_traffic, fwd_cap) +
                         (rev_traffic / total_traffic) * erlang_b(rev_traffic, rev_cap);
    if (value > best.bound) {
      best.bound = value;
      best.cut_mask = mask;
      best.forward_traffic = fwd_traffic;
      best.reverse_traffic = rev_traffic;
      best.forward_capacity = fwd_cap;
      best.reverse_capacity = rev_cap;
    }
  }
  return best;
}

}  // namespace altroute::erlang
