// Ott-Krishnan separable link shadow prices.
//
// For an M/M/C/C link with Poisson offered load `a` (unit-mean holding), the
// shadow price d(j) is the expected increase in the number of calls lost on
// the link, over an infinite horizon, caused by raising its occupancy from j
// to j+1.  Ott & Krishnan route a call on the feasible path minimizing the
// SUM of link shadow prices (the separability approximation) and block it if
// that minimum exceeds the call's revenue (1 for single-class traffic).
//
// d solves the average-cost relative-value equations of the birth-death
// chain with loss rate a*1{j==C}:
//     d(0) = B(a, C),            d(j) = (g + j * d(j-1)) / a,   g = a*B(a,C)
// and satisfies d(C-1) = (a - g)/C = a*(1 - B)/C as a consistency identity.
// The paper uses these prices with UNREDUCED primary loads as its
// state-dependent comparison baseline (Section 4.2.2).
#pragma once

#include <vector>

namespace altroute::erlang {

/// Shadow-price vector d(j) for j = 0..C-1 of an M/M/C/C link with offered
/// load `a` Erlangs.  d is increasing in j and contained in [0, 1].
/// For a == 0 the prices are all zero.  Throws on a < 0 or capacity <= 0.
[[nodiscard]] std::vector<double> link_shadow_prices(double a, int capacity);

}  // namespace altroute::erlang
