// Reduced-load fixed point for SYMMETRIC fully-connected networks with
// two-link alternate routing and trunk reservation -- the analytic model
// of the Mitra-Gibbens / Gibbens-Hunt-Kelly line the paper builds on.
//
// Every ordered pair offers `direct_load` Erlangs to its one-hop primary;
// a blocked call tries the N-2 two-link alternates sequentially, and a
// link admits an alternate only below C - r.  Under the standard
// independence assumptions each link is a birth-death chain with primary
// rate a everywhere and Poisson overflow rate xi below the threshold,
// closed by consistency:
//
//     B = P(link full),   A = P(link occupancy < C - r),
//     q = A^2 (a two-link path admits), K = N - 2,
//     carried overflow per link = 2 a B (1 - (1-q)^K)  =  xi * A.
//
// The fixed point is solved by damped substitution.  Its FAMOUS property,
// exposed here deliberately: for r = 0 near the critical load the map has
// multiple fixed points -- the low-blocking and high-blocking network
// states whose coexistence is the analytic face of the bistability that
// bench/exp_bistability demonstrates by simulation, and which a large
// enough r provably removes.
#pragma once

namespace altroute::erlang {

struct SymmetricOverflowModel {
  int nodes{10};          ///< N >= 3 (K = N - 2 alternates per pair)
  int capacity{120};      ///< C per directed link
  double direct_load{90}; ///< a, Erlangs per ordered pair
  int reservation{0};     ///< trunk-reservation level r in [0, C]
  int max_iterations{100000};
  double damping{0.3};    ///< in (0, 1]
  double tolerance{1e-12};
};

struct SymmetricFixedPoint {
  double link_blocking{0.0};        ///< B at the fixed point
  double alternate_admission{0.0};  ///< A at the fixed point
  double overflow_rate{0.0};        ///< xi, offered overflow per link
  double call_blocking{0.0};        ///< end-to-end: B * (1 - A^2)^(N-2)
  bool converged{false};
  int iterations{0};
};

/// Solves the fixed point by damped substitution starting from
/// B = initial_blocking (0 probes the cold/low state, 1 the hot/high
/// state; different answers from the two starts = bistability).  Throws on
/// malformed models.
[[nodiscard]] SymmetricFixedPoint solve_symmetric_overflow(const SymmetricOverflowModel& model,
                                                           double initial_blocking = 0.0);

}  // namespace altroute::erlang
