// The cut-set Erlang Bound of Section 4: a lower bound on the average
// network blocking probability of ANY routing scheme (even one allowed to
// re-pack calls), used as the reference curve in Figures 3/4/6/7.
//
// For every node subset S, the traffic that must cross the directed cut
// (S -> complement) cannot see less blocking than an Erlang-B system whose
// capacity is the total capacity of the cut; likewise for the reverse cut.
// The bound is the maximum, over all cuts, of the traffic-weighted sum of
// those two Erlang-B terms.
#pragma once

#include "netgraph/graph.hpp"
#include "netgraph/traffic_matrix.hpp"

namespace altroute::erlang {

/// Detail of the best (most binding) cut found by erlang_bound().
struct CutBound {
  double bound{0.0};             ///< lower bound on average network blocking
  std::uint32_t cut_mask{0};     ///< bit i set <=> node i in S
  double forward_traffic{0.0};   ///< sum of T(i,j), i in S, j not in S
  double reverse_traffic{0.0};   ///< sum of T(i,j), i not in S, j in S
  int forward_capacity{0};       ///< total capacity of enabled S -> S^c links
  int reverse_capacity{0};       ///< total capacity of enabled S^c -> S links
};

/// Evaluates the Erlang Bound by exhaustive enumeration of all 2^(N-1) - 1
/// distinct cuts (node 0 is pinned inside S; a cut and its complement give
/// the same value).  Requires N <= 24 nodes and a traffic matrix of matching
/// size.  Returns the binding cut and its bound; bound == 0 for zero traffic.
[[nodiscard]] CutBound erlang_bound(const net::Graph& graph, const net::TrafficMatrix& traffic);

}  // namespace altroute::erlang
