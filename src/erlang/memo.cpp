#include "erlang/memo.hpp"

#include <stdexcept>

#include "erlang/erlang_b.hpp"

namespace altroute::erlang {

bool LinkErlangMemo::configure(double lambda, int capacity) {
  if (!(lambda >= 0.0)) throw std::invalid_argument("LinkErlangMemo: lambda < 0");
  if (capacity <= 0) throw std::invalid_argument("LinkErlangMemo: capacity <= 0");
  if (capacity == capacity_ && lambda == lambda_) return false;
  lambda_ = lambda;
  capacity_ = capacity;
  y_ = inverse_erlang_sequence(lambda, capacity);
  cached_h_ = 0;
  cached_r_ = -1;
  return true;
}

void LinkErlangMemo::invalidate() {
  lambda_ = -1.0;
  capacity_ = 0;
  y_.clear();
  cached_h_ = 0;
  cached_r_ = -1;
}

double LinkErlangMemo::blocking_at(int c) const {
  if (c < 0 || c > capacity_) throw std::out_of_range("LinkErlangMemo::blocking_at");
  // 1/inf == 0.0: identical to erlang_b's overflow-to-zero behaviour.
  return 1.0 / y_[static_cast<std::size_t>(c)];
}

double LinkErlangMemo::theorem1_ratio(int s) const {
  const double b_s = blocking_at(s);
  if (b_s == 0.0) return 0.0;
  return blocking() / b_s;
}

std::vector<double> LinkErlangMemo::kernel() const {
  std::vector<double> table(static_cast<std::size_t>(capacity_) + 1, 0.0);
  if (!(lambda_ > 0.0)) return table;
  for (int s = 1; s <= capacity_; ++s) {
    table[static_cast<std::size_t>(s)] = theorem1_ratio(s);
  }
  return table;
}

int LinkErlangMemo::r_star(int max_alt_hops) const {
  if (max_alt_hops < 1) throw std::invalid_argument("LinkErlangMemo::r_star: H < 1");
  if (!configured()) throw std::logic_error("LinkErlangMemo::r_star: not configured");
  if (cached_h_ == max_alt_hops) return cached_r_;
  // Same scan as erlang::min_state_protection, over the cached sequence.
  int result = capacity_;
  if (lambda_ == 0.0) {
    result = 0;
  } else {
    const double target =
        y_[static_cast<std::size_t>(capacity_)] / static_cast<double>(max_alt_hops);
    for (int r = 0; r < capacity_; ++r) {
      if (y_[static_cast<std::size_t>(capacity_ - r)] <= target) {
        result = r;
        break;
      }
    }
  }
  cached_h_ = max_alt_hops;
  cached_r_ = result;
  return result;
}

std::size_t NetworkErlangMemo::configure(const std::vector<double>& lambda,
                                         const std::vector<int>& capacity) {
  if (lambda.size() != capacity.size()) {
    throw std::invalid_argument("NetworkErlangMemo::configure: size mismatch");
  }
  if (links_.size() != lambda.size()) {
    links_.assign(lambda.size(), {});
  }
  std::size_t rebuilt = 0;
  for (std::size_t k = 0; k < links_.size(); ++k) {
    if (links_[k].configure(lambda[k], capacity[k])) ++rebuilt;
  }
  return rebuilt;
}

void NetworkErlangMemo::invalidate(std::size_t k) {
  if (k >= links_.size()) throw std::out_of_range("NetworkErlangMemo::invalidate");
  links_[k].invalidate();
}

void NetworkErlangMemo::invalidate_all() {
  for (LinkErlangMemo& link : links_) link.invalidate();
}

std::vector<int> NetworkErlangMemo::protection_levels(int max_alt_hops) const {
  std::vector<int> r(links_.size());
  for (std::size_t k = 0; k < links_.size(); ++k) {
    r[k] = links_[k].r_star(max_alt_hops);
  }
  return r;
}

}  // namespace altroute::erlang
