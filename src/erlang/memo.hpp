// Memoized per-link Erlang-B tables: blocking, the Eq.-15 r* search, and
// the Theorem-1 proof-kernel ratio B(Lambda, C) / B(Lambda, s).
//
// Everything the controlled scheme needs per link derives from ONE inverse
// Erlang-B sequence y_x = 1/B(Lambda, x), x = 0..C (Eq. 12).  This module
// caches that sequence per link, keyed on the (Lambda, C) pair that
// produced it, so repeated (re)configuration -- per-load-point retargets,
// scenario resolve_protection storms, the trace analyzer's per-load-point
// kernel tables -- recomputes only the links whose key actually changed.
//
// Invalidation is BY KEY, not by edict: configure() compares the link's
// (Lambda, C) against the cached key and rebuilds on any mismatch, so a
// scenario capacity_set / capacity_scale / traffic_scale event can never
// leave a stale table behind as long as callers pass the current values
// (the regression tests in tests/test_rstar_invalidation.cpp pin exactly
// that, including compounding capacity_scale and repair-after-fail).
// invalidate() / invalidate_all() force a rebuild on the next configure
// even for an identical key (used by tests and defensive call-sites).
//
// All results are bit-identical to the direct erlang_b() /
// min_state_protection() / theorem1_bound() computations: the recursion is
// evaluated with the same operations in the same order, and ratios are
// formed from the same reciprocals.  The differential engine tests assert
// this end to end.
#pragma once

#include <cstddef>
#include <vector>

namespace altroute::erlang {

/// Memoized Erlang tables of one link.
class LinkErlangMemo {
 public:
  /// Installs (lambda, capacity) as the link's operating point, rebuilding
  /// the inverse sequence only when the pair differs from the cached one.
  /// Returns true when a rebuild happened.  Throws like
  /// min_state_protection on lambda < 0 or capacity <= 0.
  bool configure(double lambda, int capacity);

  /// Forces the next configure() to rebuild even for an identical key.
  void invalidate();

  [[nodiscard]] bool configured() const { return capacity_ > 0; }
  [[nodiscard]] double lambda() const { return lambda_; }
  [[nodiscard]] int capacity() const { return capacity_; }

  /// B(lambda, c) for c in [0, capacity], from the cached sequence.
  [[nodiscard]] double blocking_at(int c) const;
  /// B(lambda, capacity).
  [[nodiscard]] double blocking() const { return blocking_at(capacity_); }

  /// The Theorem-1 proof-kernel ratio B(lambda, capacity) / B(lambda, s):
  /// expected extra primary losses charged to one alternate admission that
  /// lands at occupancy state s.  0 when B(lambda, s) == 0.
  [[nodiscard]] double theorem1_ratio(int s) const;

  /// The full kernel table [0..capacity]: entry s is theorem1_ratio(s) for
  /// s >= 1, 0 at s = 0 (the analyzer's per-link audit table).
  [[nodiscard]] std::vector<double> kernel() const;

  /// Eq. 15: smallest r with B(lambda, C)/B(lambda, C - r) <= 1/H, or C
  /// when unsatisfiable.  Identical to erlang::min_state_protection; the
  /// result is additionally memoized per H (resolves repeat the same H).
  [[nodiscard]] int r_star(int max_alt_hops) const;

 private:
  double lambda_{-1.0};
  int capacity_{0};
  std::vector<double> y_;  ///< inverse sequence 1/B(lambda, x), x = 0..C

  mutable int cached_h_{0};   ///< H of the memoized r* (0 = none)
  mutable int cached_r_{-1};  ///< memoized r* for cached_h_
};

/// Per-link memo table for a whole network, indexed by LinkId.
class NetworkErlangMemo {
 public:
  /// (Re)configures every link from parallel lambda/capacity vectors,
  /// rebuilding only the links whose (lambda, capacity) changed.  Resizing
  /// to a different link count drops all cached tables.  Returns the
  /// number of links rebuilt.
  std::size_t configure(const std::vector<double>& lambda, const std::vector<int>& capacity);

  /// Forces link k's next configure to rebuild.
  void invalidate(std::size_t k);
  /// Forces every link's next configure to rebuild.
  void invalidate_all();

  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] const LinkErlangMemo& link(std::size_t k) const { return links_[k]; }

  /// Eq.-15 protection levels r*^k for every link at the given H --
  /// identical to erlang::state_protection_levels on the configured
  /// (lambda, capacity) vectors.
  [[nodiscard]] std::vector<int> protection_levels(int max_alt_hops) const;

 private:
  std::vector<LinkErlangMemo> links_;
};

}  // namespace altroute::erlang
