#include "erlang/symmetric_overflow.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "erlang/birth_death.hpp"

namespace altroute::erlang {

SymmetricFixedPoint solve_symmetric_overflow(const SymmetricOverflowModel& model,
                                             double initial_blocking) {
  if (model.nodes < 3) throw std::invalid_argument("symmetric_overflow: nodes < 3");
  if (model.capacity < 1) throw std::invalid_argument("symmetric_overflow: capacity < 1");
  if (!(model.direct_load >= 0.0)) {
    throw std::invalid_argument("symmetric_overflow: negative load");
  }
  if (model.reservation < 0 || model.reservation > model.capacity) {
    throw std::invalid_argument("symmetric_overflow: reservation out of range");
  }
  if (!(model.damping > 0.0) || model.damping > 1.0 || model.max_iterations < 1 ||
      !(model.tolerance > 0.0)) {
    throw std::invalid_argument("symmetric_overflow: bad solver options");
  }
  if (!(initial_blocking >= 0.0) || initial_blocking > 1.0) {
    throw std::invalid_argument("symmetric_overflow: initial blocking out of [0, 1]");
  }

  const int c = model.capacity;
  const int threshold = c - model.reservation;  // alternates admitted while s < threshold
  const double a = model.direct_load;
  const int k_alternates = model.nodes - 2;

  SymmetricFixedPoint fp;
  fp.link_blocking = initial_blocking;
  // A consistent with the starting B: crude but only seeds the iteration.
  fp.alternate_admission = 1.0 - initial_blocking;

  std::vector<double> death(static_cast<std::size_t>(c));
  for (std::size_t s = 0; s < death.size(); ++s) death[s] = static_cast<double>(s + 1);

  for (int iter = 1; iter <= model.max_iterations; ++iter) {
    fp.iterations = iter;
    // Overflow offered so that accepted overflow matches carried overflow.
    const double q = fp.alternate_admission * fp.alternate_admission;
    const double rescued = 1.0 - std::pow(1.0 - q, k_alternates);
    const double carried_overflow_per_link = 2.0 * a * fp.link_blocking * rescued;
    const double xi = fp.alternate_admission > 1e-12
                          ? carried_overflow_per_link / fp.alternate_admission
                          : 0.0;
    // Link birth-death under (a, xi, threshold).
    std::vector<double> birth(static_cast<std::size_t>(c), a);
    for (int s = 0; s < threshold; ++s) birth[static_cast<std::size_t>(s)] += xi;
    const std::vector<double> pi = stationary_distribution(birth, death);
    double admit = 0.0;
    for (int s = 0; s < threshold; ++s) admit += pi[static_cast<std::size_t>(s)];
    const double fresh_b = pi.back();

    const double delta_b = fresh_b - fp.link_blocking;
    const double delta_a = admit - fp.alternate_admission;
    fp.link_blocking += model.damping * delta_b;
    fp.alternate_admission += model.damping * delta_a;
    fp.overflow_rate = xi;
    if (std::abs(delta_b) < model.tolerance && std::abs(delta_a) < model.tolerance) {
      fp.converged = true;
      break;
    }
  }
  const double q = fp.alternate_admission * fp.alternate_admission;
  fp.call_blocking = fp.link_blocking * std::pow(1.0 - q, k_alternates);
  return fp;
}

}  // namespace altroute::erlang
