#include "erlang/overflow_moments.hpp"

#include <cmath>
#include <stdexcept>

#include "erlang/erlang_b.hpp"

namespace altroute::erlang {

OverflowMoments overflow_moments(double offered, int capacity) {
  if (!(offered >= 0.0)) throw std::invalid_argument("overflow_moments: offered < 0");
  if (capacity < 0) throw std::invalid_argument("overflow_moments: capacity < 0");
  OverflowMoments m;
  if (offered == 0.0) return m;  // empty stream: mean 0, Z defined as 1
  const double b = erlang_b(offered, capacity);
  m.mean = offered * b;
  if (m.mean <= 0.0) {
    m.variance = 0.0;
    m.peakedness = 1.0;
    return m;
  }
  // Riordan: V = alpha * (1 - alpha + a / (c + 1 - a + alpha)).
  m.variance =
      m.mean *
      (1.0 - m.mean + offered / (static_cast<double>(capacity) + 1.0 - offered + m.mean));
  m.peakedness = m.variance / m.mean;
  return m;
}

double hayward_blocking(double mean, double peakedness, int capacity) {
  if (!(mean >= 0.0)) throw std::invalid_argument("hayward_blocking: mean < 0");
  if (!(peakedness > 0.0)) throw std::invalid_argument("hayward_blocking: peakedness <= 0");
  if (capacity < 0) throw std::invalid_argument("hayward_blocking: capacity < 0");
  if (mean == 0.0) return 0.0;
  return erlang_b_continuous(mean / peakedness,
                             static_cast<double>(capacity) / peakedness);
}

EquivalentRandom rapp_equivalent(double mean, double variance) {
  if (!(mean > 0.0)) throw std::invalid_argument("rapp_equivalent: mean <= 0");
  if (!(variance >= mean)) {
    throw std::invalid_argument("rapp_equivalent: variance < mean (not overflow-like)");
  }
  const double z = variance / mean;
  EquivalentRandom eq;
  // Rapp's approximation for the equivalent offered load...
  eq.offered = variance + 3.0 * z * (z - 1.0);
  // ...and the circuit count that makes the overflow mean come out right:
  //     mean = a* B(a*, c*)  =>  c* from the exact relation
  //     c* = a* (mean + z) / (mean + z - 1) - mean - 1.
  eq.circuits = eq.offered * (mean + z) / (mean + z - 1.0) - mean - 1.0;
  if (eq.circuits < 0.0) eq.circuits = 0.0;
  return eq;
}

}  // namespace altroute::erlang
