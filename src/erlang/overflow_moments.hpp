// Overflow traffic moments: Wilkinson's Equivalent Random Theory.
//
// The paper's assumption A1 treats the alternate-routed (overflow) traffic
// arriving at a link as Poisson.  Real overflow is BURSTIER than Poisson:
// calls overflow exactly when the primary link is full, so they arrive in
// clumps.  Classic teletraffic quantifies this with the first two moments
// of the overflow from an Erlang system (Riordan's formulas), the
// peakedness Z = variance/mean (Z = 1 for Poisson, > 1 for overflow), and
// approximations for the blocking such peaked traffic sees:
//
//  * Hayward: a (M, Z)-stream on C circuits blocks like a Poisson M/Z
//    stream on C/Z circuits (fractional capacity via the continuous
//    Erlang-B extension);
//  * Rapp: the inverse map from (M, V) back to an equivalent random
//    system (a*, c*), the heart of ERT dimensioning.
//
// These tools measure how conservative/optimistic A1 is, and extend the
// library toward classical overflow engineering.
#pragma once

namespace altroute::erlang {

/// First two moments of the traffic overflowing an Erlang system of
/// `capacity` circuits offered `offered` Erlangs.
struct OverflowMoments {
  double mean{0.0};        ///< alpha = a * B(a, c)
  double variance{0.0};    ///< Riordan's formula
  double peakedness{1.0};  ///< Z = variance / mean (1 when mean == 0)
};

/// Riordan/Wilkinson overflow moments.  capacity == 0 returns the offered
/// stream itself (Z = 1).  Throws on negative arguments.
[[nodiscard]] OverflowMoments overflow_moments(double offered, int capacity);

/// Hayward's approximation: blocking experienced by a stream of mean `mean`
/// and peakedness `peakedness` offered to `capacity` circuits,
/// B(mean / Z, capacity / Z) with fractional capacity.  peakedness >= some
/// small positive value; Z = 1 reduces exactly to Erlang-B.
[[nodiscard]] double hayward_blocking(double mean, double peakedness, int capacity);

/// Rapp's two-moment fit: an "equivalent random" system whose overflow has
/// (approximately) the given mean and variance.  Returns offered load a*
/// and continuous circuit count c* (the standard dimensioning
/// intermediate).  Requires mean > 0 and variance >= mean.
struct EquivalentRandom {
  double offered{0.0};
  double circuits{0.0};
};
[[nodiscard]] EquivalentRandom rapp_equivalent(double mean, double variance);

}  // namespace altroute::erlang
