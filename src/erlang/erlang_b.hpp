// Erlang-B blocking function and relatives.
//
// B(a, c) is the probability that a Poisson stream of offered load `a`
// Erlangs finds all `c` circuits of a loss system busy.  Everything here is
// computed with the numerically stable *inverse* recursion the paper relies
// on (its Eq. 12, citing Jagerman):
//
//     y_0 = 1,   y_x = 1 + (x / a) * y_{x-1},   B(a, x) = 1 / y_x
//
// which never overflows and is exact to rounding for any practical (a, c).
#pragma once

#include <vector>

namespace altroute::erlang {

/// Erlang-B blocking probability B(a, c) for offered load `a` >= 0 Erlangs
/// and integer capacity `c` >= 0 circuits.  B(a, 0) == 1; B(0, c>0) == 0.
/// Throws std::invalid_argument on negative arguments.
[[nodiscard]] double erlang_b(double a, int c);

/// The inverse-blocking sequence y_x = 1 / B(a, x) for x = 0..c, i.e. the
/// vector [y_0, y_1, ..., y_c].  This is the workhorse for the Eq.-15
/// state-protection search, which needs ratios B(a,C)/B(a,C-r) = y_{C-r}/y_C
/// for many r at once.  For a == 0 the sequence is y_0 = 1 and +infinity
/// afterwards (blocking is exactly zero).
[[nodiscard]] std::vector<double> inverse_erlang_sequence(double a, int c);

/// dB/da: sensitivity of Erlang-B blocking to offered load, via the closed
/// form dB/da = B * (c/a + B - 1).  Continuous at a == 0 (limit 1 for c==1,
/// 0 otherwise).
[[nodiscard]] double erlang_b_dload(double a, int c);

/// Carried load a * (1 - B(a, c)) in Erlangs.
[[nodiscard]] double carried_load(double a, int c);

/// Loss rate a * B(a, c): the expected number of calls lost per unit time.
/// Krishnan proved this convex in `a` (the property the min-loss primary
/// routing of Section 4 relies on).
[[nodiscard]] double loss_rate(double a, int c);

/// d(loss_rate)/da = B + a * dB/da.  Gradient for the min-loss optimizer.
[[nodiscard]] double loss_rate_dload(double a, int c);

/// Continuous-capacity extension of Erlang-B via the integral representation
///     1 / B(a, x) = integral_0^inf a * e^(-a*t) * (1 + t)^x dt,
/// valid for real x >= 0.  Agrees with erlang_b() at integer x.  Used for
/// fractional-capacity what-if analyses; accurate to ~1e-10 relative.
[[nodiscard]] double erlang_b_continuous(double a, double x);

}  // namespace altroute::erlang
