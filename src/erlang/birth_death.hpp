// Finite birth-death chains: stationary distributions, the paper's
// generalized Erlang blocking function, and first-passage quantities used to
// validate Theorem 1 exactly.
//
// A chain on states 0..C is described by birth rates lambda[s] (rate of the
// s -> s+1 transition, for s = 0..C-1) and death rates mu[s] (rate of the
// s -> s-1 transition, for s = 1..C).  The paper's link model (Figure 1) has
// mu[s] = s (exponential unit-mean holding, one departure per call) and
// lambda[s] = nu + overflow(s) below the protection threshold, nu above it.
#pragma once

#include <vector>

namespace altroute::erlang {

/// Stationary distribution pi[0..C] of the birth-death chain with the given
/// birth (size C) and death (size C) rate vectors; death[s-1] is the rate of
/// the s -> s-1 transition.  All rates must be strictly positive except that
/// trailing zero birth rates are allowed (truncated chain).  Throws on
/// inconsistent sizes or negative rates.
[[nodiscard]] std::vector<double> stationary_distribution(
    const std::vector<double>& birth, const std::vector<double>& death);

/// The paper's generalized Erlang blocking function B(lambda_vec, C): the
/// stationary probability that the chain with state-dependent birth rates
/// `birth[s]` (s = 0..C-1) and death rates mu[s] = s sits in its top state C.
/// By PASTA this is exactly the blocking probability experienced by any
/// state-INdependent Poisson substream sharing the link.  C = birth.size().
[[nodiscard]] double generalized_erlang_b(const std::vector<double>& birth);

/// Expected number of *accepted arrivals* between the instant the chain sits
/// in state s and the first time it reaches s+1 -- the X_{s,s+1} of the
/// paper's Eq. 4/5, computed by the exact first-step recursion
///     X_{s,s+1} = 1 + death[s]/birth[s] * X_{s-1,s},  X_{0,1} = 1.
/// Returns the vector X_{s,s+1} for s = 0..C-1.
[[nodiscard]] std::vector<double> accepted_arrivals_to_next_state(
    const std::vector<double>& birth, const std::vector<double>& death);

/// Expected *time* for the chain to first reach state s+1 starting from
/// state s, for s = 0..C-1 (standard birth-death first-passage recursion
///     m_0 = 1/birth[0],  m_s = (1 + death[s] * m_{s-1}) / birth[s]).
[[nodiscard]] std::vector<double> mean_passage_time_up(
    const std::vector<double>& birth, const std::vector<double>& death);

/// Birth-rate vector for the paper's protected link of Figure 1: primary
/// Poisson rate `nu` in every state, plus state-dependent overflow rates
/// `overflow[s]` admitted only in states s < C - r.  overflow may be shorter
/// than C; missing entries are treated as zero.  Result has size C.
[[nodiscard]] std::vector<double> protected_link_births(
    double nu, const std::vector<double>& overflow, int capacity, int reservation);

}  // namespace altroute::erlang
