// Kaufman-Roberts recursion: multi-rate Erlang blocking on one link.
//
// The paper's model is explicitly single-rate ("In this preliminary study
// we assume calls of identical statistics") and names multiple call types
// as future work.  This module supplies the analytic foundation for the
// library's multi-rate extension: S independent Poisson classes, class s
// offering a_s Erlangs of b_s-unit calls on a C-unit link, share the link
// in product form, and the total-occupancy distribution q(j) obeys
//
//     j * q(j) = sum_s a_s * b_s * q(j - b_s),       q(j < 0) = 0,
//
// from which class s blocks with probability sum_{j > C - b_s} q(j).
#pragma once

#include <vector>

namespace altroute::erlang {

/// One traffic class on a link.
struct RateClass {
  double offered{0.0};  ///< Erlangs (arrival rate x mean holding)
  int bandwidth{1};     ///< circuits seized per call (b_s >= 1)
};

/// Occupancy distribution q(0..capacity) by the Kaufman-Roberts recursion.
/// Throws on empty classes, non-positive bandwidth, negative load, or
/// capacity < 0.
[[nodiscard]] std::vector<double> kaufman_roberts_distribution(
    const std::vector<RateClass>& classes, int capacity);

/// Per-class blocking probabilities (same order as `classes`).
[[nodiscard]] std::vector<double> kaufman_roberts_blocking(
    const std::vector<RateClass>& classes, int capacity);

/// Per-class blocking when the link additionally refuses class s whenever
/// the post-admission occupancy would exceed capacity - reservation[s]
/// (bandwidth-and-reservation admission, the multi-rate generalization of
/// the paper's trunk-reservation rule).  The occupancy process is no
/// longer product-form, so this solves the multi-dimensional Markov chain
/// EXACTLY by iterative global balance -- exponential in the class count;
/// intended for validation at small capacities (C * ... state space is
/// prod_s (C/b_s + 1), capped internally at ~2e6 states).
[[nodiscard]] std::vector<double> multirate_reservation_blocking(
    const std::vector<RateClass>& classes, int capacity,
    const std::vector<int>& reservation);

}  // namespace altroute::erlang
