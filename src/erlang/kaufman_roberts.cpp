#include "erlang/kaufman_roberts.hpp"

#include <cmath>
#include <map>
#include <stdexcept>

namespace altroute::erlang {

namespace {

void check_classes(const std::vector<RateClass>& classes, int capacity) {
  if (classes.empty()) throw std::invalid_argument("kaufman_roberts: no classes");
  if (capacity < 0) throw std::invalid_argument("kaufman_roberts: capacity < 0");
  for (const RateClass& c : classes) {
    if (c.bandwidth < 1) throw std::invalid_argument("kaufman_roberts: bandwidth < 1");
    if (!(c.offered >= 0.0)) throw std::invalid_argument("kaufman_roberts: offered < 0");
  }
}

}  // namespace

std::vector<double> kaufman_roberts_distribution(const std::vector<RateClass>& classes,
                                                 int capacity) {
  check_classes(classes, capacity);
  std::vector<double> q(static_cast<std::size_t>(capacity) + 1, 0.0);
  q[0] = 1.0;
  double total = 1.0;
  for (int j = 1; j <= capacity; ++j) {
    double value = 0.0;
    for (const RateClass& c : classes) {
      if (j - c.bandwidth >= 0) {
        value += c.offered * c.bandwidth * q[static_cast<std::size_t>(j - c.bandwidth)];
      }
    }
    value /= static_cast<double>(j);
    q[static_cast<std::size_t>(j)] = value;
    total += value;
    // Rescale on the fly if the unnormalized weights explode (heavy load).
    if (total > 1e280) {
      for (int t = 0; t <= j; ++t) q[static_cast<std::size_t>(t)] /= total;
      total = 1.0;
    }
  }
  for (double& value : q) value /= total;
  return q;
}

std::vector<double> kaufman_roberts_blocking(const std::vector<RateClass>& classes,
                                             int capacity) {
  const std::vector<double> q = kaufman_roberts_distribution(classes, capacity);
  std::vector<double> blocking(classes.size(), 0.0);
  for (std::size_t s = 0; s < classes.size(); ++s) {
    double sum = 0.0;
    for (int j = capacity - classes[s].bandwidth + 1; j <= capacity; ++j) {
      if (j >= 0) sum += q[static_cast<std::size_t>(j)];
    }
    blocking[s] = sum;
  }
  return blocking;
}

std::vector<double> multirate_reservation_blocking(const std::vector<RateClass>& classes,
                                                   int capacity,
                                                   const std::vector<int>& reservation) {
  check_classes(classes, capacity);
  if (reservation.size() != classes.size()) {
    throw std::invalid_argument("multirate_reservation_blocking: reservation size mismatch");
  }
  for (std::size_t s = 0; s < reservation.size(); ++s) {
    if (reservation[s] < 0 || reservation[s] > capacity) {
      throw std::invalid_argument("multirate_reservation_blocking: reservation out of range");
    }
  }
  const std::size_t n_classes = classes.size();

  // Enumerate feasible states (n_1..n_S) with sum n_s * b_s <= C.
  std::vector<std::vector<int>> states;
  std::map<std::vector<int>, std::size_t> index;
  {
    std::vector<int> current(n_classes, 0);
    // Iterative odometer enumeration.
    for (;;) {
      int used = 0;
      for (std::size_t s = 0; s < n_classes; ++s) used += current[s] * classes[s].bandwidth;
      if (used <= capacity) {
        index.emplace(current, states.size());
        states.push_back(current);
        if (states.size() > 2000000) {
          throw std::invalid_argument("multirate_reservation_blocking: state space too large");
        }
      }
      // Advance the odometer; skip over infeasible suffixes cheaply by
      // incrementing the lowest class first.
      std::size_t s = 0;
      for (; s < n_classes; ++s) {
        ++current[s];
        int new_used = 0;
        for (std::size_t t = 0; t < n_classes; ++t) new_used += current[t] * classes[t].bandwidth;
        if (new_used <= capacity) break;
        current[s] = 0;
      }
      if (s == n_classes) break;
    }
  }

  const auto occupancy_of = [&](const std::vector<int>& state) {
    int used = 0;
    for (std::size_t s = 0; s < n_classes; ++s) used += state[s] * classes[s].bandwidth;
    return used;
  };
  const auto admits = [&](int occupancy, std::size_t s) {
    return occupancy + classes[s].bandwidth <= capacity - reservation[s];
  };

  // Uniformized power iteration for the stationary distribution.
  double max_rate = 0.0;
  for (const RateClass& c : classes) max_rate += c.offered;
  max_rate += static_cast<double>(capacity);  // at most C calls in progress
  std::vector<double> pi(states.size(), 1.0 / static_cast<double>(states.size()));
  std::vector<double> next(states.size());
  std::vector<int> neighbor(n_classes);
  for (int iter = 0; iter < 200000; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t i = 0; i < states.size(); ++i) {
      const std::vector<int>& state = states[i];
      const int occupancy = occupancy_of(state);
      double stay = max_rate;
      for (std::size_t s = 0; s < n_classes; ++s) {
        if (admits(occupancy, s)) {
          neighbor = state;
          ++neighbor[s];
          next[index.at(neighbor)] += pi[i] * classes[s].offered;
          stay -= classes[s].offered;
        }
        if (state[s] > 0) {
          neighbor = state;
          --neighbor[s];
          next[index.at(neighbor)] += pi[i] * static_cast<double>(state[s]);
          stay -= static_cast<double>(state[s]);
        }
      }
      next[i] += pi[i] * stay;
    }
    double delta = 0.0;
    for (std::size_t i = 0; i < states.size(); ++i) {
      next[i] /= max_rate;
      delta = std::max(delta, std::abs(next[i] - pi[i]));
    }
    pi.swap(next);
    if (delta < 1e-13) break;
  }

  std::vector<double> blocking(n_classes, 0.0);
  for (std::size_t i = 0; i < states.size(); ++i) {
    const int occupancy = occupancy_of(states[i]);
    for (std::size_t s = 0; s < n_classes; ++s) {
      if (!admits(occupancy, s)) blocking[s] += pi[i];
    }
  }
  return blocking;
}

}  // namespace altroute::erlang
