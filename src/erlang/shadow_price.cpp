#include "erlang/shadow_price.hpp"

#include <stdexcept>

#include "erlang/erlang_b.hpp"

namespace altroute::erlang {

std::vector<double> link_shadow_prices(double a, int capacity) {
  if (!(a >= 0.0)) throw std::invalid_argument("link_shadow_prices: load < 0");
  if (capacity <= 0) throw std::invalid_argument("link_shadow_prices: capacity <= 0");
  std::vector<double> d(static_cast<std::size_t>(capacity), 0.0);
  if (a == 0.0) return d;
  const double b = erlang_b(a, capacity);
  const double g = a * b;  // long-run loss rate (calls per unit time)
  d[0] = b;
  for (int j = 1; j < capacity; ++j) {
    d[static_cast<std::size_t>(j)] =
        (g + static_cast<double>(j) * d[static_cast<std::size_t>(j - 1)]) / a;
  }
  return d;
}

}  // namespace altroute::erlang
