// State-protection (trunk-reservation) level selection -- the paper's Eq. 15.
//
// Theorem 1 bounds the expected number of extra primary calls lost at link k
// when one alternate-routed call is accepted:
//
//     L^k  <=  B(Lambda^k, C^k) / B(Lambda^k, C^k - r^k)
//
// If every link on an alternate path of at most H hops keeps this bound
// below 1/H, accepting the alternate call (worth one carried call) can cost
// at most H * (1/H) = 1 expected primary call: the controlled scheme then
// never does worse than single-path routing.  The control picks, per link,
// the SMALLEST r that achieves the bound, so that alternate routing is as
// free as the guarantee allows.
#pragma once

#include <vector>

namespace altroute::erlang {

/// Smallest reservation level r in [0, capacity] such that
///     B(lambda, capacity) / B(lambda, capacity - r) <= 1 / max_alt_hops.
/// Returns `capacity` when no r satisfies the inequality (heavily loaded
/// link: alternate-routed calls are shut out entirely, reproducing the
/// r = C = 100 entries of the paper's Table 1).
///
/// `lambda` is the link's primary traffic demand Lambda^k in Erlangs
/// (Eq. 1); `max_alt_hops` is the network-wide design constant H >= 1.
[[nodiscard]] int min_state_protection(double lambda, int capacity, int max_alt_hops);

/// The Theorem-1 bound B(lambda, c) / B(lambda, c - r) itself, i.e. the
/// guaranteed ceiling on expected extra primary losses per accepted
/// alternate call.  +infinity when B(lambda, c - r) == 0 (lambda == 0).
[[nodiscard]] double theorem1_bound(double lambda, int capacity, int reservation);

/// min_state_protection() applied element-wise: entry k pairs lambda[k] with
/// capacity[k].  Convenience for whole-network threshold tables.
[[nodiscard]] std::vector<int> state_protection_levels(const std::vector<double>& lambda,
                                                       const std::vector<int>& capacity,
                                                       int max_alt_hops);

}  // namespace altroute::erlang
