#include "erlang/state_protection.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "erlang/erlang_b.hpp"

namespace altroute::erlang {

int min_state_protection(double lambda, int capacity, int max_alt_hops) {
  if (!(lambda >= 0.0)) throw std::invalid_argument("min_state_protection: lambda < 0");
  if (capacity <= 0) throw std::invalid_argument("min_state_protection: capacity <= 0");
  if (max_alt_hops < 1) throw std::invalid_argument("min_state_protection: H < 1");
  if (lambda == 0.0) return 0;  // B(0, c) == 0 for all c >= 1: bound is 0/0 -> no risk
  // In terms of the inverse sequence y_x = 1/B(lambda, x), Eq. 15 reads
  //     y_{C-r} / y_C <= 1/H   <=>   y_{C-r} <= y_C / H,
  // and y is increasing in x, so the smallest admissible r is found by
  // scanning r upward (equivalently C-r downward).
  const std::vector<double> y = inverse_erlang_sequence(lambda, capacity);
  const double target = y[static_cast<std::size_t>(capacity)] / static_cast<double>(max_alt_hops);
  for (int r = 0; r < capacity; ++r) {
    if (y[static_cast<std::size_t>(capacity - r)] <= target) return r;
  }
  // r == capacity would compare against y_0 == 1; even if that satisfied the
  // inequality the link has no state in which it admits alternates, so the
  // distinction is moot -- but keep it mathematically exact:
  if (y[0] <= target) return capacity;
  return capacity;  // unsatisfiable: disable alternate-routed calls
}

double theorem1_bound(double lambda, int capacity, int reservation) {
  if (!(lambda >= 0.0)) throw std::invalid_argument("theorem1_bound: lambda < 0");
  if (capacity <= 0) throw std::invalid_argument("theorem1_bound: capacity <= 0");
  if (reservation < 0 || reservation > capacity) {
    throw std::invalid_argument("theorem1_bound: reservation out of range");
  }
  const double denom = erlang_b(lambda, capacity - reservation);
  if (denom == 0.0) return std::numeric_limits<double>::infinity();
  return erlang_b(lambda, capacity) / denom;
}

std::vector<int> state_protection_levels(const std::vector<double>& lambda,
                                         const std::vector<int>& capacity,
                                         int max_alt_hops) {
  if (lambda.size() != capacity.size()) {
    throw std::invalid_argument("state_protection_levels: size mismatch");
  }
  std::vector<int> r(lambda.size());
  for (std::size_t k = 0; k < lambda.size(); ++k) {
    r[k] = min_state_protection(lambda[k], capacity[k], max_alt_hops);
  }
  return r;
}

}  // namespace altroute::erlang
