#include "erlang/birth_death.hpp"

#include <algorithm>
#include <stdexcept>

namespace altroute::erlang {

namespace {

void check_rates(const std::vector<double>& birth, const std::vector<double>& death) {
  if (birth.size() != death.size()) {
    throw std::invalid_argument("birth_death: birth/death size mismatch");
  }
  if (birth.empty()) throw std::invalid_argument("birth_death: empty chain");
  for (const double b : birth) {
    if (!(b >= 0.0)) throw std::invalid_argument("birth_death: negative birth rate");
  }
  for (const double d : death) {
    if (!(d > 0.0)) throw std::invalid_argument("birth_death: death rates must be > 0");
  }
}

}  // namespace

std::vector<double> stationary_distribution(const std::vector<double>& birth,
                                            const std::vector<double>& death) {
  check_rates(birth, death);
  const std::size_t c = birth.size();
  // Detailed balance: pi[s+1] = pi[s] * birth[s] / death[s].  Accumulate the
  // unnormalized weights and rescale on the fly to avoid overflow for large
  // chains (weights can span hundreds of orders of magnitude).
  std::vector<double> pi(c + 1);
  pi[0] = 1.0;
  double scale = 1.0;
  for (std::size_t s = 0; s < c; ++s) {
    pi[s + 1] = pi[s] * (birth[s] / death[s]);
    if (pi[s + 1] > 1e200) {
      const double shrink = 1e-200;
      for (std::size_t t = 0; t <= s + 1; ++t) pi[t] *= shrink;
      scale *= shrink;
    }
  }
  (void)scale;
  double total = 0.0;
  for (const double p : pi) total += p;
  for (double& p : pi) p /= total;
  return pi;
}

double generalized_erlang_b(const std::vector<double>& birth) {
  if (birth.empty()) return 1.0;  // zero-capacity link blocks everything
  std::vector<double> death(birth.size());
  for (std::size_t s = 0; s < death.size(); ++s) death[s] = static_cast<double>(s + 1);
  return stationary_distribution(birth, death).back();
}

std::vector<double> accepted_arrivals_to_next_state(const std::vector<double>& birth,
                                                    const std::vector<double>& death) {
  check_rates(birth, death);
  for (const double b : birth) {
    if (!(b > 0.0)) {
      throw std::invalid_argument("accepted_arrivals_to_next_state: birth rates must be > 0");
    }
  }
  const std::size_t c = birth.size();
  std::vector<double> x(c);
  x[0] = 1.0;
  for (std::size_t s = 1; s < c; ++s) {
    x[s] = 1.0 + (death[s - 1] / birth[s]) * x[s - 1];
  }
  return x;
}

std::vector<double> mean_passage_time_up(const std::vector<double>& birth,
                                         const std::vector<double>& death) {
  check_rates(birth, death);
  for (const double b : birth) {
    if (!(b > 0.0)) {
      throw std::invalid_argument("mean_passage_time_up: birth rates must be > 0");
    }
  }
  const std::size_t c = birth.size();
  std::vector<double> m(c);
  m[0] = 1.0 / birth[0];
  for (std::size_t s = 1; s < c; ++s) {
    m[s] = (1.0 + death[s - 1] * m[s - 1]) / birth[s];
  }
  return m;
}

std::vector<double> protected_link_births(double nu, const std::vector<double>& overflow,
                                          int capacity, int reservation) {
  if (!(nu >= 0.0)) throw std::invalid_argument("protected_link_births: nu must be >= 0");
  if (capacity <= 0) throw std::invalid_argument("protected_link_births: capacity must be > 0");
  if (reservation < 0 || reservation > capacity) {
    throw std::invalid_argument("protected_link_births: reservation out of [0, capacity]");
  }
  std::vector<double> birth(static_cast<std::size_t>(capacity), nu);
  const int protect_from = capacity - reservation;  // states >= C-r refuse overflow
  for (int s = 0; s < protect_from; ++s) {
    const auto idx = static_cast<std::size_t>(s);
    if (idx < overflow.size()) {
      if (!(overflow[idx] >= 0.0)) {
        throw std::invalid_argument("protected_link_births: negative overflow rate");
      }
      birth[idx] += overflow[idx];
    }
  }
  return birth;
}

}  // namespace altroute::erlang
