// Stateful invariant oracle: independent re-derivation of what one
// scenario run MUST have done.
//
// An ObservedRun bundles everything one engine run produced -- the result
// struct, the full metric registry, the buffered trace records, and their
// rendered JSONL lines.  check_invariants replays that evidence against a
// from-scratch model that knows nothing of the engine's internals: per-link
// capacity/enabled state evolved from the CaseSpec's events, and (when the
// whole run is traced, i.e. warmup == 0) full per-link occupancy
// reconstructed call by call from the admitted records' booked paths and
// holding times, with failure kills and shrink preemptions re-derived by
// the documented rules (kill every call on a failed facility; preempt
// newest-first until occupancy <= capacity; scaled capacity =
// max(1, round(old * factor))).
//
// Checked properties (each failure is one pointed message):
//   * conservation -- offered == blocked + carried, with the per-pair,
//     per-class, per-bin, and hop-census breakdowns summing to the totals;
//   * counters vs. results -- every obs counter equals its RunResult twin,
//     killed + preempted == dropped, carried_hops histogram mass and sum
//     match the hop census;
//   * Theorem-1 bookkeeping -- every admitted record carries the
//     post-booking occupancy vector (the Eq. 4-6 kernel charge state), and
//     a controlled policy never admits an alternate inside the protected
//     band;
//   * trace stream -- record times non-decreasing within [0, horizon],
//     rendered line count matches the record count;
//   * event application -- the applied log is exactly the spec's events
//     with time <= horizon, in order, with the model's links_changed;
//   * epoch purity (control-on cases) -- protection levels change only at
//     control epochs, each epoch record sits exactly on the k * epoch
//     grid, and its installed r vector is a pure function of the recorded
//     estimator output: re-solving Eq. 15 from the record's own lambda/cap
//     vectors (with the documented deadband-hold and max_step-clamp rules
//     against the previous record) must reproduce it exactly;
//   * state model -- admissions land on enabled links only, occupancy
//     never exceeds capacity, every admitted record's occupancy vector
//     equals the model's prediction exactly, final per-link
//     capacity/enabled/occupancy match, every event's kill count matches,
//     and the occupancy grid stays within [0, max capacity ever].
#pragma once

#include <string>
#include <vector>

#include "check/case.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scenario/runner.hpp"

namespace altroute::check {

/// Everything one engine configuration produced, captured for comparison.
struct ObservedRun {
  scenario::ScenarioRunResult result;
  /// Copy of the run's metric registry (counters, histograms, grid).
  obs::MetricRegistry metrics;
  /// metrics.to_json() -- the string the differential oracle compares.
  std::string metrics_json;
  /// Buffered trace records, in emission order.
  std::vector<obs::TraceRecord> records;
  /// JsonlTraceSink::format of each record (byte-stable rendering).
  std::vector<std::string> trace_lines;
  /// Flight-recorder dump of the run's last N records (empty unless
  /// CheckOptions::flight_recorder > 0).  Diagnostic only: the
  /// differential oracle never compares it.
  std::string flight_dump;
};

/// Runs every invariant against one observed run.  Returns one message per
/// violated property (empty = all invariants hold).  The occupancy
/// reconstruction runs only when spec.warmup == 0 (otherwise pre-warm-up
/// admissions are untraced by design); the event/capacity model and all
/// accounting checks run regardless.
[[nodiscard]] std::vector<std::string> check_invariants(const CaseSpec& spec,
                                                        const ObservedRun& run);

}  // namespace altroute::check
