// Randomized test-case universe of the model-based checker.
//
// A CaseSpec is a COMPLETE, self-contained description of one simulation
// scenario drawn from seeded distributions: a connected general mesh with
// per-facility capacities, an offered-traffic matrix heavy enough to
// block, a routing-policy configuration, a scripted event Scenario, and a
// resume point.  Everything downstream -- graph, trace, reservations,
// policy object -- is materialized deterministically from the spec, so a
// case is reproduced exactly by its single uint64 seed (or by the case.json
// artifact a failing run dumps).  Specs are plain data on purpose: the
// shrinker (shrink.hpp) mutates them structurally and the oracle
// (oracle.hpp) replays them through every engine configuration.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "control/config.hpp"
#include "loss/policy.hpp"
#include "netgraph/graph.hpp"
#include "netgraph/traffic_matrix.hpp"
#include "scenario/scenario.hpp"
#include "sim/call_trace.hpp"

namespace altroute::check {

/// Which routing scheme the case runs: the three schemes whose behaviour
/// is fully specified by (routes, reservations) alone, plus the stateful
/// DAR policy (sticky-random + trunk reservation, control/dar.hpp) whose
/// learning state rides the policy snapshot blob.
enum class PolicyChoice { kSinglePath, kUncontrolled, kControlled, kDar };

/// The policy's own display name ("single-path", ...); also the token used
/// in case.json.
[[nodiscard]] std::string_view policy_choice_name(PolicyChoice choice);

/// One duplex facility: endpoints and per-direction circuit count.
/// Facility f materializes as directed links 2f (a->b) and 2f+1 (b->a) --
/// the invariant model relies on that mapping.
struct FacilitySpec {
  int a{0};
  int b{1};
  int capacity{1};
};

struct CaseSpec {
  std::uint64_t seed{0};  ///< the case seed this spec was generated from
  int nodes{2};
  std::vector<FacilitySpec> facilities;
  /// Offered Erlangs per ordered pair, row-major nodes x nodes, diagonal 0.
  std::vector<double> demands;
  double horizon{20.0};
  double warmup{0.0};
  int time_bins{0};
  int max_alt_hops{3};
  PolicyChoice policy{PolicyChoice::kControlled};
  /// Install Eq.-15 protection levels computed from the initial topology.
  bool protect{true};
  bool auto_resolve{false};
  std::uint64_t trace_seed{1};
  std::uint64_t policy_seed{0x5eed};
  /// Capture/resume equivalence is checked at this time; < 0 disables.
  double resume_at{-1.0};
  std::vector<scenario::ScenarioEvent> events;

  // --- adaptive control plane (src/control) --------------------------------
  // 0 = control off (the pre-control engine, bit for bit).  When > 0 the
  // oracle wires a control::ControlConfig into every engine run and the
  // invariants add the epoch-purity check.
  double control_epoch{0.0};
  int control_estimator{0};  ///< 0 = mle, 1 = ewma (EstimatorKind value)
  double control_window{5.0};
  double control_weight{0.3};
  double control_deadband{0.0};
  int control_max_step{0};
  /// Trunk reservation of the DAR policy (used only when policy == kDar).
  int dar_trunk{1};

  [[nodiscard]] bool control_on() const { return control_epoch > 0.0; }
  /// The control::ControlConfig this spec describes (validate()d by
  /// CaseSpec::validate when control_on()).
  [[nodiscard]] control::ControlConfig control_config() const;

  /// Structural validity: node/facility indexing, unique facilities,
  /// demand shape, warmup < horizon, every link event naming an existing
  /// facility, and scenario::Scenario::validate on the event list.  Throws
  /// std::invalid_argument with a pointed message.
  void validate() const;

  // --- materializers (deterministic in the spec) ---------------------------
  [[nodiscard]] net::Graph graph() const;
  [[nodiscard]] net::TrafficMatrix traffic() const;
  [[nodiscard]] scenario::Scenario scenario() const;
  [[nodiscard]] sim::CallTrace trace() const;
  [[nodiscard]] std::unique_ptr<loss::RoutingPolicy> make_policy() const;
  /// Initial per-link protection levels (empty when !protect).
  [[nodiscard]] std::vector<int> reservations() const;
};

/// Expands one case seed into a spec: 2..8 nodes ringed for connectivity
/// plus random chords, capacities 2..15, demands sized against the mean
/// capacity so the mesh actually blocks, 0..6 events over all six kinds,
/// and randomized engine knobs.  ~35% of cases run the adaptive control
/// plane and ~20% the DAR policy (drawn AFTER the event loop, so every
/// pre-control seed keeps its exact spec prefix).  Deterministic in
/// `case_seed`.
[[nodiscard]] CaseSpec generate_case(std::uint64_t case_seed);

// --- case.json ---------------------------------------------------------------
// Schema: {"format": 1, "seed": "<u64 decimal>", "nodes": N, ...,
// "facilities": [[a, b, capacity], ...], "demands": [[src, dst, erlangs],
// ...] (non-zero entries only), "scenario": {<scenario schema>}}.  Seeds
// travel as decimal STRINGS -- JSON numbers are doubles and lose u64
// precision -- and every double is printed "%.17g", so
// case_from_json(case_to_json(s)) round-trips bit-exactly.  The control
// fields (control_epoch, control_estimator "mle"|"ewma", control_window,
// control_weight, control_deadband, control_max_step, dar_trunk) are
// always written but OPTIONAL on read: pre-control case.json files still
// parse, with control off and default DAR trunk.

[[nodiscard]] std::string case_to_json(const CaseSpec& spec);
[[nodiscard]] CaseSpec case_from_json(std::string_view json_text);

/// Reads and parses a case.json file.  Throws std::runtime_error when the
/// file cannot be read, std::invalid_argument on malformed content.
[[nodiscard]] CaseSpec load_case(const std::string& path);

/// Writes the replayable artifact bundle of a failing case into `dir`
/// (created if needed): case.json, network.txt / traffic.txt /
/// scenario.json replayable by the existing CLIs, and repro.txt listing
/// `failures` and the replay command.  A non-empty `flight_dump` (the
/// reference run's last-N trace records, CaseReport::flight_dump) is
/// additionally written as flight.jsonl.  Throws std::runtime_error on
/// I/O failure.
void dump_case_artifacts(const std::string& dir, const CaseSpec& spec,
                         const std::vector<std::string>& failures,
                         const std::string& flight_dump = {});

}  // namespace altroute::check
