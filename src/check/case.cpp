#include "check/case.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "control/dar.hpp"
#include "core/controlled_policy.hpp"
#include "core/protection.hpp"
#include "loss/policies.hpp"
#include "netgraph/io.hpp"
#include "routing/route_table.hpp"
#include "scenario/json.hpp"
#include "scenario/parse.hpp"
#include "sim/rng.hpp"

namespace altroute::check {

namespace {

[[noreturn]] void reject(const std::string& why) {
  throw std::invalid_argument("CaseSpec: " + why);
}

std::string format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return std::string(buf);
}

/// True when the unordered pair {a, b} is facility `f`.
bool facility_matches(const FacilitySpec& f, int a, int b) {
  return (f.a == a && f.b == b) || (f.a == b && f.b == a);
}

bool event_names_facility(const scenario::ScenarioEvent& e) {
  switch (e.kind) {
    case scenario::EventKind::kLinkFail:
    case scenario::EventKind::kLinkRepair:
    case scenario::EventKind::kCapacitySet:
    case scenario::EventKind::kCapacityScale:
      return true;
    case scenario::EventKind::kTrafficScale:
    case scenario::EventKind::kResolveProtection:
      return false;
  }
  return false;
}

}  // namespace

std::string_view policy_choice_name(PolicyChoice choice) {
  switch (choice) {
    case PolicyChoice::kSinglePath: return "single-path";
    case PolicyChoice::kUncontrolled: return "uncontrolled-alt";
    case PolicyChoice::kControlled: return "controlled-alt";
    case PolicyChoice::kDar: return "dar";
  }
  return "controlled-alt";
}

void CaseSpec::validate() const {
  if (nodes < 2) reject("needs at least 2 nodes, has " + std::to_string(nodes));
  if (facilities.empty()) reject("needs at least one facility");
  for (std::size_t i = 0; i < facilities.size(); ++i) {
    const FacilitySpec& f = facilities[i];
    if (f.a < 0 || f.a >= nodes || f.b < 0 || f.b >= nodes) {
      reject("facility " + std::to_string(i) + " endpoint outside [0, " +
             std::to_string(nodes) + ")");
    }
    if (f.a == f.b) reject("facility " + std::to_string(i) + " is a self-loop");
    if (f.capacity < 1) reject("facility " + std::to_string(i) + " has capacity < 1");
    for (std::size_t j = 0; j < i; ++j) {
      if (facility_matches(facilities[j], f.a, f.b)) {
        reject("facilities " + std::to_string(j) + " and " + std::to_string(i) +
               " connect the same node pair");
      }
    }
  }
  if (demands.size() != static_cast<std::size_t>(nodes) * static_cast<std::size_t>(nodes)) {
    reject("demand matrix has " + std::to_string(demands.size()) + " entries, needs " +
           std::to_string(nodes) + "x" + std::to_string(nodes));
  }
  for (int i = 0; i < nodes; ++i) {
    for (int j = 0; j < nodes; ++j) {
      const double d = demands[static_cast<std::size_t>(i) * nodes + j];
      if (!(d >= 0.0) || !std::isfinite(d)) {
        reject("demand (" + std::to_string(i) + ", " + std::to_string(j) +
               ") is negative or non-finite");
      }
      if (i == j && d != 0.0) reject("demand diagonal must be zero");
    }
  }
  if (!(horizon > 0.0) || !std::isfinite(horizon)) reject("horizon must be positive");
  if (!(warmup >= 0.0) || warmup >= horizon) reject("warmup must lie in [0, horizon)");
  if (time_bins < 0) reject("time_bins must be >= 0");
  if (max_alt_hops < 1) reject("max_alt_hops must be >= 1");
  if (resume_at >= 0.0 && resume_at > horizon) reject("resume_at must be <= horizon");
  for (std::size_t i = 0; i < events.size(); ++i) {
    const scenario::ScenarioEvent& e = events[i];
    if (!event_names_facility(e)) continue;
    const bool known = std::any_of(facilities.begin(), facilities.end(), [&](const auto& f) {
      return facility_matches(f, e.node_a, e.node_b);
    });
    if (!known) {
      reject("event " + std::to_string(i) + " names facility (" + std::to_string(e.node_a) +
             ", " + std::to_string(e.node_b) + ") which does not exist");
    }
  }
  if (control_epoch < 0.0 || !std::isfinite(control_epoch)) {
    reject("control_epoch must be >= 0 and finite");
  }
  if (control_estimator != 0 && control_estimator != 1) {
    reject("control_estimator must be 0 (mle) or 1 (ewma)");
  }
  if (control_on()) control_config().validate();
  if (dar_trunk < 0) reject("dar_trunk must be >= 0");
  scenario().validate();
}

control::ControlConfig CaseSpec::control_config() const {
  control::ControlConfig c;
  c.epoch = control_epoch;
  c.estimator = control_estimator == 1 ? control::EstimatorKind::kEwma
                                       : control::EstimatorKind::kWindowedMle;
  c.window = control_window;
  c.weight = control_weight;
  c.deadband = control_deadband;
  c.max_step = control_max_step;
  return c;
}

net::Graph CaseSpec::graph() const {
  net::Graph g(nodes);
  for (const FacilitySpec& f : facilities) {
    g.add_duplex(net::NodeId(f.a), net::NodeId(f.b), f.capacity);
  }
  return g;
}

net::TrafficMatrix CaseSpec::traffic() const {
  net::TrafficMatrix t(nodes);
  for (int i = 0; i < nodes; ++i) {
    for (int j = 0; j < nodes; ++j) {
      const double d = demands[static_cast<std::size_t>(i) * nodes + j];
      if (i != j && d > 0.0) t.set(net::NodeId(i), net::NodeId(j), d);
    }
  }
  return t;
}

scenario::Scenario CaseSpec::scenario() const {
  scenario::Scenario s;
  s.name = "case-" + std::to_string(seed);
  s.events = events;
  return s;
}

sim::CallTrace CaseSpec::trace() const {
  return scenario::make_scenario_trace(traffic(), scenario(), horizon, trace_seed);
}

std::unique_ptr<loss::RoutingPolicy> CaseSpec::make_policy() const {
  switch (policy) {
    case PolicyChoice::kSinglePath: return std::make_unique<loss::SinglePathPolicy>();
    case PolicyChoice::kUncontrolled:
      return std::make_unique<loss::UncontrolledAlternatePolicy>();
    case PolicyChoice::kControlled:
      return std::make_unique<core::ControlledAlternatePolicy>();
    case PolicyChoice::kDar: {
      control::DarConfig dc;
      dc.trunk = dar_trunk;
      return std::make_unique<control::DarPolicy>(nodes, policy_seed, dc);
    }
  }
  return std::make_unique<core::ControlledAlternatePolicy>();
}

std::vector<int> CaseSpec::reservations() const {
  if (!protect) return {};
  const net::Graph g = graph();
  const routing::RouteTable routes = routing::build_min_hop_routes(g, max_alt_hops);
  return core::protection_levels(g, routes, traffic(), max_alt_hops);
}

CaseSpec generate_case(std::uint64_t case_seed) {
  sim::Rng rng(case_seed, 0xCA5E);
  CaseSpec spec;
  spec.seed = case_seed;
  spec.nodes = 2 + static_cast<int>(rng.below(7));  // 2..8

  // Ring 0-1-...-(n-1)-0 guarantees a connected (indeed 2-connected) mesh
  // with alternates around every facility; chords thicken it.
  const int n = spec.nodes;
  if (n == 2) {
    spec.facilities.push_back({0, 1, 0});
  } else {
    for (int i = 0; i + 1 < n; ++i) spec.facilities.push_back({i, i + 1, 0});
    spec.facilities.push_back({0, n - 1, 0});
  }
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      const bool ring = std::any_of(spec.facilities.begin(), spec.facilities.end(),
                                    [&](const auto& f) { return facility_matches(f, a, b); });
      if (!ring && rng.uniform01() < 0.35) spec.facilities.push_back({a, b, 0});
    }
  }
  double capacity_sum = 0.0;
  for (FacilitySpec& f : spec.facilities) {
    f.capacity = 2 + static_cast<int>(rng.below(14));  // 2..15
    capacity_sum += f.capacity;
  }
  const double mean_capacity = capacity_sum / static_cast<double>(spec.facilities.size());

  // Per-pair loads comparable to the mean facility capacity: many pairs
  // share links, so this reliably produces blocking AND alternate overflow
  // without starving the clean-admission path.
  spec.demands.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j || rng.uniform01() >= 0.75) continue;
      spec.demands[static_cast<std::size_t>(i) * n + j] =
          (0.2 + 0.8 * rng.uniform01()) * mean_capacity;
    }
  }

  spec.horizon = 20.0 + 20.0 * rng.uniform01();
  spec.warmup = rng.uniform01() < 0.6 ? 0.0 : 5.0 * rng.uniform01();
  spec.time_bins = rng.uniform01() < 0.5 ? 0 : 4 + static_cast<int>(rng.below(5));
  spec.max_alt_hops = 2 + static_cast<int>(rng.below(3));  // 2..4
  const std::uint64_t policy_pick = rng.below(4);
  spec.policy = policy_pick == 0   ? PolicyChoice::kSinglePath
                : policy_pick == 1 ? PolicyChoice::kUncontrolled
                                   : PolicyChoice::kControlled;
  spec.protect = rng.uniform01() < 0.7;
  spec.auto_resolve = rng.uniform01() < 0.3;
  spec.trace_seed = rng();
  spec.policy_seed = rng();
  spec.resume_at = rng.uniform01() * spec.horizon;

  const int event_count = static_cast<int>(rng.below(7));  // 0..6
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(event_count));
  for (int e = 0; e < event_count; ++e) times.push_back(rng.uniform01() * spec.horizon);
  std::sort(times.begin(), times.end());
  for (const double t : times) {
    const std::size_t f = rng.below(spec.facilities.size());
    const int a = spec.facilities[f].a;
    const int b = spec.facilities[f].b;
    switch (rng.below(6)) {
      case 0: spec.events.push_back(scenario::ScenarioEvent::link_fail(t, a, b)); break;
      case 1: spec.events.push_back(scenario::ScenarioEvent::link_repair(t, a, b)); break;
      case 2:
        spec.events.push_back(scenario::ScenarioEvent::capacity_set(
            t, a, b, 1 + static_cast<int>(rng.below(20))));
        break;
      case 3:
        spec.events.push_back(
            scenario::ScenarioEvent::capacity_scale(t, a, b, 0.3 + 2.2 * rng.uniform01()));
        break;
      case 4:
        spec.events.push_back(
            scenario::ScenarioEvent::traffic_scale(t, 0.25 + 1.75 * rng.uniform01()));
        break;
      default: spec.events.push_back(scenario::ScenarioEvent::resolve_protection(t)); break;
    }
  }

  // Adaptive-control and DAR knobs, drawn AFTER the event loop: every
  // pre-control corpus seed reproduces its exact historical spec prefix,
  // and the new draws only extend the stream.
  if (rng.uniform01() < 0.35) {
    spec.control_epoch = 2.0 + rng.uniform01() * (spec.horizon / 2.0 - 2.0);
    spec.control_estimator = rng.uniform01() < 0.5 ? 0 : 1;
    spec.control_window = 1.0 + 4.0 * rng.uniform01();
    spec.control_weight = 0.1 + 0.8 * rng.uniform01();
    spec.control_deadband = rng.uniform01() < 0.5 ? 0.0 : 0.3 * rng.uniform01();
    spec.control_max_step = static_cast<int>(rng.below(4));  // 0..3
  }
  if (rng.uniform01() < 0.2) {
    spec.policy = PolicyChoice::kDar;
    spec.dar_trunk = static_cast<int>(rng.below(4));  // 0..3 (0 = plain sticky)
  }
  return spec;
}

// --- JSON --------------------------------------------------------------------

namespace {

std::uint64_t u64_from_string(const std::string& text, const char* what) {
  if (text.empty() || text.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument("case json: field '" + std::string(what) +
                                "' must be a decimal uint64 string, got '" + text + "'");
  }
  try {
    return std::stoull(text);
  } catch (const std::out_of_range&) {
    throw std::invalid_argument("case json: field '" + std::string(what) +
                                "' does not fit in 64 bits: '" + text + "'");
  }
}

const scenario::JsonValue& require(const scenario::JsonValue& root, const char* key) {
  const scenario::JsonValue* v = root.find(key);
  if (v == nullptr) {
    throw std::invalid_argument("case json: missing required field '" + std::string(key) + "'");
  }
  return *v;
}

double require_number(const scenario::JsonValue& root, const char* key) {
  const scenario::JsonValue& v = require(root, key);
  if (!v.is_number()) {
    throw std::invalid_argument("case json: field '" + std::string(key) + "' must be a number");
  }
  return v.number;
}

int require_int(const scenario::JsonValue& root, const char* key) {
  const double d = require_number(root, key);
  const int i = static_cast<int>(d);
  if (static_cast<double>(i) != d) {
    throw std::invalid_argument("case json: field '" + std::string(key) +
                                "' must be an integer");
  }
  return i;
}

bool require_bool(const scenario::JsonValue& root, const char* key) {
  const scenario::JsonValue& v = require(root, key);
  if (v.kind != scenario::JsonValue::Kind::kBool) {
    throw std::invalid_argument("case json: field '" + std::string(key) + "' must be a bool");
  }
  return v.boolean;
}

/// Optional-with-default number: case.json files written before the
/// control plane existed simply omit the control fields.
double optional_number(const scenario::JsonValue& root, const char* key, double fallback) {
  const scenario::JsonValue* v = root.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) {
    throw std::invalid_argument("case json: field '" + std::string(key) + "' must be a number");
  }
  return v->number;
}

int optional_int(const scenario::JsonValue& root, const char* key, int fallback) {
  const scenario::JsonValue* v = root.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number() || static_cast<double>(static_cast<int>(v->number)) != v->number) {
    throw std::invalid_argument("case json: field '" + std::string(key) +
                                "' must be an integer");
  }
  return static_cast<int>(v->number);
}

std::uint64_t require_seed(const scenario::JsonValue& root, const char* key) {
  const scenario::JsonValue& v = require(root, key);
  if (!v.is_string()) {
    throw std::invalid_argument("case json: field '" + std::string(key) +
                                "' must be a decimal string (u64 seeds do not survive JSON "
                                "numbers)");
  }
  return u64_from_string(v.string, key);
}

}  // namespace

std::string case_to_json(const CaseSpec& spec) {
  std::string out = "{\n";
  out += "  \"format\": 1,\n";
  out += "  \"seed\": \"" + std::to_string(spec.seed) + "\",\n";
  out += "  \"nodes\": " + std::to_string(spec.nodes) + ",\n";
  out += "  \"horizon\": " + format_double(spec.horizon) + ",\n";
  out += "  \"warmup\": " + format_double(spec.warmup) + ",\n";
  out += "  \"time_bins\": " + std::to_string(spec.time_bins) + ",\n";
  out += "  \"max_alt_hops\": " + std::to_string(spec.max_alt_hops) + ",\n";
  out += "  \"policy\": \"" + std::string(policy_choice_name(spec.policy)) + "\",\n";
  out += std::string("  \"protect\": ") + (spec.protect ? "true" : "false") + ",\n";
  out += std::string("  \"auto_resolve\": ") + (spec.auto_resolve ? "true" : "false") + ",\n";
  out += "  \"trace_seed\": \"" + std::to_string(spec.trace_seed) + "\",\n";
  out += "  \"policy_seed\": \"" + std::to_string(spec.policy_seed) + "\",\n";
  out += "  \"resume_at\": " + format_double(spec.resume_at) + ",\n";
  out += "  \"control_epoch\": " + format_double(spec.control_epoch) + ",\n";
  out += "  \"control_estimator\": \"" +
         std::string(control::estimator_kind_name(
             spec.control_estimator == 1 ? control::EstimatorKind::kEwma
                                         : control::EstimatorKind::kWindowedMle)) +
         "\",\n";
  out += "  \"control_window\": " + format_double(spec.control_window) + ",\n";
  out += "  \"control_weight\": " + format_double(spec.control_weight) + ",\n";
  out += "  \"control_deadband\": " + format_double(spec.control_deadband) + ",\n";
  out += "  \"control_max_step\": " + std::to_string(spec.control_max_step) + ",\n";
  out += "  \"dar_trunk\": " + std::to_string(spec.dar_trunk) + ",\n";
  out += "  \"facilities\": [";
  for (std::size_t i = 0; i < spec.facilities.size(); ++i) {
    const FacilitySpec& f = spec.facilities[i];
    out += (i > 0 ? ", [" : "[") + std::to_string(f.a) + ", " + std::to_string(f.b) + ", " +
           std::to_string(f.capacity) + "]";
  }
  out += "],\n";
  out += "  \"demands\": [";
  bool first = true;
  for (int i = 0; i < spec.nodes; ++i) {
    for (int j = 0; j < spec.nodes; ++j) {
      const double d = spec.demands[static_cast<std::size_t>(i) * spec.nodes + j];
      if (d == 0.0) continue;
      out += (first ? "[" : ", [") + std::to_string(i) + ", " + std::to_string(j) + ", " +
             format_double(d) + "]";
      first = false;
    }
  }
  out += "],\n";
  out += "  \"scenario\": " + scenario::scenario_to_json(spec.scenario()) + "\n";
  out += "}\n";
  return out;
}

CaseSpec case_from_json(std::string_view json_text) {
  const scenario::JsonValue root = scenario::parse_json(json_text);
  if (!root.is_object()) {
    throw std::invalid_argument("case json: top-level value must be an object");
  }
  if (require_int(root, "format") != 1) {
    throw std::invalid_argument("case json: unsupported format version");
  }
  CaseSpec spec;
  spec.seed = require_seed(root, "seed");
  spec.nodes = require_int(root, "nodes");
  if (spec.nodes < 2) throw std::invalid_argument("case json: nodes must be >= 2");
  spec.horizon = require_number(root, "horizon");
  spec.warmup = require_number(root, "warmup");
  spec.time_bins = require_int(root, "time_bins");
  spec.max_alt_hops = require_int(root, "max_alt_hops");
  const scenario::JsonValue& policy = require(root, "policy");
  if (!policy.is_string()) throw std::invalid_argument("case json: 'policy' must be a string");
  if (policy.string == "single-path") {
    spec.policy = PolicyChoice::kSinglePath;
  } else if (policy.string == "uncontrolled-alt") {
    spec.policy = PolicyChoice::kUncontrolled;
  } else if (policy.string == "controlled-alt") {
    spec.policy = PolicyChoice::kControlled;
  } else if (policy.string == "dar") {
    spec.policy = PolicyChoice::kDar;
  } else {
    throw std::invalid_argument("case json: unknown policy '" + policy.string + "'");
  }
  spec.protect = require_bool(root, "protect");
  spec.auto_resolve = require_bool(root, "auto_resolve");
  spec.trace_seed = require_seed(root, "trace_seed");
  spec.policy_seed = require_seed(root, "policy_seed");
  spec.resume_at = require_number(root, "resume_at");
  // Control/DAR fields are optional: pre-control case.json files omit them.
  spec.control_epoch = optional_number(root, "control_epoch", 0.0);
  if (const scenario::JsonValue* est = root.find("control_estimator"); est != nullptr) {
    if (!est->is_string() || (est->string != "mle" && est->string != "ewma")) {
      throw std::invalid_argument(
          "case json: 'control_estimator' must be \"mle\" or \"ewma\"");
    }
    spec.control_estimator = est->string == "ewma" ? 1 : 0;
  }
  spec.control_window = optional_number(root, "control_window", spec.control_window);
  spec.control_weight = optional_number(root, "control_weight", spec.control_weight);
  spec.control_deadband = optional_number(root, "control_deadband", spec.control_deadband);
  spec.control_max_step = optional_int(root, "control_max_step", spec.control_max_step);
  spec.dar_trunk = optional_int(root, "dar_trunk", spec.dar_trunk);

  const scenario::JsonValue& facilities = require(root, "facilities");
  if (!facilities.is_array()) {
    throw std::invalid_argument("case json: 'facilities' must be an array");
  }
  for (const scenario::JsonValue& row : facilities.array) {
    if (!row.is_array() || row.array.size() != 3 || !row.array[0].is_number() ||
        !row.array[1].is_number() || !row.array[2].is_number()) {
      throw std::invalid_argument("case json: each facility must be [a, b, capacity]");
    }
    spec.facilities.push_back({static_cast<int>(row.array[0].number),
                               static_cast<int>(row.array[1].number),
                               static_cast<int>(row.array[2].number)});
  }
  spec.demands.assign(
      static_cast<std::size_t>(spec.nodes) * static_cast<std::size_t>(spec.nodes), 0.0);
  const scenario::JsonValue& demands = require(root, "demands");
  if (!demands.is_array()) throw std::invalid_argument("case json: 'demands' must be an array");
  for (const scenario::JsonValue& row : demands.array) {
    if (!row.is_array() || row.array.size() != 3 || !row.array[0].is_number() ||
        !row.array[1].is_number() || !row.array[2].is_number()) {
      throw std::invalid_argument("case json: each demand must be [src, dst, erlangs]");
    }
    const int i = static_cast<int>(row.array[0].number);
    const int j = static_cast<int>(row.array[1].number);
    if (i < 0 || i >= spec.nodes || j < 0 || j >= spec.nodes) {
      throw std::invalid_argument("case json: demand endpoint outside the node range");
    }
    spec.demands[static_cast<std::size_t>(i) * spec.nodes + j] = row.array[2].number;
  }
  spec.events = scenario::scenario_from_value(require(root, "scenario")).events;
  spec.validate();
  return spec;
}

CaseSpec load_case(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_case: cannot open '" + path + "'");
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (in.bad()) throw std::runtime_error("load_case: error reading '" + path + "'");
  return case_from_json(text);
}

void dump_case_artifacts(const std::string& dir, const CaseSpec& spec,
                         const std::vector<std::string>& failures,
                         const std::string& flight_dump) {
  std::filesystem::create_directories(dir);
  const auto write_file = [&](const char* name, const std::string& body) {
    const std::string path = dir + "/" + name;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << body;
    if (!out) throw std::runtime_error("dump_case_artifacts: cannot write '" + path + "'");
  };
  write_file("case.json", case_to_json(spec));
  write_file("scenario.json", scenario::scenario_to_json(spec.scenario()));
  net::save_network(dir + "/network.txt", spec.graph());
  net::save_traffic(dir + "/traffic.txt", spec.traffic());
  if (!flight_dump.empty()) write_file("flight.jsonl", flight_dump);
  std::string repro = "failing case seed " + std::to_string(spec.seed) + "\n\n";
  for (const std::string& f : failures) repro += "  - " + f + "\n";
  repro += "\nreplay with:\n  altroute_check --replay " + dir + "/case.json\n";
  if (!flight_dump.empty()) {
    repro += "flight.jsonl holds the reference run's last trace records\n";
  }
  write_file("repro.txt", repro);
}

}  // namespace altroute::check
