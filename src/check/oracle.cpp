#include "check/oracle.hpp"

#include <exception>
#include <optional>
#include <sstream>
#include <utility>

#include "loss/engine.hpp"
#include "obs/prof/flight_recorder.hpp"
#include "routing/route_table.hpp"
#include "scenario/runner.hpp"
#include "sim/parallel_for.hpp"
#include "sim/rng.hpp"
#include "sim/thread_pool.hpp"
#include "snapshot/checkpoint.hpp"

namespace altroute::check {

namespace {

/// One cell of the engine-configuration matrix.
struct EngineConfig {
  const char* name;
  bool legacy_queue;
  bool memoize;
};

/// Index 0 is the reference model: binary heap + direct re-solves.
constexpr EngineConfig kConfigs[] = {
    {"heap+direct", true, false},
    {"heap+memo", true, true},
    {"calendar+direct", false, false},
    {"calendar+memo", false, true},
};
constexpr std::size_t kConfigCount = sizeof(kConfigs) / sizeof(kConfigs[0]);

/// Everything a CaseSpec materializes, built once and shared (const) by
/// every run of the matrix.
struct Materialized {
  net::Graph graph;
  net::TrafficMatrix traffic;
  scenario::Scenario scen;
  sim::CallTrace trace;
  std::vector<int> reservations;

  explicit Materialized(const CaseSpec& spec)
      : graph(spec.graph()),
        traffic(spec.traffic()),
        scen(spec.scenario()),
        trace(spec.trace()),
        reservations(spec.reservations()) {}
};

std::vector<std::string> render(const std::vector<obs::TraceRecord>& records) {
  std::vector<std::string> lines;
  lines.reserve(records.size());
  for (const obs::TraceRecord& r : records) lines.push_back(obs::JsonlTraceSink::format(r));
  return lines;
}

/// Buffers captured checkpoints together with the trace-record prefix at
/// each capture instant, so a resumed run's collector can be pre-seeded.
struct CapturingSink final : snapshot::CheckpointSink {
  obs::VectorTraceSink* collector{nullptr};
  std::vector<snapshot::ScenarioCheckpoint> captured;
  std::vector<std::vector<obs::TraceRecord>> prefixes;

  void on_checkpoint(const snapshot::ScenarioCheckpoint& ckpt) override {
    captured.push_back(ckpt);
    prefixes.push_back(collector != nullptr ? collector->records
                                            : std::vector<obs::TraceRecord>{});
  }
};

struct RunRequest {
  EngineConfig config;
  bool with_grid{true};
  double checkpoint_at{-1.0};
  CapturingSink* sink{nullptr};
  const snapshot::ScenarioCheckpoint* resume{nullptr};
  std::vector<obs::TraceRecord> prefix;
};

ObservedRun observe(const CaseSpec& spec, const Materialized& m, const CheckOptions& options,
                    RunRequest request) {
  ObservedRun out;
  obs::VectorTraceSink collector;
  collector.records = std::move(request.prefix);
  if (request.sink != nullptr) request.sink->collector = &collector;
  // Optional flight recorder, teed in FRONT of the collector: the compared
  // record stream is unchanged, but the last N records survive a crash
  // (dumped to stderr by the fatal-signal handler) and a failure (bundled
  // into the case artifacts via flight_dump).
  std::unique_ptr<obs::prof::FlightRecorder> recorder;
  std::unique_ptr<obs::prof::CrashDumpScope> crash_scope;
  obs::TraceSink* sink = &collector;
  std::string flight_label;
  if (options.flight_recorder > 0) {
    recorder = std::make_unique<obs::prof::FlightRecorder>(
        static_cast<std::size_t>(options.flight_recorder), obs::kAllTraceKinds, &collector);
    sink = recorder.get();
    flight_label = "case " + std::to_string(spec.seed) + "/" + request.config.name;
    crash_scope = std::make_unique<obs::prof::CrashDumpScope>(recorder.get(), flight_label);
  }
  obs::Probe probe(&out.metrics, sink);
  if (request.with_grid) probe.grid(0.0, spec.horizon / 16.0, 16);

  scenario::ScenarioEngineOptions engine;
  engine.warmup = spec.warmup;
  engine.policy_seed = spec.policy_seed;
  engine.time_bins = spec.time_bins;
  engine.max_alt_hops = spec.max_alt_hops;
  engine.reservations = m.reservations;
  engine.auto_resolve_protection = spec.auto_resolve;
  engine.legacy_event_queue = request.config.legacy_queue;
  engine.memoize_protection = request.config.memoize;
  engine.fault_leak_release = options.inject_release_leak;
  engine.probe = &probe;
  engine.checkpoint_at = request.checkpoint_at;
  engine.checkpoints = request.sink;
  engine.resume = request.resume;
  // The adaptive control plane runs in EVERY engine configuration when the
  // spec enables it: epochs are deterministic in (estimator state, routes),
  // so the differential oracle demands bit-identity across the matrix.
  const control::ControlConfig control = spec.control_config();
  if (spec.control_on()) engine.control = &control;

  const std::unique_ptr<loss::RoutingPolicy> policy = spec.make_policy();
  out.result = scenario::run_scenario(m.graph, m.traffic, *policy, m.trace, m.scen, engine);
  out.metrics_json = out.metrics.to_json();
  out.records = std::move(collector.records);
  out.trace_lines = render(out.records);
  if (recorder != nullptr) out.flight_dump = recorder->dump_string(flight_label);
  return out;
}

/// Collects "label: field got X, reference Y" style messages.
struct Diff {
  std::string label;
  std::vector<std::string>& out;

  template <class A, class B>
  void eq(const A& actual, const B& expected, const std::string& what) {
    if (actual == expected) return;
    std::ostringstream os;
    os << label << ": " << what << " is " << actual << ", reference has " << expected;
    out.push_back(os.str());
  }

  void lines(const std::vector<std::string>& actual, const std::vector<std::string>& expected,
             const std::string& what) {
    eq(actual.size(), expected.size(), what + " count");
    for (std::size_t i = 0; i < actual.size() && i < expected.size(); ++i) {
      if (actual[i] != expected[i]) {
        out.push_back(label + ": first divergent " + what + " at index " + std::to_string(i) +
                      ":\n    got " + actual[i] + "\n    ref " + expected[i]);
        return;
      }
    }
  }
};

/// Compares the RunResult fields both engines collect (the scenario runner
/// leaves primary_losses_at_link / mean_link_occupancy empty, so those are
/// compared only between scenario runs, where both sides agree on emptiness).
void diff_run_result(Diff& d, const loss::RunResult& a, const loss::RunResult& ref) {
  d.eq(a.offered, ref.offered, "offered");
  d.eq(a.blocked, ref.blocked, "blocked");
  d.eq(a.carried_primary, ref.carried_primary, "carried_primary");
  d.eq(a.carried_alternate, ref.carried_alternate, "carried_alternate");
  d.eq(a.node_count, ref.node_count, "node_count");
  d.eq(a.per_class.size(), ref.per_class.size(), "per_class size");
  for (std::size_t i = 0; i < a.per_class.size() && i < ref.per_class.size(); ++i) {
    const std::string tag = "per_class[" + std::to_string(i) + "]";
    d.eq(a.per_class[i].bandwidth, ref.per_class[i].bandwidth, tag + ".bandwidth");
    d.eq(a.per_class[i].offered, ref.per_class[i].offered, tag + ".offered");
    d.eq(a.per_class[i].blocked, ref.per_class[i].blocked, tag + ".blocked");
  }
  d.eq(a.per_pair.size(), ref.per_pair.size(), "per_pair size");
  for (std::size_t i = 0; i < a.per_pair.size() && i < ref.per_pair.size(); ++i) {
    if (a.per_pair[i].offered == ref.per_pair[i].offered &&
        a.per_pair[i].blocked == ref.per_pair[i].blocked &&
        a.per_pair[i].carried_primary == ref.per_pair[i].carried_primary &&
        a.per_pair[i].carried_alternate == ref.per_pair[i].carried_alternate) {
      continue;
    }
    d.out.push_back(d.label + ": per_pair[" + std::to_string(i) + "] diverges");
    break;
  }
  d.eq(a.bin_offered == ref.bin_offered, true, "bin_offered equality");
  d.eq(a.bin_blocked == ref.bin_blocked, true, "bin_blocked equality");
  d.eq(a.carried_by_hops == ref.carried_by_hops, true, "carried_by_hops equality");
}

void diff_observed(std::vector<std::string>& out, const std::string& label,
                   const ObservedRun& a, const ObservedRun& ref) {
  Diff d{label, out};
  diff_run_result(d, a.result.run, ref.result.run);
  d.eq(a.result.run.primary_losses_at_link == ref.result.run.primary_losses_at_link, true,
       "primary_losses_at_link equality");
  d.eq(a.result.run.mean_link_occupancy == ref.result.run.mean_link_occupancy, true,
       "mean_link_occupancy equality");
  d.eq(a.result.dropped, ref.result.dropped, "dropped");
  d.eq(a.result.applied.size(), ref.result.applied.size(), "applied log size");
  for (std::size_t i = 0; i < a.result.applied.size() && i < ref.result.applied.size(); ++i) {
    const auto& x = a.result.applied[i];
    const auto& y = ref.result.applied[i];
    if (x.time == y.time && x.kind == y.kind && x.links_changed == y.links_changed &&
        x.calls_killed == y.calls_killed) {
      continue;
    }
    d.out.push_back(label + ": applied[" + std::to_string(i) + "] diverges");
    break;
  }
  d.eq(a.result.final_links.size(), ref.result.final_links.size(), "final_links size");
  for (std::size_t i = 0; i < a.result.final_links.size() && i < ref.result.final_links.size();
       ++i) {
    const auto& x = a.result.final_links[i];
    const auto& y = ref.result.final_links[i];
    if (x.capacity == y.capacity && x.reservation == y.reservation &&
        x.occupancy == y.occupancy && x.enabled == y.enabled) {
      continue;
    }
    d.out.push_back(label + ": final_links[" + std::to_string(i) + "] diverges");
    break;
  }
  if (a.metrics_json != ref.metrics_json) {
    d.out.push_back(label + ": metrics JSON diverges from the reference rendering");
  }
  d.lines(a.trace_lines, ref.trace_lines, "trace line");
}

/// The static engine comparison: only the fields both engines produce.
void diff_static(std::vector<std::string>& out, const ObservedRun& stat,
                 const ObservedRun& scen) {
  Diff d{"static-vs-scenario", out};
  diff_run_result(d, stat.result.run, scen.result.run);
  if (stat.metrics_json != scen.metrics_json) {
    d.out.push_back(d.label + ": metrics JSON diverges");
  }
  d.lines(stat.trace_lines, scen.trace_lines, "trace line");
}

std::optional<ObservedRun> try_observe(const CaseSpec& spec, const Materialized& m,
                                       const CheckOptions& options, RunRequest request,
                                       const std::string& label,
                                       std::vector<std::string>& failures) {
  try {
    return observe(spec, m, options, std::move(request));
  } catch (const std::exception& e) {
    failures.push_back(label + ": threw: " + std::string(e.what()));
    return std::nullopt;
  }
}

void check_resume(const CaseSpec& spec, const Materialized& m, const CheckOptions& options,
                  const ObservedRun& reference, CaseReport& report) {
  // Capture under the NON-reference configuration, resume under the
  // reference one: the checkpoint must be engine-portable both ways.
  CapturingSink sink;
  RunRequest capture;
  capture.config = kConfigs[3];  // calendar+memo
  capture.checkpoint_at = spec.resume_at;
  capture.sink = &sink;
  const std::optional<ObservedRun> captured =
      try_observe(spec, m, options, std::move(capture), "capture@calendar+memo",
                  report.failures);
  if (!captured.has_value()) return;
  diff_observed(report.failures, "capture@calendar+memo", *captured, reference);
  if (sink.captured.size() != 1) {
    report.failures.push_back("capture@calendar+memo: expected exactly 1 checkpoint at t=" +
                              std::to_string(spec.resume_at) + ", captured " +
                              std::to_string(sink.captured.size()));
    return;
  }

  // Round-trip through the binary container codec before resuming, so the
  // serialized form (not just the in-memory struct) is what continues.
  snapshot::ScenarioCheckpoint restored;
  try {
    restored = snapshot::decode_checkpoint(snapshot::encode_checkpoint(sink.captured.front()),
                                           "case-" + std::to_string(spec.seed));
  } catch (const std::exception& e) {
    report.failures.push_back(std::string("checkpoint codec round-trip threw: ") + e.what());
    return;
  }

  RunRequest resume;
  resume.config = kConfigs[0];  // heap+direct
  resume.resume = &restored;
  resume.prefix = sink.prefixes.front();
  const std::optional<ObservedRun> resumed = try_observe(
      spec, m, options, std::move(resume), "resume@heap+direct", report.failures);
  if (!resumed.has_value()) return;
  diff_observed(report.failures, "resume@heap+direct", *resumed, reference);
}

void check_static(const CaseSpec& spec, const Materialized& m, const CheckOptions& options,
                  CaseReport& report) {
  // Without events the scenario runner must degenerate to the static
  // engine exactly (same trace, same RNG stream, same route table).  Grid
  // sampling differs between the engines, so both sides run grid-free.
  ObservedRun stat;
  try {
    obs::VectorTraceSink collector;
    obs::Probe probe(&stat.metrics, &collector);
    loss::EngineOptions engine;
    engine.warmup = spec.warmup;
    engine.policy_seed = spec.policy_seed;
    engine.link_stats = false;
    engine.reservations = m.reservations;
    engine.time_bins = spec.time_bins;
    engine.probe = &probe;
    const routing::RouteTable routes =
        routing::build_min_hop_routes(m.graph, spec.max_alt_hops);
    const std::unique_ptr<loss::RoutingPolicy> policy = spec.make_policy();
    stat.result.run = loss::run_trace(m.graph, routes, *policy, m.trace, engine);
    stat.metrics_json = stat.metrics.to_json();
    stat.records = std::move(collector.records);
    stat.trace_lines = render(stat.records);
  } catch (const std::exception& e) {
    report.failures.push_back(std::string("static loss::run_trace threw: ") + e.what());
    return;
  }
  RunRequest request;
  request.config = kConfigs[0];
  request.with_grid = false;
  const std::optional<ObservedRun> scen = try_observe(
      spec, m, options, std::move(request), "scenario@heap+direct(no-grid)", report.failures);
  if (!scen.has_value()) return;
  // Static runs never drop calls; the event-free scenario must agree.
  if (scen->result.dropped != 0) {
    report.failures.push_back("static-vs-scenario: event-free scenario dropped " +
                              std::to_string(scen->result.dropped) + " calls");
  }
  diff_static(report.failures, stat, *scen);
}

}  // namespace

std::uint64_t case_seed(std::uint64_t corpus_seed, std::uint64_t index) {
  return sim::Rng(corpus_seed, index)();
}

CaseReport check_case(const CaseSpec& spec, const CheckOptions& options) {
  CaseReport report;
  report.seed = spec.seed;
  try {
    spec.validate();
  } catch (const std::exception& e) {
    report.failures.push_back(std::string("spec rejected: ") + e.what());
    return report;
  }

  std::optional<Materialized> m;
  try {
    m.emplace(spec);
  } catch (const std::exception& e) {
    report.failures.push_back(std::string("materialization threw: ") + e.what());
    return report;
  }

  // Serial matrix.  Index 0 is the reference.
  std::vector<std::optional<ObservedRun>> serial(kConfigCount);
  for (std::size_t c = 0; c < kConfigCount; ++c) {
    RunRequest request;
    request.config = kConfigs[c];
    serial[c] = try_observe(spec, *m, options, std::move(request), kConfigs[c].name,
                            report.failures);
    if (c == 0 && !serial[0].has_value()) return report;  // no reference, nothing to compare
  }
  const ObservedRun& reference = *serial[0];
  report.offered = reference.result.run.offered;
  report.blocked = reference.result.run.blocked;
  report.carried_alternate = reference.result.run.carried_alternate;
  report.dropped = reference.result.dropped;

  if (options.differential) {
    for (std::size_t c = 1; c < kConfigCount; ++c) {
      if (serial[c].has_value()) {
        diff_observed(report.failures, kConfigs[c].name, *serial[c], reference);
      }
    }
  }

  if (options.invariants) {
    for (std::string& msg : check_invariants(spec, reference)) {
      report.failures.push_back(std::move(msg));
    }
  }

  if (options.threads && options.thread_count > 1) {
    std::vector<std::optional<ObservedRun>> parallel(kConfigCount);
    std::vector<std::string> thread_failures(kConfigCount);
    sim::ThreadPool pool(options.thread_count);
    sim::parallel_for(&pool, kConfigCount, [&](std::size_t c) {
      try {
        RunRequest request;
        request.config = kConfigs[c];
        parallel[c] = observe(spec, *m, options, std::move(request));
      } catch (const std::exception& e) {
        thread_failures[c] =
            std::string("threads/") + kConfigs[c].name + ": threw: " + e.what();
      }
    });
    for (std::size_t c = 0; c < kConfigCount; ++c) {
      if (!thread_failures[c].empty()) {
        report.failures.push_back(thread_failures[c]);
      } else if (parallel[c].has_value() && serial[c].has_value()) {
        diff_observed(report.failures, std::string("threads/") + kConfigs[c].name,
                      *parallel[c], *serial[c]);
      }
    }
  }

  if (options.resume && spec.resume_at >= 0.0) {
    check_resume(spec, *m, options, reference, report);
  }

  // The static engine has no control plane, so the degenerate-equivalence
  // oracle only applies to control-off cases.
  if (options.static_reference && spec.events.empty() && !spec.control_on()) {
    check_static(spec, *m, options, report);
  }

  // A failing case carries the reference run's last-N records out to the
  // artifact bundle (flight.jsonl); passing cases stay lean.
  if (!report.failures.empty()) report.flight_dump = reference.flight_dump;

  return report;
}

}  // namespace altroute::check
