// Greedy structural shrinker for failing CaseSpecs.
//
// Given a case that fails some predicate (usually "check_case reports
// failures"), shrink_case repeatedly tries structurally smaller candidates
// and keeps any candidate that still validates AND still fails, until a
// full round of every pass accepts nothing -- a local minimum.  Passes, in
// order, per round:
//
//   1. drop scenario events, last first;
//   2. drop nodes, highest index first (incident facilities, demands, and
//      facility events go with the node; surviving indices are remapped);
//   3. drop facilities, last first (plus the events naming them);
//   4. zero individual demand entries;
//   5. simplify knobs: warmup -> 0, time_bins -> 0, auto_resolve -> off,
//      resume_at -> disabled, protect -> off;
//   6. move every event to t = 0;
//   7. halve the horizon (floor 1.0; events past the new horizon dropped,
//      warmup/resume_at clamped).
//
// The shrinker is deterministic: same input spec + same deterministic
// predicate -> same minimal spec, which is what makes shrunk artifacts
// reproducible and the shrink-determinism ctest possible.  A candidate
// whose predicate THROWS counts as not-failing (never accepted), so a
// flaky predicate cannot smuggle in an invalid "minimum".
#pragma once

#include <functional>

#include "check/case.hpp"

namespace altroute::check {

/// Returns true when the candidate still exhibits the failure being
/// minimized.  Must be deterministic for reproducible minima.
using FailurePredicate = std::function<bool(const CaseSpec&)>;

struct ShrinkStats {
  int rounds{0};     ///< full passes over all shrinking strategies
  int attempted{0};  ///< candidates generated
  int accepted{0};   ///< candidates that still failed and were kept
};

/// Shrinks `start` (which must fail `still_fails`) to a local minimum.
/// Returns `start` unchanged if it does not fail the predicate.
[[nodiscard]] CaseSpec shrink_case(const CaseSpec& start, const FailurePredicate& still_fails,
                                   ShrinkStats* stats = nullptr);

}  // namespace altroute::check
