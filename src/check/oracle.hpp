// Cross-engine differential oracle: one CaseSpec, every engine
// configuration, bit-identical or bust.
//
// The reference model is the legacy binary-heap engine with direct
// (memo-free) protection re-solves, run single-threaded.  check_case runs
// the same case through the full configuration matrix --
//
//   {heap, calendar} x {memo, direct}            serial differential
//   the whole matrix again on a thread pool      thread-count identity
//   capture at resume_at, then resume            checkpoint equivalence
//   loss::run_trace on the same trace            static cross-check
//                                                (event-free, control-off
//                                                cases only)
//
// -- and demands that every run agree with the reference on EVERY
// observable: the RunResult counters down to the per-pair/per-bin/hop
// breakdowns, the applied-event log, the final per-link states, the
// rendered metrics JSON, and the byte-rendered trace stream.  The
// reference run additionally passes through the stateful invariant oracle
// (check/invariants.hpp).  Any disagreement becomes one human-readable
// failure string; a CaseReport with failures is what the harness shrinks
// and dumps as a replayable artifact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/case.hpp"
#include "check/invariants.hpp"

namespace altroute::check {

/// Which oracles to run.  Everything defaults on; the flags exist for the
/// CLI's --no-* switches and for focused tests.
struct CheckOptions {
  /// Compare every engine configuration against the reference.
  bool differential{true};
  /// Re-run the whole matrix on a thread pool and compare to the serial
  /// runs (the determinism-under-concurrency oracle).
  bool threads{true};
  int thread_count{4};
  /// Capture a checkpoint at spec.resume_at (when >= 0), round-trip it
  /// through the binary container codec, resume under the OTHER engine,
  /// and compare to the straight reference run.
  bool resume{true};
  /// For event-free cases: compare the scenario runner against the static
  /// loss::run_trace engine on the identical trace.
  bool static_reference{true};
  /// Run the stateful invariant oracle on the reference run.
  bool invariants{true};
  /// MUTATION TEST HOOK: inject the runner's release-leak fault into every
  /// scenario run.  A correct checker must then FAIL the case; see
  /// tests/test_check_mutation.cpp.
  bool inject_release_leak{false};
  /// When > 0, tee a flight recorder of this capacity (obs/prof) in front
  /// of every run's trace collector: the last-N records survive into
  /// ObservedRun::flight_dump / CaseReport::flight_dump, a fatal signal
  /// during any run dumps them to stderr, and failing-case artifact
  /// bundles include them as flight.jsonl.  The compared trace streams are
  /// unchanged (the recorder forwards every record to the collector).
  int flight_recorder{0};
};

/// Outcome of checking one case.
struct CaseReport {
  std::uint64_t seed{0};
  /// One pointed message per violated oracle; empty = case passed.
  std::vector<std::string> failures;
  /// Reference run's flight-recorder dump (JSONL), filled only when the
  /// case FAILED and CheckOptions::flight_recorder was > 0 -- the last-N
  /// trace records leading into the failure, for the artifact bundle.
  std::string flight_dump;
  // Reference-run statistics, for corpus-level non-vacuity checks (a
  // checker whose cases never block or never overflow onto alternates is
  // not testing the interesting paths).
  long long offered{0};
  long long blocked{0};
  long long carried_alternate{0};
  long long dropped{0};

  [[nodiscard]] bool passed() const { return failures.empty(); }
};

/// Case seed of corpus entry `index` under master seed `corpus_seed`
/// (independent per-case streams; stable across corpus sizes).
[[nodiscard]] std::uint64_t case_seed(std::uint64_t corpus_seed, std::uint64_t index);

/// Runs every enabled oracle against `spec`.  Engine exceptions are
/// reported as failures (with the configuration name), never propagated.
[[nodiscard]] CaseReport check_case(const CaseSpec& spec, const CheckOptions& options = {});

}  // namespace altroute::check
