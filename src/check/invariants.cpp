#include "check/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "erlang/memo.hpp"

namespace altroute::check {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

struct Failures {
  std::vector<std::string> list;

  void add(std::string msg) { list.push_back(std::move(msg)); }

  template <class A, class B>
  void expect_eq(const A& actual, const B& expected, const std::string& what) {
    if (!(actual == expected)) {
      std::ostringstream os;
      os << what << ": got " << actual << ", expected " << expected;
      list.push_back(os.str());
    }
  }
};

/// One admitted call the model is still holding circuits for.
struct ModelCall {
  std::size_t order{0};  ///< admission order (preemption picks the newest)
  double dep{0.0};
  int units{1};
  std::vector<int> links;
};

int facility_of(const CaseSpec& spec, int a, int b) {
  for (std::size_t f = 0; f < spec.facilities.size(); ++f) {
    const FacilitySpec& fac = spec.facilities[f];
    if ((fac.a == a && fac.b == b) || (fac.a == b && fac.b == a)) return static_cast<int>(f);
  }
  return -1;
}

bool is_link_event(scenario::EventKind kind) {
  switch (kind) {
    case scenario::EventKind::kLinkFail:
    case scenario::EventKind::kLinkRepair:
    case scenario::EventKind::kCapacitySet:
    case scenario::EventKind::kCapacityScale:
      return true;
    case scenario::EventKind::kTrafficScale:
    case scenario::EventKind::kResolveProtection:
      return false;
  }
  return false;
}

/// Replays the admitted-call records against an independent per-link
/// state model and cross-checks every event's effect.  `track_occupancy`
/// requires the full call stream (warmup == 0).
class StateModel {
 public:
  StateModel(const CaseSpec& spec, bool track_occupancy, Failures& out)
      : spec_(spec), track_(track_occupancy), out_(out) {
    const std::size_t n = spec.facilities.size() * 2;
    cap_.resize(n);
    max_cap_.resize(n);
    enabled_.assign(n, 1);
    occ_.assign(n, 0);
    for (std::size_t f = 0; f < spec.facilities.size(); ++f) {
      cap_[2 * f] = cap_[2 * f + 1] = spec.facilities[f].capacity;
      max_cap_[2 * f] = max_cap_[2 * f + 1] = spec.facilities[f].capacity;
    }
    for (const scenario::ScenarioEvent& e : spec.events) {
      if (e.time <= spec.horizon) events_.push_back(&e);
    }
  }

  void run(const ObservedRun& run) {
    if (track_) {
      for (const obs::TraceRecord& r : run.records) {
        if (desynced_) break;
        if (r.kind != obs::TraceKind::kCallAdmitted) continue;
        advance(r.time);
        book(r);
      }
    }
    if (!desynced_) advance(spec_.horizon);
    compare(run);
  }

 private:
  void release(std::size_t idx) {
    for (const int l : live_[idx].links) occ_[static_cast<std::size_t>(l)] -= live_[idx].units;
    live_.erase(live_.begin() + static_cast<std::ptrdiff_t>(idx));
  }

  /// Processes every departure and scenario event with time <= t, in the
  /// runner's documented order: earliest first, departures before events
  /// on ties.
  void advance(double t) {
    for (;;) {
      std::size_t best = kNone;
      for (std::size_t i = 0; i < live_.size(); ++i) {
        if (live_[i].dep > t) continue;
        if (best == kNone || live_[i].dep < live_[best].dep ||
            (live_[i].dep == live_[best].dep && live_[i].order < live_[best].order)) {
          best = i;
        }
      }
      const double dep =
          best == kNone ? std::numeric_limits<double>::infinity() : live_[best].dep;
      const double ev = next_event_ < events_.size() ? events_[next_event_]->time
                                                     : std::numeric_limits<double>::infinity();
      if (best != kNone && dep <= ev) {
        release(best);
      } else if (next_event_ < events_.size() && ev <= t) {
        apply_event(*events_[next_event_]);
        ++next_event_;
      } else {
        break;
      }
    }
  }

  void book(const obs::TraceRecord& r) {
    ModelCall call{next_order_++, r.time + r.hold, r.units, {}};
    for (std::size_t i = 0; i < r.links.size(); ++i) {
      const int l = r.links[i];
      if (l < 0 || static_cast<std::size_t>(l) >= cap_.size()) {
        out_.add("model: admitted record at t=" + std::to_string(r.time) +
                 " books unknown link " + std::to_string(l));
        desynced_ = true;
        return;
      }
      const auto li = static_cast<std::size_t>(l);
      if (!enabled_[li]) {
        out_.add("model: admission at t=" + std::to_string(r.time) + " uses DISABLED link " +
                 std::to_string(l));
        desynced_ = true;
        return;
      }
      occ_[li] += r.units;
      if (occ_[li] > cap_[li]) {
        out_.add("model: occupancy " + std::to_string(occ_[li]) + " exceeds capacity " +
                 std::to_string(cap_[li]) + " on link " + std::to_string(l) + " at t=" +
                 std::to_string(r.time));
        desynced_ = true;
        return;
      }
      if (i < r.occ.size() && r.occ[i] != occ_[li]) {
        out_.add("model: post-booking occupancy of link " + std::to_string(l) + " at t=" +
                 std::to_string(r.time) + " is " + std::to_string(r.occ[i]) +
                 " in the trace but " + std::to_string(occ_[li]) + " in the model" +
                 " (circuit leak or double booking)");
        desynced_ = true;
        return;
      }
      call.links.push_back(l);
    }
    live_.push_back(std::move(call));
  }

  void apply_event(const scenario::ScenarioEvent& e) {
    int changed = 0;
    long long kills = 0;
    if (is_link_event(e.kind)) {
      const int f = facility_of(spec_, e.node_a, e.node_b);
      const auto l0 = static_cast<std::size_t>(2 * f);
      const auto l1 = l0 + 1;
      switch (e.kind) {
        case scenario::EventKind::kLinkFail:
          changed = (enabled_[l0] ? 1 : 0) + (enabled_[l1] ? 1 : 0);
          // The runner kills every call whose booked path uses the facility
          // even when the links were already disabled.
          for (std::size_t i = 0; i < live_.size();) {
            const std::vector<int>& links = live_[i].links;
            const bool uses =
                std::find(links.begin(), links.end(), static_cast<int>(l0)) != links.end() ||
                std::find(links.begin(), links.end(), static_cast<int>(l1)) != links.end();
            if (uses) {
              ++kills;
              release(i);
            } else {
              ++i;
            }
          }
          enabled_[l0] = enabled_[l1] = 0;
          break;
        case scenario::EventKind::kLinkRepair:
          changed = (enabled_[l0] ? 0 : 1) + (enabled_[l1] ? 0 : 1);
          enabled_[l0] = enabled_[l1] = 1;
          break;
        case scenario::EventKind::kCapacitySet:
        case scenario::EventKind::kCapacityScale:
          for (const std::size_t l : {l0, l1}) {
            const int new_cap =
                e.kind == scenario::EventKind::kCapacitySet
                    ? e.capacity
                    : static_cast<int>(std::max<long long>(
                          1, std::llround(static_cast<double>(cap_[l]) * e.factor)));
            if (new_cap == cap_[l]) continue;
            ++changed;
            cap_[l] = new_cap;
            max_cap_[l] = std::max(max_cap_[l], new_cap);
            while (occ_[l] > cap_[l]) {
              // Preempt newest-first, exactly as the runner documents.
              std::size_t victim = kNone;
              for (std::size_t i = 0; i < live_.size(); ++i) {
                const std::vector<int>& links = live_[i].links;
                if (std::find(links.begin(), links.end(), static_cast<int>(l)) == links.end()) {
                  continue;
                }
                if (victim == kNone || live_[i].order > live_[victim].order) victim = i;
              }
              if (victim == kNone) {
                if (track_) {
                  out_.add("model: link " + std::to_string(l) +
                           " over capacity after shrink at t=" + std::to_string(e.time) +
                           " with no in-flight call to preempt (leaked circuits)");
                  desynced_ = true;
                }
                break;
              }
              ++kills;
              release(victim);
            }
          }
          break;
        default:
          break;
      }
    }
    applied_changed_.push_back(is_link_event(e.kind) ? changed : -1);
    applied_kills_.push_back(kills);
    if (desynced_) return;
  }

  void compare(const ObservedRun& run) {
    Failures& out = out_;
    const auto& applied = run.result.applied;
    out.expect_eq(applied.size(), events_.size(), "applied-event log length");
    if (applied.size() == events_.size()) {
      long long measured_kills = 0;
      for (std::size_t i = 0; i < applied.size(); ++i) {
        const scenario::ScenarioEvent& e = *events_[i];
        const std::string tag = "applied event " + std::to_string(i);
        out.expect_eq(applied[i].time, e.time, tag + " time");
        out.expect_eq(static_cast<int>(applied[i].kind), static_cast<int>(e.kind),
                      tag + " kind");
        if (!desynced_ && i < applied_changed_.size() && applied_changed_[i] >= 0) {
          out.expect_eq(applied[i].links_changed, applied_changed_[i], tag + " links_changed");
        }
        if (!desynced_ && track_ && i < applied_kills_.size()) {
          out.expect_eq(applied[i].calls_killed, applied_kills_[i], tag + " calls_killed");
        }
        if (applied[i].time >= spec_.warmup) measured_kills += applied[i].calls_killed;
      }
      out.expect_eq(run.result.dropped, measured_kills,
                    "dropped vs. post-warm-up kills in the applied log");
    }

    const auto& final_links = run.result.final_links;
    out.expect_eq(final_links.size(), cap_.size(), "final_links length");
    if (final_links.size() == cap_.size() && !desynced_) {
      for (std::size_t l = 0; l < cap_.size(); ++l) {
        const std::string tag = "final link " + std::to_string(l);
        out.expect_eq(final_links[l].capacity, cap_[l], tag + " capacity");
        out.expect_eq(final_links[l].enabled, enabled_[l] != 0, tag + " enabled");
        if (track_) {
          out.expect_eq(static_cast<long long>(final_links[l].occupancy), occ_[l],
                        tag + " occupancy");
        }
      }
    }

    // Occupancy-grid bounds: each cell is one sampled occupancy of one
    // link, so it can never be negative nor exceed the largest capacity
    // the link ever had.
    const obs::MetricRegistry& m = run.metrics;
    if (m.occupancy_samples() > 0) {
      out.expect_eq(m.link_count(), cap_.size(), "metric registry link count");
      if (m.link_count() == cap_.size()) {
        for (int s = 0; s < m.occupancy_samples(); ++s) {
          for (std::size_t l = 0; l < cap_.size(); ++l) {
            const long long v = m.occupancy_at(static_cast<std::size_t>(s), l);
            if (v < 0 || v > max_cap_[l]) {
              out.add("occupancy grid sample " + std::to_string(s) + " link " +
                      std::to_string(l) + " is " + std::to_string(v) + ", outside [0, " +
                      std::to_string(max_cap_[l]) + "]");
            }
          }
        }
      }
    }
  }

  const CaseSpec& spec_;
  bool track_;
  Failures& out_;
  std::vector<int> cap_;
  std::vector<int> max_cap_;
  std::vector<char> enabled_;
  std::vector<long long> occ_;
  std::vector<ModelCall> live_;
  std::size_t next_order_{0};
  std::vector<const scenario::ScenarioEvent*> events_;
  std::size_t next_event_{0};
  std::vector<int> applied_changed_;        ///< per applied event; -1 = not modeled
  std::vector<long long> applied_kills_;    ///< per applied event
  /// Set when the model can no longer follow the run (a booking the model
  /// rejects); downstream state comparisons are suppressed to avoid an
  /// avalanche of secondary messages.
  bool desynced_{false};
};

void check_conservation(const CaseSpec& spec, const loss::RunResult& r, Failures& out) {
  out.expect_eq(r.offered, r.blocked + r.carried_primary + r.carried_alternate,
                "offered vs. blocked + carried");
  out.expect_eq(r.node_count, spec.nodes, "result node_count");

  out.expect_eq(r.per_pair.size(),
                static_cast<std::size_t>(spec.nodes) * static_cast<std::size_t>(spec.nodes),
                "per_pair length");
  long long po = 0, pb = 0, pp = 0, pa = 0;
  for (const loss::PairCounters& p : r.per_pair) {
    po += p.offered;
    pb += p.blocked;
    pp += p.carried_primary;
    pa += p.carried_alternate;
  }
  out.expect_eq(po, r.offered, "per_pair offered sum");
  out.expect_eq(pb, r.blocked, "per_pair blocked sum");
  out.expect_eq(pp, r.carried_primary, "per_pair carried_primary sum");
  out.expect_eq(pa, r.carried_alternate, "per_pair carried_alternate sum");

  long long co = 0, cb = 0;
  for (const loss::ClassCounters& c : r.per_class) {
    co += c.offered;
    cb += c.blocked;
  }
  out.expect_eq(co, r.offered, "per_class offered sum");
  out.expect_eq(cb, r.blocked, "per_class blocked sum");

  if (!r.bin_offered.empty() || !r.bin_blocked.empty()) {
    out.expect_eq(r.bin_offered.size(), static_cast<std::size_t>(spec.time_bins),
                  "bin_offered length");
    out.expect_eq(r.bin_blocked.size(), static_cast<std::size_t>(spec.time_bins),
                  "bin_blocked length");
    long long bo = 0, bb = 0;
    for (const long long v : r.bin_offered) bo += v;
    for (const long long v : r.bin_blocked) bb += v;
    out.expect_eq(bo, r.offered, "bin offered sum");
    out.expect_eq(bb, r.blocked, "bin blocked sum");
  }

  long long carried_census = 0;
  if (!r.carried_by_hops.empty() && r.carried_by_hops[0] != 0) {
    out.add("carried_by_hops[0] is non-zero (a zero-link path was carried?)");
  }
  for (const long long v : r.carried_by_hops) carried_census += v;
  out.expect_eq(carried_census, r.carried_primary + r.carried_alternate,
                "carried_by_hops census vs. carried");
}

void check_counters(const CaseSpec& spec, const ObservedRun& run, Failures& out) {
  const loss::RunResult& r = run.result.run;
  const obs::MetricRegistry& m = run.metrics;
  out.expect_eq(m.counter_value("calls_offered"), r.offered, "counter calls_offered");
  out.expect_eq(m.counter_value("calls_blocked"), r.blocked, "counter calls_blocked");
  out.expect_eq(m.counter_value("calls_admitted_primary"), r.carried_primary,
                "counter calls_admitted_primary");
  out.expect_eq(m.counter_value("calls_admitted_alternate"), r.carried_alternate,
                "counter calls_admitted_alternate");
  out.expect_eq(m.counter_value("calls_preempted") + m.counter_value("calls_killed_failure"),
                run.result.dropped, "preempted + killed counters vs. dropped");
  out.expect_eq(m.counter_value("events_applied"),
                static_cast<long long>(run.result.applied.size()),
                "counter events_applied vs. applied log");

  long long hop_mass = 0;
  for (const long long v : m.histogram_counts("carried_hops")) hop_mass += v;
  out.expect_eq(hop_mass, r.carried_primary + r.carried_alternate,
                "carried_hops histogram mass");
  long long census_hops = 0;
  for (std::size_t h = 0; h < r.carried_by_hops.size(); ++h) {
    census_hops += r.carried_by_hops[h] * static_cast<long long>(h);
  }
  out.expect_eq(m.histogram_sum("carried_hops"), static_cast<double>(census_hops),
                "carried_hops histogram sum vs. hop census");

  // Theorem 1 / Eq. 15: a controlled policy probes alternates with the
  // alternate class, so it can NEVER land one inside the protected band.
  // DAR probes with the alternate class too (its trunk reservation is an
  // ADDITIONAL guard), so the same bound applies.
  if (spec.policy == PolicyChoice::kControlled || spec.policy == PolicyChoice::kDar) {
    out.expect_eq(m.counter_value("protected_band_alternate_admits"), 0LL,
                  "protected-band alternate admits under the controlled policy");
  }
}

void check_records(const CaseSpec& spec, const ObservedRun& run, Failures& out) {
  out.expect_eq(run.trace_lines.size(), run.records.size(),
                "rendered trace line count vs. record count");
  double last = 0.0;
  long long killed = 0, preempted = 0, event_records = 0, resolve_records = 0;
  for (std::size_t i = 0; i < run.records.size(); ++i) {
    const obs::TraceRecord& r = run.records[i];
    const std::string tag = "trace record " + std::to_string(i);
    if (r.time < last) {
      out.add(tag + ": time " + std::to_string(r.time) + " goes backwards (previous " +
              std::to_string(last) + ")");
    }
    last = std::max(last, r.time);
    if (r.time < 0.0 || r.time > spec.horizon) {
      out.add(tag + ": time " + std::to_string(r.time) + " outside [0, horizon]");
    }
    switch (r.kind) {
      case obs::TraceKind::kCallAdmitted:
        out.expect_eq(r.occ.size(), r.links.size(), tag + " occ/links lengths");
        out.expect_eq(static_cast<std::size_t>(r.hops), r.links.size(),
                      tag + " hops vs. links");
        if (r.links.empty()) out.add(tag + ": admitted call with an empty path");
        if (!(r.hold > 0.0)) out.add(tag + ": admitted call with non-positive hold");
        for (const int o : r.occ) {
          if (o < r.units) {
            out.add(tag + ": post-booking occupancy " + std::to_string(o) +
                    " below the call's own " + std::to_string(r.units) + " circuits");
            break;
          }
        }
        break;
      case obs::TraceKind::kCallKilled:
        ++killed;
        break;
      case obs::TraceKind::kCallPreempted:
        ++preempted;
        break;
      case obs::TraceKind::kEventApplied:
        ++event_records;
        break;
      case obs::TraceKind::kProtectionResolved:
        ++resolve_records;
        break;
      default:
        break;
    }
  }
  out.expect_eq(killed + preempted, run.result.dropped,
                "killed + preempted trace records vs. dropped");
  out.expect_eq(event_records, static_cast<long long>(run.result.applied.size()),
                "event_applied trace records vs. applied log");
  out.expect_eq(run.metrics.counter_value("protection_resolves"), resolve_records,
                "counter protection_resolves vs. trace records");
}

/// The epoch records' "%.17g" lambda CSV, parsed back to doubles (the
/// rendering round-trips bit-exactly, so == comparisons below are exact).
std::vector<double> parse_lambda_csv(const std::string& csv) {
  std::vector<double> out;
  const char* p = csv.c_str();
  const char* end = p + csv.size();
  while (p < end) {
    char* next = nullptr;
    out.push_back(std::strtod(p, &next));
    if (next == p) break;  // malformed tail; the caller checks the length
    p = next;
    if (p < end && *p == ',') ++p;
  }
  return out;
}

/// Epoch-purity oracle: the installed protection vector may change ONLY at
/// control epochs, and each epoch's vector must be a PURE function of the
/// recorded evidence -- re-solving Eq. 15 from the record's own lambda/cap
/// vectors (plus the previous record and the documented hysteresis rules)
/// must reproduce the installed r exactly.  Hysteresis leaves no slack to
/// hide in: a link whose recorded lambda equals the previous record's is
/// held (the controller echoes the reference lambda for held links, and an
/// un-held re-solve always carries a strictly different lambda), so its r
/// must not move; every other link must equal the fresh Eq.-15 candidate
/// clamped to +/- max_step around the previous value.
void check_control(const CaseSpec& spec, const ObservedRun& run, Failures& out) {
  std::vector<const obs::TraceRecord*> epochs;
  for (const obs::TraceRecord& r : run.records) {
    if (r.kind == obs::TraceKind::kControlEpoch) epochs.push_back(&r);
  }
  if (!spec.control_on()) {
    if (!epochs.empty()) {
      out.add("control is off but the trace carries " + std::to_string(epochs.size()) +
              " control_epoch records");
    }
    out.expect_eq(run.result.control_epochs, std::uint64_t{0},
                  "control_epochs with control off");
    out.expect_eq(run.result.control_retargets, std::uint64_t{0},
                  "control_retargets with control off");
    out.expect_eq(run.result.control_holds, std::uint64_t{0},
                  "control_holds with control off");
    return;
  }

  out.expect_eq(run.result.control_epochs, static_cast<std::uint64_t>(epochs.size()),
                "control_epochs vs. control_epoch trace records");
  out.expect_eq(run.metrics.counter_value("control_epochs"),
                static_cast<long long>(epochs.size()),
                "counter control_epochs vs. trace records");

  const std::size_t links = spec.facilities.size() * 2;
  std::vector<int> initial = spec.reservations();
  if (initial.empty()) initial.assign(links, 0);
  std::vector<double> prev_lam;
  std::vector<int> prev_r;
  std::uint64_t derived_retargets = 0;
  std::uint64_t derived_holds = 0;
  erlang::NetworkErlangMemo memo;
  for (std::size_t m = 0; m < epochs.size(); ++m) {
    const obs::TraceRecord& r = *epochs[m];
    const std::string tag = "control epoch " + std::to_string(m + 1);
    out.expect_eq(r.count, static_cast<long long>(m + 1), tag + " index");
    // The runner schedules epoch k at (double)k * epoch; re-derive the
    // same product for bit-equality.
    out.expect_eq(r.time, static_cast<double>(m + 1) * spec.control_epoch,
                  tag + " time on the epoch grid");
    const std::vector<double> lam = parse_lambda_csv(r.detail);
    if (r.links.size() != links || r.occ.size() != links || lam.size() != links) {
      out.add(tag + ": r/cap/lam vectors do not all have " + std::to_string(links) +
              " entries");
      return;
    }
    memo.configure(lam, r.occ);
    const std::vector<int> candidate = memo.protection_levels(spec.max_alt_hops);
    int changed = 0;
    int held = 0;
    for (std::size_t k = 0; k < links; ++k) {
      const int before = m == 0 ? initial[k] : prev_r[k];
      // Held-link detection theorem: a link was held exactly when its
      // recorded effective lambda is BIT-EQUAL to the previous epoch's
      // (a hold replays the reference; an accepted re-solve installs the
      // fresh estimate, and estimates repeat bit-equal only when the
      // hold condition fired first).  A hold pins only the reference
      // lambda -- r still walks toward the candidate for it under the
      // rate limit, so the expected level below is one formula for both.
      if (m > 0 && lam[k] == prev_lam[k]) ++held;
      int expected = candidate[k];
      if (spec.control_max_step > 0) {
        expected = std::clamp(expected, before - spec.control_max_step,
                              before + spec.control_max_step);
      }
      expected = std::clamp(expected, 0, r.occ[k]);
      if (r.links[k] != expected) {
        out.add(tag + ": link " + std::to_string(k) + " installs r=" +
                std::to_string(r.links[k]) +
                " but re-solving Eq. 15 from the recorded lambda/capacity gives " +
                std::to_string(expected));
      }
      if (r.links[k] != before) ++changed;
    }
    out.expect_eq(r.links_changed, changed, tag + " links_changed vs. re-derivation");
    derived_retargets += static_cast<std::uint64_t>(changed);
    derived_holds += static_cast<std::uint64_t>(held);
    prev_lam = lam;
    prev_r = r.links;
  }
  out.expect_eq(run.result.control_retargets, derived_retargets,
                "control_retargets vs. re-derived per-epoch changes");
  out.expect_eq(run.result.control_holds, derived_holds,
                "control_holds vs. re-derived held links");
}

}  // namespace

std::vector<std::string> check_invariants(const CaseSpec& spec, const ObservedRun& run) {
  Failures out;
  check_conservation(spec, run.result.run, out);
  check_counters(spec, run, out);
  check_records(spec, run, out);
  check_control(spec, run, out);
  StateModel model(spec, /*track_occupancy=*/spec.warmup == 0.0, out);
  model.run(run);
  for (std::string& msg : out.list) msg = "invariant: " + msg;
  return std::move(out.list);
}

}  // namespace altroute::check
