#include "check/shrink.hpp"

#include <algorithm>
#include <optional>
#include <utility>

namespace altroute::check {

namespace {

bool names_facility(const scenario::ScenarioEvent& e) {
  switch (e.kind) {
    case scenario::EventKind::kLinkFail:
    case scenario::EventKind::kLinkRepair:
    case scenario::EventKind::kCapacitySet:
    case scenario::EventKind::kCapacityScale:
      return true;
    case scenario::EventKind::kTrafficScale:
    case scenario::EventKind::kResolveProtection:
      return false;
  }
  return false;
}

bool same_pair(int a1, int b1, int a2, int b2) {
  return (a1 == a2 && b1 == b2) || (a1 == b2 && b1 == a2);
}

/// Accepts `candidate` (into `current`) iff it validates and still fails.
bool try_candidate(CaseSpec& current, CaseSpec candidate, const FailurePredicate& still_fails,
                   ShrinkStats* stats) {
  if (stats != nullptr) ++stats->attempted;
  try {
    candidate.validate();
  } catch (...) {
    return false;
  }
  bool fails = false;
  try {
    fails = still_fails(candidate);
  } catch (...) {
    fails = false;
  }
  if (!fails) return false;
  current = std::move(candidate);
  if (stats != nullptr) ++stats->accepted;
  return true;
}

/// The spec with node `v` removed: incident facilities, its demand
/// row/column, and events on incident facilities go too; higher node
/// indices shift down by one.  nullopt when the removal is structurally
/// impossible (2 nodes left, or no facility would survive).
std::optional<CaseSpec> without_node(const CaseSpec& spec, int v) {
  if (spec.nodes <= 2) return std::nullopt;
  CaseSpec out = spec;
  out.nodes = spec.nodes - 1;
  out.facilities.clear();
  for (const FacilitySpec& f : spec.facilities) {
    if (f.a == v || f.b == v) continue;
    FacilitySpec g = f;
    if (g.a > v) --g.a;
    if (g.b > v) --g.b;
    out.facilities.push_back(g);
  }
  if (out.facilities.empty()) return std::nullopt;
  out.demands.assign(static_cast<std::size_t>(out.nodes) * static_cast<std::size_t>(out.nodes),
                     0.0);
  for (int i = 0; i < spec.nodes; ++i) {
    if (i == v) continue;
    for (int j = 0; j < spec.nodes; ++j) {
      if (j == v) continue;
      const int ni = i > v ? i - 1 : i;
      const int nj = j > v ? j - 1 : j;
      out.demands[static_cast<std::size_t>(ni) * out.nodes + nj] =
          spec.demands[static_cast<std::size_t>(i) * spec.nodes + j];
    }
  }
  out.events.clear();
  for (const scenario::ScenarioEvent& e : spec.events) {
    if (!names_facility(e)) {
      out.events.push_back(e);
      continue;
    }
    if (e.node_a == v || e.node_b == v) continue;
    scenario::ScenarioEvent g = e;
    if (g.node_a > v) --g.node_a;
    if (g.node_b > v) --g.node_b;
    out.events.push_back(g);
  }
  return out;
}

/// The spec with facility `f` (and the events naming its pair) removed.
std::optional<CaseSpec> without_facility(const CaseSpec& spec, std::size_t f) {
  if (spec.facilities.size() <= 1) return std::nullopt;
  CaseSpec out = spec;
  const FacilitySpec removed = spec.facilities[f];
  out.facilities.erase(out.facilities.begin() + static_cast<std::ptrdiff_t>(f));
  out.events.clear();
  for (const scenario::ScenarioEvent& e : spec.events) {
    if (names_facility(e) && same_pair(e.node_a, e.node_b, removed.a, removed.b)) continue;
    out.events.push_back(e);
  }
  return out;
}

}  // namespace

CaseSpec shrink_case(const CaseSpec& start, const FailurePredicate& still_fails,
                     ShrinkStats* stats) {
  {
    bool fails = false;
    try {
      fails = still_fails(start);
    } catch (...) {
      fails = false;
    }
    if (!fails) return start;
  }

  CaseSpec current = start;
  bool progress = true;
  while (progress) {
    progress = false;
    if (stats != nullptr) ++stats->rounds;

    for (int i = static_cast<int>(current.events.size()) - 1; i >= 0; --i) {
      if (i >= static_cast<int>(current.events.size())) continue;
      CaseSpec cand = current;
      cand.events.erase(cand.events.begin() + i);
      progress |= try_candidate(current, std::move(cand), still_fails, stats);
    }

    for (int v = current.nodes - 1; v >= 0; --v) {
      if (current.nodes <= 2) break;
      if (v >= current.nodes) continue;
      std::optional<CaseSpec> cand = without_node(current, v);
      if (cand.has_value()) {
        progress |= try_candidate(current, std::move(*cand), still_fails, stats);
      }
    }

    for (int f = static_cast<int>(current.facilities.size()) - 1; f >= 0; --f) {
      if (f >= static_cast<int>(current.facilities.size())) continue;
      std::optional<CaseSpec> cand = without_facility(current, static_cast<std::size_t>(f));
      if (cand.has_value()) {
        progress |= try_candidate(current, std::move(*cand), still_fails, stats);
      }
    }

    for (std::size_t k = 0; k < current.demands.size(); ++k) {
      if (current.demands[k] == 0.0) continue;
      CaseSpec cand = current;
      cand.demands[k] = 0.0;
      progress |= try_candidate(current, std::move(cand), still_fails, stats);
    }

    if (current.warmup != 0.0) {
      CaseSpec cand = current;
      cand.warmup = 0.0;
      progress |= try_candidate(current, std::move(cand), still_fails, stats);
    }
    if (current.time_bins != 0) {
      CaseSpec cand = current;
      cand.time_bins = 0;
      progress |= try_candidate(current, std::move(cand), still_fails, stats);
    }
    if (current.auto_resolve) {
      CaseSpec cand = current;
      cand.auto_resolve = false;
      progress |= try_candidate(current, std::move(cand), still_fails, stats);
    }
    if (current.resume_at >= 0.0) {
      CaseSpec cand = current;
      cand.resume_at = -1.0;
      progress |= try_candidate(current, std::move(cand), still_fails, stats);
    }
    if (current.protect) {
      CaseSpec cand = current;
      cand.protect = false;
      progress |= try_candidate(current, std::move(cand), still_fails, stats);
    }
    // Control-plane simplifications: drop the whole control loop first,
    // then the hysteresis knobs one at a time; swap DAR for the stateless
    // controlled policy when the failure is not DAR-specific.
    if (current.control_on()) {
      CaseSpec cand = current;
      cand.control_epoch = 0.0;
      progress |= try_candidate(current, std::move(cand), still_fails, stats);
    }
    if (current.control_on() && current.control_deadband != 0.0) {
      CaseSpec cand = current;
      cand.control_deadband = 0.0;
      progress |= try_candidate(current, std::move(cand), still_fails, stats);
    }
    if (current.control_on() && current.control_max_step != 0) {
      CaseSpec cand = current;
      cand.control_max_step = 0;
      progress |= try_candidate(current, std::move(cand), still_fails, stats);
    }
    if (current.policy == PolicyChoice::kDar) {
      CaseSpec cand = current;
      cand.policy = PolicyChoice::kControlled;
      progress |= try_candidate(current, std::move(cand), still_fails, stats);
    }

    if (std::any_of(current.events.begin(), current.events.end(),
                    [](const auto& e) { return e.time != 0.0; })) {
      CaseSpec cand = current;
      for (scenario::ScenarioEvent& e : cand.events) e.time = 0.0;
      progress |= try_candidate(current, std::move(cand), still_fails, stats);
    }

    if (current.horizon > 1.0) {
      CaseSpec cand = current;
      cand.horizon = std::max(1.0, current.horizon / 2.0);
      if (cand.warmup >= cand.horizon) cand.warmup = 0.0;
      if (cand.resume_at > cand.horizon) cand.resume_at = cand.horizon;
      cand.events.erase(std::remove_if(cand.events.begin(), cand.events.end(),
                                       [&](const auto& e) { return e.time > cand.horizon; }),
                        cand.events.end());
      progress |= try_candidate(current, std::move(cand), still_fails, stats);
    }
  }
  return current;
}

}  // namespace altroute::check
