// Traffic demand matrices.
//
// T(i, j) is the offered load, in Erlangs, of calls originating at node i
// and destined for node j (ordered pairs; the diagonal is zero).  With unit
// mean holding time the Erlang value doubles as the Poisson arrival rate.
#pragma once

#include <vector>

#include "netgraph/ids.hpp"

namespace altroute::net {

/// Square matrix of offered loads in Erlangs, indexed by ordered node pair.
class TrafficMatrix {
 public:
  TrafficMatrix() = default;

  /// Creates an n-by-n all-zero matrix.
  explicit TrafficMatrix(int n);

  [[nodiscard]] int size() const { return n_; }

  /// Offered load (Erlangs) from i to j.  The diagonal is always zero.
  [[nodiscard]] double at(NodeId i, NodeId j) const {
    return data_[i.index() * static_cast<std::size_t>(n_) + j.index()];
  }

  /// Sets the offered load from i to j.  Throws on negative demand or on a
  /// non-zero diagonal entry.
  void set(NodeId i, NodeId j, double erlangs);

  /// Total offered load over all ordered pairs (Erlangs).
  [[nodiscard]] double total() const;

  /// Number of ordered pairs with strictly positive demand.
  [[nodiscard]] int active_pairs() const;

  /// Returns a copy with every entry multiplied by `factor` (load scaling
  /// used for the x-axes of Figures 3/4/6/7).  Throws on negative factor.
  [[nodiscard]] TrafficMatrix scaled(double factor) const;

  /// Uniform demand: `erlangs` between every ordered pair of distinct nodes.
  [[nodiscard]] static TrafficMatrix uniform(int n, double erlangs);

  /// Gravity model: T(i,j) proportional to weight[i]*weight[j], normalized
  /// so the matrix total equals `total_erlangs`.
  [[nodiscard]] static TrafficMatrix gravity(const std::vector<double>& weights,
                                             double total_erlangs);

 private:
  int n_{0};
  std::vector<double> data_;
};

}  // namespace altroute::net
