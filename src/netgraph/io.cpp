#include "netgraph/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace altroute::net {

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw std::invalid_argument("line " + std::to_string(line) + ": " + message);
}

// Splits off the first whitespace-delimited token; returns false when the
// line is blank or a comment.
bool directive(const std::string& line, std::string& head, std::istringstream& rest) {
  rest.clear();
  rest.str(line);
  if (!(rest >> head)) return false;
  if (head[0] == '#') return false;
  return true;
}

int expect_int(std::istringstream& rest, int line, const char* what) {
  long long value = 0;
  if (!(rest >> value)) fail(line, std::string("expected integer ") + what);
  return static_cast<int>(value);
}

double expect_double(std::istringstream& rest, int line, const char* what) {
  double value = 0.0;
  if (!(rest >> value)) fail(line, std::string("expected number ") + what);
  return value;
}

}  // namespace

void write_network(std::ostream& out, const Graph& graph) {
  out << "network 1\n";
  for (int i = 0; i < graph.node_count(); ++i) {
    out << "node " << i << ' ' << graph.node_name(NodeId(i)) << '\n';
  }
  for (int k = 0; k < graph.link_count(); ++k) {
    const Link& l = graph.link(LinkId(k));
    out << "link " << l.src.value << ' ' << l.dst.value << ' ' << l.capacity;
    if (!l.enabled) out << " down";
    out << '\n';
  }
}

Graph read_network(std::istream& in) {
  Graph graph;
  bool seen_header = false;
  std::string line;
  std::string head;
  std::istringstream rest;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!directive(line, head, rest)) continue;
    if (head == "network") {
      if (seen_header) fail(line_no, "duplicate network header");
      const int version = expect_int(rest, line_no, "version");
      if (version != 1) fail(line_no, "unsupported network version");
      seen_header = true;
    } else if (head == "node") {
      if (!seen_header) fail(line_no, "node before network header");
      const int id = expect_int(rest, line_no, "node id");
      if (id != graph.node_count()) fail(line_no, "node ids must be dense and in order");
      std::string name;
      std::getline(rest, name);
      const std::size_t start = name.find_first_not_of(" \t");
      name = (start == std::string::npos) ? ("n" + std::to_string(id)) : name.substr(start);
      graph.add_node(name);
    } else if (head == "link") {
      if (!seen_header) fail(line_no, "link before network header");
      const int src = expect_int(rest, line_no, "link src");
      const int dst = expect_int(rest, line_no, "link dst");
      const int capacity = expect_int(rest, line_no, "link capacity");
      if (src < 0 || src >= graph.node_count() || dst < 0 || dst >= graph.node_count()) {
        fail(line_no, "link endpoint out of range");
      }
      LinkId id;
      try {
        id = graph.add_link(NodeId(src), NodeId(dst), capacity);
      } catch (const std::invalid_argument& e) {
        fail(line_no, e.what());
      }
      std::string flag;
      if (rest >> flag) {
        if (flag == "down") {
          graph.set_link_enabled(id, false);
        } else if (flag[0] != '#') {
          fail(line_no, "unknown link flag '" + flag + "'");
        }
      }
    } else {
      fail(line_no, "unknown directive '" + head + "'");
    }
  }
  if (!seen_header) throw std::invalid_argument("missing 'network 1' header");
  return graph;
}

void write_traffic(std::ostream& out, const TrafficMatrix& traffic) {
  // max_digits10 keeps demands bit-exact across a round trip (seeded
  // simulations depend on exact rates).
  const auto old_precision = out.precision(17);
  out << "traffic 1\n";
  out << "nodes " << traffic.size() << '\n';
  for (int i = 0; i < traffic.size(); ++i) {
    for (int j = 0; j < traffic.size(); ++j) {
      if (i == j) continue;
      const double demand = traffic.at(NodeId(i), NodeId(j));
      if (demand > 0.0) out << "demand " << i << ' ' << j << ' ' << demand << '\n';
    }
  }
  out.precision(old_precision);
}

TrafficMatrix read_traffic(std::istream& in) {
  TrafficMatrix traffic;
  bool seen_header = false;
  bool seen_nodes = false;
  std::string line;
  std::string head;
  std::istringstream rest;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!directive(line, head, rest)) continue;
    if (head == "traffic") {
      if (seen_header) fail(line_no, "duplicate traffic header");
      if (expect_int(rest, line_no, "version") != 1) {
        fail(line_no, "unsupported traffic version");
      }
      seen_header = true;
    } else if (head == "nodes") {
      if (!seen_header) fail(line_no, "nodes before traffic header");
      if (seen_nodes) fail(line_no, "duplicate nodes directive");
      const int n = expect_int(rest, line_no, "node count");
      if (n < 0) fail(line_no, "negative node count");
      traffic = TrafficMatrix(n);
      seen_nodes = true;
    } else if (head == "demand") {
      if (!seen_nodes) fail(line_no, "demand before nodes directive");
      const int src = expect_int(rest, line_no, "demand src");
      const int dst = expect_int(rest, line_no, "demand dst");
      const double erlangs = expect_double(rest, line_no, "demand value");
      if (src < 0 || src >= traffic.size() || dst < 0 || dst >= traffic.size()) {
        fail(line_no, "demand endpoint out of range");
      }
      try {
        traffic.set(NodeId(src), NodeId(dst), erlangs);
      } catch (const std::invalid_argument& e) {
        fail(line_no, e.what());
      }
    } else {
      fail(line_no, "unknown directive '" + head + "'");
    }
  }
  if (!seen_header) throw std::invalid_argument("missing 'traffic 1' header");
  if (!seen_nodes) throw std::invalid_argument("missing 'nodes' directive");
  return traffic;
}

namespace {

template <typename Writer>
void save_file(const std::string& path, Writer writer) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  writer(out);
  if (!out) throw std::runtime_error("write failed: " + path);
}

std::ifstream open_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return in;
}

}  // namespace

void save_network(const std::string& path, const Graph& graph) {
  save_file(path, [&](std::ostream& out) { write_network(out, graph); });
}

Graph load_network(const std::string& path) {
  std::ifstream in = open_file(path);
  return read_network(in);
}

void save_traffic(const std::string& path, const TrafficMatrix& traffic) {
  save_file(path, [&](std::ostream& out) { write_traffic(out, traffic); });
}

TrafficMatrix load_traffic(const std::string& path) {
  std::ifstream in = open_file(path);
  return read_traffic(in);
}

}  // namespace altroute::net
