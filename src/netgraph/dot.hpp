// Graphviz / text rendering of a Graph (used by the Figure 5 bench).
#pragma once

#include <string>

#include "netgraph/graph.hpp"

namespace altroute::net {

/// Renders the graph in Graphviz DOT syntax.  Duplex pairs (opposite links
/// of equal capacity) are collapsed into a single undirected edge; odd
/// directed links are drawn with arrowheads.  Disabled links are dashed.
[[nodiscard]] std::string to_dot(const Graph& g, const std::string& title = "altroute");

/// Renders a plain-text adjacency listing, one node per line.
[[nodiscard]] std::string to_adjacency_text(const Graph& g);

}  // namespace altroute::net
