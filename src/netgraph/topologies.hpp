// Topology builders, including the NSFNet T3 Backbone model of the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "netgraph/graph.hpp"

namespace altroute::net {

/// Fully-connected directed mesh on n nodes; every ordered pair gets a
/// directed link of the given capacity.  full_mesh(4, 100) is the paper's
/// "fully-connected quadrangle" (Section 4.1).
[[nodiscard]] Graph full_mesh(int n, int capacity);

/// Bidirectional ring on n nodes (n >= 3).
[[nodiscard]] Graph ring(int n, int capacity);

/// Star: node 0 is the hub, connected by duplex links to nodes 1..n-1.
[[nodiscard]] Graph star(int n, int capacity);

/// Rectangular grid with duplex links between 4-neighbors.
[[nodiscard]] Graph grid(int rows, int cols, int capacity);

/// G(n, p) random graph made strongly connected: a random bidirectional ring
/// is laid down first, then each remaining unordered pair gets a duplex link
/// with probability p.  Deterministic in `seed`.
[[nodiscard]] Graph erdos_renyi(int n, double p, int capacity, std::uint64_t seed);

/// One row of the paper's Table 1: a directed NSFNet link with its capacity,
/// primary load under the nominal traffic matrix, and the state-protection
/// levels the paper reports for H = 6 and H = 11.
struct NsfnetTable1Row {
  int src;
  int dst;
  int capacity;     ///< C^k (Erlangs / simultaneous calls)
  double lambda;    ///< Lambda^k, primary load, rounded in the paper
  int r_h6;         ///< r^k for H = 6
  int r_h11;        ///< r^k for H = 11
};

/// The 30 directed links of Table 1, in the paper's row order.
[[nodiscard]] const std::vector<NsfnetTable1Row>& nsfnet_table1();

/// The 12-node NSFNet T3 Backbone model (Figure 5): 15 duplex facilities,
/// i.e. 30 directed links, each of capacity 100 calls (155 Mb/s with
/// 100 Mb/s allocated to rate-based traffic, 1 Mb/s per prototype video
/// call).  Node names are indicative of the Fall-1992 core nodal switching
/// subsystems; the paper identifies nodes only by number, which is what all
/// computations use.
[[nodiscard]] Graph nsfnet_t3();

}  // namespace altroute::net
