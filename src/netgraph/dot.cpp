#include "netgraph/dot.hpp"

#include <sstream>
#include <vector>

namespace altroute::net {

std::string to_dot(const Graph& g, const std::string& title) {
  std::ostringstream out;
  out << "graph \"" << title << "\" {\n";
  out << "  node [shape=circle];\n";
  for (int i = 0; i < g.node_count(); ++i) {
    out << "  " << i << " [label=\"" << i << "\\n" << g.node_name(NodeId(i)) << "\"];\n";
  }
  std::vector<char> drawn(static_cast<std::size_t>(g.link_count()), 0);
  for (int k = 0; k < g.link_count(); ++k) {
    if (drawn[static_cast<std::size_t>(k)]) continue;
    const Link& l = g.link(LinkId(k));
    // Look for the unrendered reverse twin to collapse into one edge.
    int twin = -1;
    for (int m = k + 1; m < g.link_count(); ++m) {
      const Link& r = g.link(LinkId(m));
      if (!drawn[static_cast<std::size_t>(m)] && r.src == l.dst && r.dst == l.src &&
          r.capacity == l.capacity && r.enabled == l.enabled) {
        twin = m;
        break;
      }
    }
    out << "  " << l.src.value << " -- " << l.dst.value << " [label=\"C=" << l.capacity
        << "\"";
    if (twin < 0) out << ", dir=forward";
    if (!l.enabled) out << ", style=dashed";
    out << "];\n";
    drawn[static_cast<std::size_t>(k)] = 1;
    if (twin >= 0) drawn[static_cast<std::size_t>(twin)] = 1;
  }
  out << "}\n";
  return out.str();
}

std::string to_adjacency_text(const Graph& g) {
  std::ostringstream out;
  for (int i = 0; i < g.node_count(); ++i) {
    const NodeId n(i);
    out << i << " (" << g.node_name(n) << "):";
    for (const LinkId id : g.out_links(n)) {
      const Link& l = g.link(id);
      out << ' ' << l.dst.value << "[C=" << l.capacity << (l.enabled ? "" : ",down") << ']';
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace altroute::net
