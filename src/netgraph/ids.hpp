// Strong identifier types for nodes and links.
//
// Nodes and directed links are referred to by dense indices assigned by the
// Graph that owns them.  Using distinct wrapper types (rather than raw
// integers) prevents the classic bug of passing a node index where a link
// index is expected; the wrappers are trivially copyable and cost nothing.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>

namespace altroute::net {

/// Index of a node within a Graph.  Dense, starting at 0.
struct NodeId {
  std::int32_t value{-1};

  constexpr NodeId() = default;
  constexpr explicit NodeId(std::int32_t v) : value(v) {}

  /// True when the id refers to a real node (ids are invalid by default).
  [[nodiscard]] constexpr bool valid() const { return value >= 0; }

  /// Dense index for use with std::vector-backed per-node tables.
  [[nodiscard]] constexpr std::size_t index() const {
    return static_cast<std::size_t>(value);
  }

  friend constexpr auto operator<=>(NodeId, NodeId) = default;
};

/// Index of a *directed* link within a Graph.  Dense, starting at 0.
/// An undirected transmission facility is modeled as two directed links.
struct LinkId {
  std::int32_t value{-1};

  constexpr LinkId() = default;
  constexpr explicit LinkId(std::int32_t v) : value(v) {}

  /// True when the id refers to a real link (ids are invalid by default).
  [[nodiscard]] constexpr bool valid() const { return value >= 0; }

  /// Dense index for use with std::vector-backed per-link tables.
  [[nodiscard]] constexpr std::size_t index() const {
    return static_cast<std::size_t>(value);
  }

  friend constexpr auto operator<=>(LinkId, LinkId) = default;
};

}  // namespace altroute::net

template <>
struct std::hash<altroute::net::NodeId> {
  std::size_t operator()(altroute::net::NodeId id) const noexcept {
    return std::hash<std::int32_t>{}(id.value);
  }
};

template <>
struct std::hash<altroute::net::LinkId> {
  std::size_t operator()(altroute::net::LinkId id) const noexcept {
    return std::hash<std::int32_t>{}(id.value);
  }
};
