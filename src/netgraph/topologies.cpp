#include "netgraph/topologies.hpp"

#include <array>
#include <stdexcept>
#include <string>

namespace altroute::net {

namespace {

// Local splitmix64; topology generation must not depend on the sim library.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double uniform01(std::uint64_t& state) {
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

}  // namespace

Graph full_mesh(int n, int capacity) {
  if (n < 2) throw std::invalid_argument("full_mesh: need at least 2 nodes");
  Graph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j) g.add_link(NodeId(i), NodeId(j), capacity);
    }
  }
  return g;
}

Graph ring(int n, int capacity) {
  if (n < 3) throw std::invalid_argument("ring: need at least 3 nodes");
  Graph g(n);
  for (int i = 0; i < n; ++i) {
    g.add_duplex(NodeId(i), NodeId((i + 1) % n), capacity);
  }
  return g;
}

Graph star(int n, int capacity) {
  if (n < 2) throw std::invalid_argument("star: need at least 2 nodes");
  Graph g(n);
  for (int i = 1; i < n; ++i) g.add_duplex(NodeId(0), NodeId(i), capacity);
  return g;
}

Graph grid(int rows, int cols, int capacity) {
  if (rows < 1 || cols < 1 || rows * cols < 2) {
    throw std::invalid_argument("grid: need at least 2 nodes");
  }
  Graph g(rows * cols);
  const auto id = [cols](int r, int c) { return NodeId(r * cols + c); };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_duplex(id(r, c), id(r, c + 1), capacity);
      if (r + 1 < rows) g.add_duplex(id(r, c), id(r + 1, c), capacity);
    }
  }
  return g;
}

Graph erdos_renyi(int n, double p, int capacity, std::uint64_t seed) {
  if (n < 3) throw std::invalid_argument("erdos_renyi: need at least 3 nodes");
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("erdos_renyi: p out of [0,1]");
  std::uint64_t state = seed;
  // Random ring for strong connectivity: Fisher-Yates permutation.
  std::vector<int> perm(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
  for (int i = n - 1; i > 0; --i) {
    const int j = static_cast<int>(splitmix64(state) % static_cast<std::uint64_t>(i + 1));
    std::swap(perm[static_cast<std::size_t>(i)], perm[static_cast<std::size_t>(j)]);
  }
  Graph g(n);
  std::vector<std::vector<char>> present(static_cast<std::size_t>(n),
                                         std::vector<char>(static_cast<std::size_t>(n), 0));
  const auto connect = [&](int a, int b) {
    if (present[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)]) return;
    g.add_duplex(NodeId(a), NodeId(b), capacity);
    present[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = 1;
    present[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)] = 1;
  };
  for (int i = 0; i < n; ++i) {
    connect(perm[static_cast<std::size_t>(i)], perm[static_cast<std::size_t>((i + 1) % n)]);
  }
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      if (uniform01(state) < p) connect(a, b);
    }
  }
  return g;
}

const std::vector<NsfnetTable1Row>& nsfnet_table1() {
  // Transcribed from Table 1 of the paper (capacity and loads in Erlangs;
  // primary loads rounded to the nearest integer as printed).
  static const std::vector<NsfnetTable1Row> rows = {
      {0, 1, 100, 74, 7, 10},    {0, 11, 100, 77, 8, 12},  {1, 0, 100, 71, 6, 8},
      {1, 2, 100, 37, 2, 3},     {1, 5, 100, 46, 3, 4},    {2, 1, 100, 34, 2, 3},
      {2, 3, 100, 16, 1, 2},     {3, 2, 100, 16, 1, 2},    {3, 4, 100, 49, 3, 4},
      {4, 3, 100, 54, 3, 4},     {4, 5, 100, 63, 4, 6},    {4, 11, 100, 103, 56, 100},
      {5, 1, 100, 49, 3, 4},     {5, 4, 100, 65, 5, 6},    {5, 6, 100, 81, 11, 15},
      {6, 5, 100, 87, 16, 26},   {6, 7, 100, 74, 7, 10},   {7, 6, 100, 73, 7, 9},
      {7, 8, 100, 71, 6, 8},     {7, 9, 100, 43, 3, 3},    {8, 7, 100, 76, 8, 11},
      {8, 10, 100, 124, 100, 100}, {9, 7, 100, 39, 2, 3},  {9, 10, 100, 49, 3, 4},
      {10, 8, 100, 107, 70, 100}, {10, 9, 100, 48, 3, 4},  {10, 11, 100, 167, 100, 100},
      {11, 0, 100, 85, 14, 22},  {11, 4, 100, 104, 60, 100}, {11, 10, 100, 154, 100, 100},
  };
  return rows;
}

Graph nsfnet_t3() {
  // Names are indicative of the Fall-1992 configuration; the paper numbers
  // the Core Nodal Switching Subsystems 0..11 and so do we.
  static const std::array<const char*, 12> kNames = {
      "Seattle",   "Palo Alto", "San Diego", "Houston",  "Atlanta",  "Denver",
      "Lincoln",   "Champaign", "Pittsburgh", "Ann Arbor", "Princeton", "Chicago"};
  Graph g;
  for (const char* name : kNames) g.add_node(name);
  // Add directed links in exactly the Table 1 row order so LinkId k maps to
  // the k-th row of the table.
  for (const NsfnetTable1Row& row : nsfnet_table1()) {
    g.add_link(NodeId(row.src), NodeId(row.dst), row.capacity);
  }
  return g;
}

}  // namespace altroute::net
