// Plain-text serialization of networks and traffic matrices.
//
// A deliberately simple line format so deployments can describe their own
// topologies without code changes:
//
//   # comments and blank lines are ignored
//   network 1              <- format tag + version
//   node <id> <name...>    <- ids must appear densely, 0..N-1, in order
//   link <src> <dst> <capacity> [down]
//
//   traffic 1
//   nodes <n>
//   demand <src> <dst> <erlangs>
//
// Parsing is strict: unknown directives, duplicate nodes, dangling
// endpoints, or malformed numbers throw std::invalid_argument with a line
// number in the message.
#pragma once

#include <iosfwd>
#include <string>

#include "netgraph/graph.hpp"
#include "netgraph/traffic_matrix.hpp"

namespace altroute::net {

/// Writes `graph` in the network format (including disabled links).
void write_network(std::ostream& out, const Graph& graph);

/// Parses a network; throws std::invalid_argument on malformed input.
[[nodiscard]] Graph read_network(std::istream& in);

/// Writes `traffic` in the traffic format (positive demands only).
void write_traffic(std::ostream& out, const TrafficMatrix& traffic);

/// Parses a traffic matrix; throws std::invalid_argument on malformed input.
[[nodiscard]] TrafficMatrix read_traffic(std::istream& in);

/// Convenience wrappers over files; throw std::runtime_error when the file
/// cannot be opened and std::invalid_argument on malformed content.
void save_network(const std::string& path, const Graph& graph);
[[nodiscard]] Graph load_network(const std::string& path);
void save_traffic(const std::string& path, const TrafficMatrix& traffic);
[[nodiscard]] TrafficMatrix load_traffic(const std::string& path);

}  // namespace altroute::net
