// Directed capacitated multigraph used as the network substrate.
//
// The Graph owns node names and directed links; each link carries an integer
// circuit capacity (the number of unit-bandwidth calls it can hold at once,
// per the paper's single-call-class model).  The structure is immutable in
// spirit: links may be added and administratively disabled (for the link
// failure experiments) but never removed, so NodeId/LinkId stay dense and
// stable for the lifetime of the graph.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "netgraph/ids.hpp"

namespace altroute::net {

/// A directed link: src -> dst with an integer circuit capacity.
struct Link {
  NodeId src;
  NodeId dst;
  int capacity{0};
  /// Administrative state; disabled links carry no traffic and are skipped
  /// by all routing computations (Section 4.2.2 "Link failures").
  bool enabled{true};
};

/// Directed capacitated graph.  Nodes and links are created once and indexed
/// densely; per-node and per-link data elsewhere in the library is stored in
/// plain vectors indexed by NodeId::index() / LinkId::index().
class Graph {
 public:
  Graph() = default;

  /// Creates a graph with `n` anonymous nodes ("n0", "n1", ...).
  explicit Graph(int n);

  /// Adds a node with the given display name; returns its id.
  NodeId add_node(std::string name);

  /// Adds a directed link src->dst with the given capacity; returns its id.
  /// Throws std::invalid_argument on bad endpoints, self-loop, or capacity<=0.
  LinkId add_link(NodeId src, NodeId dst, int capacity);

  /// Adds a pair of opposite directed links with equal capacity (an
  /// undirected facility); returns {forward, reverse}.
  std::pair<LinkId, LinkId> add_duplex(NodeId a, NodeId b, int capacity);

  [[nodiscard]] int node_count() const { return static_cast<int>(names_.size()); }
  [[nodiscard]] int link_count() const { return static_cast<int>(links_.size()); }

  [[nodiscard]] const Link& link(LinkId id) const { return links_[id.index()]; }
  [[nodiscard]] std::string_view node_name(NodeId id) const { return names_[id.index()]; }

  /// All directed links (including disabled ones; check Link::enabled).
  [[nodiscard]] std::span<const Link> links() const { return links_; }

  /// Ids of links leaving `n`, in insertion order (includes disabled links).
  [[nodiscard]] std::span<const LinkId> out_links(NodeId n) const {
    return out_[n.index()];
  }

  /// Ids of links entering `n`, in insertion order (includes disabled links).
  [[nodiscard]] std::span<const LinkId> in_links(NodeId n) const {
    return in_[n.index()];
  }

  /// First *enabled* directed link src->dst, if any.
  [[nodiscard]] std::optional<LinkId> find_link(NodeId src, NodeId dst) const;

  /// Administratively disables / re-enables a link (failure experiments).
  void set_link_enabled(LinkId id, bool enabled) { links_[id.index()].enabled = enabled; }

  /// Updates a link's capacity (scenario capacity events).  Throws
  /// std::invalid_argument when capacity <= 0 -- a facility with no
  /// circuits is modeled by disabling it, not by zero capacity.
  void set_link_capacity(LinkId id, int capacity);

  /// Disables both directions between a and b; returns how many links
  /// changed (0 when all were already disabled).  Throws
  /// std::invalid_argument when no a<->b links exist at all, so a typo in
  /// a failure scenario fails loudly instead of silently doing nothing.
  int fail_duplex(NodeId a, NodeId b);

  /// Re-enables both directions between a and b (repair after
  /// fail_duplex); returns how many links changed.  Same validation as
  /// fail_duplex.
  int repair_duplex(NodeId a, NodeId b);

  /// Ids of every link between a and b in either direction, enabled or
  /// not, in insertion order.  Throws when no such link exists.
  [[nodiscard]] std::vector<LinkId> duplex_links(NodeId a, NodeId b) const;

  /// Out-neighbors of `n` over enabled links, deduplicated, ascending.
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId n) const;

  /// True if every node can reach every other node over enabled links.
  [[nodiscard]] bool strongly_connected() const;

  /// Sum of capacities over enabled links src->dst (0 when disconnected).
  /// This is the C(i,j) of the paper's Erlang Bound formula.
  [[nodiscard]] int capacity_between(NodeId src, NodeId dst) const;

 private:
  void check_node(NodeId n, const char* what) const;

  std::vector<std::string> names_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> out_;
  std::vector<std::vector<LinkId>> in_;
};

}  // namespace altroute::net
