#include "netgraph/graph.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace altroute::net {

Graph::Graph(int n) {
  if (n < 0) throw std::invalid_argument("Graph: negative node count");
  names_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) add_node("n" + std::to_string(i));
}

NodeId Graph::add_node(std::string name) {
  names_.push_back(std::move(name));
  out_.emplace_back();
  in_.emplace_back();
  return NodeId(static_cast<std::int32_t>(names_.size() - 1));
}

void Graph::check_node(NodeId n, const char* what) const {
  if (!n.valid() || n.value >= node_count()) {
    throw std::invalid_argument(std::string("Graph: invalid node for ") + what);
  }
}

LinkId Graph::add_link(NodeId src, NodeId dst, int capacity) {
  check_node(src, "add_link src");
  check_node(dst, "add_link dst");
  if (src == dst) throw std::invalid_argument("Graph: self-loop not allowed");
  if (capacity <= 0) throw std::invalid_argument("Graph: capacity must be positive");
  const LinkId id(static_cast<std::int32_t>(links_.size()));
  links_.push_back(Link{src, dst, capacity, true});
  out_[src.index()].push_back(id);
  in_[dst.index()].push_back(id);
  return id;
}

std::pair<LinkId, LinkId> Graph::add_duplex(NodeId a, NodeId b, int capacity) {
  const LinkId fwd = add_link(a, b, capacity);
  const LinkId rev = add_link(b, a, capacity);
  return {fwd, rev};
}

std::optional<LinkId> Graph::find_link(NodeId src, NodeId dst) const {
  check_node(src, "find_link src");
  check_node(dst, "find_link dst");
  for (const LinkId id : out_[src.index()]) {
    const Link& l = links_[id.index()];
    if (l.enabled && l.dst == dst) return id;
  }
  return std::nullopt;
}

void Graph::set_link_capacity(LinkId id, int capacity) {
  if (!id.valid() || id.value >= link_count()) {
    throw std::invalid_argument("Graph: invalid link for set_link_capacity");
  }
  if (capacity <= 0) throw std::invalid_argument("Graph: capacity must be positive");
  links_[id.index()].capacity = capacity;
}

std::vector<LinkId> Graph::duplex_links(NodeId a, NodeId b) const {
  check_node(a, "duplex_links a");
  check_node(b, "duplex_links b");
  std::vector<LinkId> out;
  for (std::size_t k = 0; k < links_.size(); ++k) {
    const Link& l = links_[k];
    if ((l.src == a && l.dst == b) || (l.src == b && l.dst == a)) {
      out.push_back(LinkId(static_cast<std::int32_t>(k)));
    }
  }
  if (out.empty()) {
    throw std::invalid_argument("Graph: no duplex edge between " +
                                std::string(node_name(a)) + " and " +
                                std::string(node_name(b)));
  }
  return out;
}

int Graph::fail_duplex(NodeId a, NodeId b) {
  int changed = 0;
  for (const LinkId id : duplex_links(a, b)) {
    if (links_[id.index()].enabled) {
      links_[id.index()].enabled = false;
      ++changed;
    }
  }
  return changed;
}

int Graph::repair_duplex(NodeId a, NodeId b) {
  int changed = 0;
  for (const LinkId id : duplex_links(a, b)) {
    if (!links_[id.index()].enabled) {
      links_[id.index()].enabled = true;
      ++changed;
    }
  }
  return changed;
}

std::vector<NodeId> Graph::neighbors(NodeId n) const {
  check_node(n, "neighbors");
  std::vector<NodeId> out;
  for (const LinkId id : out_[n.index()]) {
    const Link& l = links_[id.index()];
    if (l.enabled) out.push_back(l.dst);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool Graph::strongly_connected() const {
  const int n = node_count();
  if (n <= 1) return true;
  // BFS from node 0 forwards and backwards; strong connectivity on a graph
  // this small does not warrant Tarjan.
  const auto reachable = [&](bool forward) {
    std::vector<char> seen(static_cast<std::size_t>(n), 0);
    std::queue<NodeId> q;
    q.push(NodeId(0));
    seen[0] = 1;
    int count = 1;
    while (!q.empty()) {
      const NodeId u = q.front();
      q.pop();
      const auto& edges = forward ? out_[u.index()] : in_[u.index()];
      for (const LinkId id : edges) {
        const Link& l = links_[id.index()];
        if (!l.enabled) continue;
        const NodeId v = forward ? l.dst : l.src;
        if (!seen[v.index()]) {
          seen[v.index()] = 1;
          ++count;
          q.push(v);
        }
      }
    }
    return count == n;
  };
  return reachable(true) && reachable(false);
}

int Graph::capacity_between(NodeId src, NodeId dst) const {
  check_node(src, "capacity_between src");
  check_node(dst, "capacity_between dst");
  int total = 0;
  for (const LinkId id : out_[src.index()]) {
    const Link& l = links_[id.index()];
    if (l.enabled && l.dst == dst) total += l.capacity;
  }
  return total;
}

}  // namespace altroute::net
