#include "netgraph/traffic_matrix.hpp"

#include <numeric>
#include <stdexcept>

namespace altroute::net {

TrafficMatrix::TrafficMatrix(int n) : n_(n) {
  if (n < 0) throw std::invalid_argument("TrafficMatrix: negative size");
  data_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0.0);
}

void TrafficMatrix::set(NodeId i, NodeId j, double erlangs) {
  if (!i.valid() || !j.valid() || i.value >= n_ || j.value >= n_) {
    throw std::invalid_argument("TrafficMatrix::set: index out of range");
  }
  if (erlangs < 0.0) throw std::invalid_argument("TrafficMatrix::set: negative demand");
  if (i == j && erlangs != 0.0) {
    throw std::invalid_argument("TrafficMatrix::set: diagonal must be zero");
  }
  data_[i.index() * static_cast<std::size_t>(n_) + j.index()] = erlangs;
}

double TrafficMatrix::total() const {
  return std::accumulate(data_.begin(), data_.end(), 0.0);
}

int TrafficMatrix::active_pairs() const {
  int count = 0;
  for (const double v : data_) count += (v > 0.0) ? 1 : 0;
  return count;
}

TrafficMatrix TrafficMatrix::scaled(double factor) const {
  if (factor < 0.0) throw std::invalid_argument("TrafficMatrix::scaled: negative factor");
  TrafficMatrix out(n_);
  for (std::size_t k = 0; k < data_.size(); ++k) out.data_[k] = data_[k] * factor;
  return out;
}

TrafficMatrix TrafficMatrix::uniform(int n, double erlangs) {
  if (erlangs < 0.0) throw std::invalid_argument("TrafficMatrix::uniform: negative demand");
  TrafficMatrix t(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j) t.set(NodeId(i), NodeId(j), erlangs);
    }
  }
  return t;
}

TrafficMatrix TrafficMatrix::gravity(const std::vector<double>& weights,
                                     double total_erlangs) {
  const int n = static_cast<int>(weights.size());
  if (total_erlangs < 0.0) throw std::invalid_argument("gravity: negative total");
  for (const double w : weights) {
    if (w < 0.0) throw std::invalid_argument("gravity: negative weight");
  }
  TrafficMatrix t(n);
  double norm = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j) norm += weights[static_cast<std::size_t>(i)] * weights[static_cast<std::size_t>(j)];
    }
  }
  if (norm <= 0.0) return t;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const double w = weights[static_cast<std::size_t>(i)] * weights[static_cast<std::size_t>(j)];
      t.set(NodeId(i), NodeId(j), total_erlangs * w / norm);
    }
  }
  return t;
}

}  // namespace altroute::net
