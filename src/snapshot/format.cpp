#include "snapshot/format.hpp"

#include <array>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace altroute::snapshot {

namespace {

constexpr std::array<char, 8> kMagic = {'A', 'L', 'T', 'R', 'C', 'K', 'P', 'T'};
constexpr std::size_t kHeaderSize = 16;
constexpr std::size_t kTableRowSize = 24;  // 4 tag + 8 offset + 8 size + 4 crc

[[noreturn]] void fail(const std::string& name, const std::string& what) {
  throw std::invalid_argument("checkpoint '" + name + "': " + what);
}

bool valid_tag(std::string_view tag) {
  if (tag.size() != 4) return false;
  for (const char c : tag) {
    if (c < 0x21 || c > 0x7e) return false;  // printable ASCII, no spaces
  }
  return true;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

/// Parses header + table with full structural validation; shared by
/// parse_container and read_section_table.
std::vector<SectionInfo> parse_table(const std::vector<std::uint8_t>& bytes,
                                     const std::string& name) {
  if (bytes.size() < kHeaderSize) {
    fail(name, "truncated header (" + std::to_string(kHeaderSize) + " bytes needed, " +
                   std::to_string(bytes.size()) + " present)");
  }
  if (std::memcmp(bytes.data(), kMagic.data(), kMagic.size()) != 0) {
    fail(name, "bad magic (not an altroute checkpoint)");
  }
  const std::uint32_t version = get_u32(bytes.data() + 8);
  if (version != kFormatVersion) {
    fail(name, "unsupported format version " + std::to_string(version) + " (expected " +
                   std::to_string(kFormatVersion) + ")");
  }
  const std::uint32_t count = get_u32(bytes.data() + 12);
  const std::uint64_t table_end =
      kHeaderSize + static_cast<std::uint64_t>(count) * kTableRowSize;
  if (table_end > bytes.size()) {
    fail(name, "section table overruns the file (" + std::to_string(count) +
                   " sections need " + std::to_string(table_end) + " bytes, " +
                   std::to_string(bytes.size()) + " present)");
  }

  std::vector<SectionInfo> table;
  table.reserve(count);
  std::uint64_t expected_offset = table_end;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint8_t* row = bytes.data() + kHeaderSize + i * kTableRowSize;
    SectionInfo info;
    info.tag.assign(reinterpret_cast<const char*>(row), 4);
    info.offset = get_u64(row + 4);
    info.size = get_u64(row + 12);
    info.crc = get_u32(row + 20);
    if (!valid_tag(info.tag)) {
      fail(name, "section " + std::to_string(i) + " has a non-ASCII tag");
    }
    for (const SectionInfo& prior : table) {
      if (prior.tag == info.tag) fail(name, "duplicate section '" + info.tag + "'");
    }
    if (info.offset != expected_offset) {
      fail(name, "section '" + info.tag + "' at offset " + std::to_string(info.offset) +
                     ", expected " + std::to_string(expected_offset) +
                     " (sections must be tightly packed)");
    }
    if (info.offset + info.size > bytes.size() || info.offset + info.size < info.offset) {
      fail(name, "section '" + info.tag + "' overruns the file (offset " +
                     std::to_string(info.offset) + " + size " + std::to_string(info.size) +
                     " > file size " + std::to_string(bytes.size()) + ")");
    }
    expected_offset = info.offset + info.size;
    table.push_back(std::move(info));
  }
  if (expected_offset != bytes.size()) {
    fail(name, std::to_string(bytes.size() - expected_offset) +
                   " trailing bytes after the last section");
  }
  for (const SectionInfo& info : table) {
    const std::uint32_t computed = crc32(bytes.data() + info.offset, info.size);
    if (computed != info.crc) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "stored 0x%08x, computed 0x%08x", info.crc, computed);
      fail(name, "section '" + info.tag + "' CRC mismatch (" + std::string(buf) +
                     ") -- file is corrupt");
    }
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  // Table-driven reflected CRC-32; the table is built once, lazily.
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

std::vector<std::uint8_t> render_container(const std::vector<Section>& sections) {
  for (std::size_t i = 0; i < sections.size(); ++i) {
    if (!valid_tag(sections[i].tag)) {
      throw std::invalid_argument("render_container: tag '" + sections[i].tag +
                                  "' is not 4 printable ASCII characters");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (sections[j].tag == sections[i].tag) {
        throw std::invalid_argument("render_container: duplicate tag '" + sections[i].tag +
                                    "'");
      }
    }
  }
  std::vector<std::uint8_t> out;
  out.insert(out.end(), kMagic.begin(), kMagic.end());
  put_u32(out, kFormatVersion);
  put_u32(out, static_cast<std::uint32_t>(sections.size()));
  std::uint64_t offset = kHeaderSize + sections.size() * kTableRowSize;
  for (const Section& s : sections) {
    out.insert(out.end(), s.tag.begin(), s.tag.end());
    put_u64(out, offset);
    put_u64(out, s.bytes.size());
    put_u32(out, crc32(s.bytes.data(), s.bytes.size()));
    offset += s.bytes.size();
  }
  for (const Section& s : sections) out.insert(out.end(), s.bytes.begin(), s.bytes.end());
  return out;
}

std::vector<Section> parse_container(const std::vector<std::uint8_t>& bytes,
                                     const std::string& name) {
  std::vector<Section> sections;
  for (const SectionInfo& info : parse_table(bytes, name)) {
    Section s;
    s.tag = info.tag;
    s.bytes.assign(bytes.begin() + static_cast<std::ptrdiff_t>(info.offset),
                   bytes.begin() + static_cast<std::ptrdiff_t>(info.offset + info.size));
    sections.push_back(std::move(s));
  }
  return sections;
}

std::vector<SectionInfo> read_section_table(const std::vector<std::uint8_t>& bytes,
                                            const std::string& name) {
  return parse_table(bytes, name);
}

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) fail(path, "cannot open file");
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + got);
  }
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) fail(path, "read error");
  return bytes;
}

void write_container_file(const std::string& path, const std::vector<Section>& sections) {
  const std::vector<std::uint8_t> bytes = render_container(sections);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) throw std::runtime_error("checkpoint '" + path + "': cannot create file");
  const std::size_t wrote = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool bad = wrote != bytes.size() || std::fclose(f) != 0;
  if (bad || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint '" + path + "': write failed");
  }
}

std::vector<Section> read_container_file(const std::string& path) {
  return parse_container(read_file_bytes(path), path);
}

void SectionWriter::u32(std::uint32_t v) { put_u32(bytes_, v); }
void SectionWriter::u64(std::uint64_t v) { put_u64(bytes_, v); }

void SectionWriter::f64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void SectionWriter::str(std::string_view v) {
  u64(v.size());
  bytes_.insert(bytes_.end(), v.begin(), v.end());
}

void SectionWriter::blob(const std::vector<std::uint8_t>& v) {
  u64(v.size());
  bytes_.insert(bytes_.end(), v.begin(), v.end());
}

void SectionReader::need(std::size_t count, const char* what) const {
  if (pos_ + count > section_.bytes.size() || pos_ + count < pos_) {
    throw std::invalid_argument("checkpoint section '" + section_.tag + "': truncated (need " +
                                std::to_string(count) + " bytes for " + what + " at offset " +
                                std::to_string(pos_) + ", have " +
                                std::to_string(section_.bytes.size() - pos_) + ")");
  }
}

std::uint8_t SectionReader::u8() {
  need(1, "u8");
  return section_.bytes[pos_++];
}

std::uint32_t SectionReader::u32() {
  need(4, "u32");
  const std::uint32_t v = get_u32(section_.bytes.data() + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t SectionReader::u64() {
  need(8, "u64");
  const std::uint64_t v = get_u64(section_.bytes.data() + pos_);
  pos_ += 8;
  return v;
}

double SectionReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string SectionReader::str() {
  const std::uint64_t size = u64();
  need(size, "string body");
  std::string v(reinterpret_cast<const char*>(section_.bytes.data() + pos_), size);
  pos_ += size;
  return v;
}

std::uint64_t SectionReader::count(std::size_t min_elem_bytes, const char* what) {
  const std::uint64_t n = u64();
  const std::uint64_t floor_bytes = min_elem_bytes > 0 ? min_elem_bytes : 1;
  if (n > remaining() / floor_bytes) {
    throw std::invalid_argument("checkpoint section '" + section_.tag + "': " + what + " count " +
                                std::to_string(n) + " overruns the section (" +
                                std::to_string(remaining()) + " bytes left, >= " +
                                std::to_string(floor_bytes) + " needed per element)");
  }
  return n;
}

std::vector<std::uint8_t> SectionReader::blob() {
  const std::uint64_t size = u64();
  need(size, "blob body");
  std::vector<std::uint8_t> v(section_.bytes.begin() + static_cast<std::ptrdiff_t>(pos_),
                              section_.bytes.begin() + static_cast<std::ptrdiff_t>(pos_ + size));
  pos_ += size;
  return v;
}

void SectionReader::finish() const {
  if (pos_ != section_.bytes.size()) {
    throw std::invalid_argument("checkpoint section '" + section_.tag + "': " +
                                std::to_string(section_.bytes.size() - pos_) +
                                " trailing bytes after the last field");
  }
}

}  // namespace altroute::snapshot
