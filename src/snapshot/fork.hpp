// Warm-state what-if forks: branch ONE mid-run checkpoint into K
// continuations that share an identical past and diverge only in their
// future -- different failure scenarios, different policies -- so every
// observed difference is attributable to the divergence, not to sampling
// noise (the common-random-number discipline extended across time).
//
// Each variant resumes scenario::run_scenario from the same checkpoint
// with its own scenario (whose prefix up to the capture point must match
// the capturing run -- validated by the runner) and its own policy object.
// A variant naming the SAME policy as the capturing run inherits its
// learning state; a different policy starts cold from the warmed network.
// See examples/what_if_fork.cpp for the intended study shape.
#pragma once

#include <string>
#include <vector>

#include "scenario/runner.hpp"
#include "snapshot/checkpoint.hpp"

namespace altroute::snapshot {

/// One continuation branch.
struct ForkVariant {
  /// Label carried through to the outcome (report axis).
  std::string name;
  /// The full scenario of this branch, INCLUDING the shared prefix the
  /// checkpoint already applied.  Events after the capture point may
  /// differ freely between variants.
  scenario::Scenario scenario;
  /// Policy instance for this branch.  Required, and must be a distinct
  /// object per variant: policies carry mutable learning state, and
  /// variants may run concurrently.
  loss::RoutingPolicy* policy{nullptr};
};

struct ForkOutcome {
  std::string name;
  scenario::ScenarioRunResult result;
};

struct ForkOptions {
  /// Engine options every branch runs under.  Must structurally match the
  /// capturing run (warmup, H, time_bins -- the runner validates).  The
  /// probe must be null: K branches cannot share one registry; attach
  /// observability by calling run_scenario directly instead.  Any
  /// checkpoint/resume fields are ignored -- fork_runs sets resume itself.
  scenario::ScenarioEngineOptions engine;
  /// Worker threads (1 = serial).  Branches are independent, so any value
  /// produces identical results in variant order.
  int threads{1};
};

/// Runs every variant to the horizon from the shared checkpoint; outcomes
/// are returned in variant order.  Throws std::invalid_argument on a null
/// variant policy, a non-null probe, threads < 1, or any runner-side
/// resume validation failure.
[[nodiscard]] std::vector<ForkOutcome> fork_runs(const net::Graph& graph,
                                                 const net::TrafficMatrix& traffic,
                                                 const sim::CallTrace& trace,
                                                 const ScenarioCheckpoint& ckpt,
                                                 const std::vector<ForkVariant>& variants,
                                                 const ForkOptions& options = {});

}  // namespace altroute::snapshot
