#include "snapshot/fork.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace altroute::snapshot {

std::vector<ForkOutcome> fork_runs(const net::Graph& graph, const net::TrafficMatrix& traffic,
                                   const sim::CallTrace& trace, const ScenarioCheckpoint& ckpt,
                                   const std::vector<ForkVariant>& variants,
                                   const ForkOptions& options) {
  if (options.threads < 1) throw std::invalid_argument("fork_runs: threads < 1");
  if (options.engine.probe != nullptr) {
    throw std::invalid_argument(
        "fork_runs: variants cannot share one probe; run run_scenario per branch for "
        "observability");
  }
  for (std::size_t v = 0; v < variants.size(); ++v) {
    if (variants[v].policy == nullptr) {
      throw std::invalid_argument("fork_runs: variant '" + variants[v].name +
                                  "' has no policy (each branch needs its own instance)");
    }
  }

  std::vector<ForkOutcome> outcomes(variants.size());
  const auto run_one = [&](std::size_t v) {
    scenario::ScenarioEngineOptions engine = options.engine;
    engine.resume = &ckpt;
    engine.checkpoints = nullptr;
    engine.checkpoint_at = -1.0;
    engine.checkpoint_every = 0.0;
    outcomes[v].name = variants[v].name;
    outcomes[v].result = scenario::run_scenario(graph, traffic, *variants[v].policy, trace,
                                               variants[v].scenario, engine);
  };

  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(options.threads), variants.size());
  if (workers <= 1) {
    for (std::size_t v = 0; v < variants.size(); ++v) run_one(v);
    return outcomes;
  }

  // Branches are independent and write disjoint slots; first failure wins.
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t v = next.fetch_add(1);
        if (v >= variants.size() || failed.load()) return;
        try {
          run_one(v);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!failed.exchange(true)) error = std::current_exception();
          return;
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  if (error) std::rethrow_exception(error);
  return outcomes;
}

}  // namespace altroute::snapshot
