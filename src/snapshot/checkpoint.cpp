#include "snapshot/checkpoint.hpp"

#include <stdexcept>
#include <tuple>
#include <utility>

namespace altroute::snapshot {

namespace {

// META kinds: every container file self-identifies, so loading a sweep
// carry file as a scenario checkpoint fails with a pointed message instead
// of a confusing section error.
constexpr const char* kKindCheckpoint = "scenario-checkpoint";
constexpr const char* kKindTaskResult = "sweep-task-result";
constexpr const char* kKindTaskCheckpoint = "sweep-task-checkpoint";

void put_i64_vec(SectionWriter& w, const std::vector<std::int64_t>& v) {
  w.u64(v.size());
  for (const std::int64_t x : v) w.i64(x);
}

// The obs registry's export type (long long) is distinct from int64_t on
// LP64; same wire format.
void put_ll_vec(SectionWriter& w, const std::vector<long long>& v) {
  w.u64(v.size());
  for (const long long x : v) w.i64(x);
}

std::vector<long long> get_ll_vec(SectionReader& r) {
  const std::uint64_t n = r.count(8, "i64 vector");
  std::vector<long long> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(r.i64());
  return v;
}

std::vector<std::int64_t> get_i64_vec(SectionReader& r) {
  const std::uint64_t n = r.count(8, "i64 vector");
  std::vector<std::int64_t> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(r.i64());
  return v;
}

void put_i32_vec(SectionWriter& w, const std::vector<std::int32_t>& v) {
  w.u64(v.size());
  for (const std::int32_t x : v) w.i32(x);
}

std::vector<std::int32_t> get_i32_vec(SectionReader& r) {
  const std::uint64_t n = r.count(4, "i32 vector");
  std::vector<std::int32_t> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(r.i32());
  return v;
}

void put_u32_vec(SectionWriter& w, const std::vector<std::uint32_t>& v) {
  w.u64(v.size());
  for (const std::uint32_t x : v) w.u32(x);
}

std::vector<std::uint32_t> get_u32_vec(SectionReader& r) {
  const std::uint64_t n = r.count(4, "u32 vector");
  std::vector<std::uint32_t> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(r.u32());
  return v;
}

void put_f64_vec(SectionWriter& w, const std::vector<double>& v) {
  w.u64(v.size());
  for (const double x : v) w.f64(x);
}

std::vector<double> get_f64_vec(SectionReader& r) {
  const std::uint64_t n = r.count(8, "f64 vector");
  std::vector<double> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(r.f64());
  return v;
}

void put_applied(SectionWriter& w, const std::vector<AppliedEventState>& v) {
  w.u64(v.size());
  for (const AppliedEventState& e : v) {
    w.f64(e.time);
    w.i32(e.kind);
    w.i32(e.links_changed);
    w.i64(e.calls_killed);
  }
}

std::vector<AppliedEventState> get_applied(SectionReader& r) {
  const std::uint64_t n = r.count(24, "applied-event");
  std::vector<AppliedEventState> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    AppliedEventState e;
    e.time = r.f64();
    e.kind = r.i32();
    e.links_changed = r.i32();
    e.calls_killed = r.i64();
    v.push_back(e);
  }
  return v;
}

void put_obs(SectionWriter& w, const ObsState& obs) {
  w.u8(obs.present);
  w.i32(obs.grid_cursor);
  put_ll_vec(w, obs.ints);
  put_f64_vec(w, obs.reals);
}

ObsState get_obs(SectionReader& r) {
  ObsState obs;
  obs.present = r.u8();
  obs.grid_cursor = r.i32();
  obs.ints = get_ll_vec(r);
  obs.reals = get_f64_vec(r);
  return obs;
}

void put_control(SectionWriter& w, const ControlState& ctrl) {
  w.u8(ctrl.present);
  w.f64(ctrl.epoch);
  w.i32(ctrl.estimator);
  w.f64(ctrl.window);
  w.f64(ctrl.weight);
  w.f64(ctrl.deadband);
  w.i32(ctrl.max_step);
  w.f64(ctrl.window_start);
  w.u64(ctrl.windows_done);
  w.u64(ctrl.observations);
  put_f64_vec(w, ctrl.pair_estimate);
  put_f64_vec(w, ctrl.pair_window_sum);
  put_f64_vec(w, ctrl.pair_hold_total);
  put_f64_vec(w, ctrl.link_lambda_ref);
  put_i32_vec(w, ctrl.reservation);
  w.u64(ctrl.epochs_done);
  w.u64(ctrl.retargets);
  w.u64(ctrl.holds);
}

ControlState get_control(SectionReader& r) {
  ControlState ctrl;
  ctrl.present = r.u8();
  ctrl.epoch = r.f64();
  ctrl.estimator = r.i32();
  ctrl.window = r.f64();
  ctrl.weight = r.f64();
  ctrl.deadband = r.f64();
  ctrl.max_step = r.i32();
  ctrl.window_start = r.f64();
  ctrl.windows_done = r.u64();
  ctrl.observations = r.u64();
  ctrl.pair_estimate = get_f64_vec(r);
  ctrl.pair_window_sum = get_f64_vec(r);
  ctrl.pair_hold_total = get_f64_vec(r);
  ctrl.link_lambda_ref = get_f64_vec(r);
  ctrl.reservation = get_i32_vec(r);
  ctrl.epochs_done = r.u64();
  ctrl.retargets = r.u64();
  ctrl.holds = r.u64();
  return ctrl;
}

void put_trace_records(SectionWriter& w, const std::vector<obs::TraceRecord>& records) {
  w.u64(records.size());
  for (const obs::TraceRecord& rec : records) {
    w.f64(rec.time);
    w.u32(static_cast<std::uint32_t>(rec.kind));
    w.i32(rec.src);
    w.i32(rec.dst);
    w.i32(rec.link);
    w.i32(rec.hops);
    w.i32(rec.units);
    w.u8(rec.alternate ? 1 : 0);
    w.f64(rec.hold);
    put_i32_vec(w, rec.links);
    put_i32_vec(w, rec.occ);
    w.i32(rec.alt_occupancy);
    w.str(rec.detail);
    w.i32(rec.links_changed);
    w.i64(rec.count);
    w.i32(rec.replication);
    w.i32(rec.policy);
  }
}

std::vector<obs::TraceRecord> get_trace_records(SectionReader& r) {
  const std::uint64_t n = r.count(8, "trace-record");
  std::vector<obs::TraceRecord> records;
  records.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    obs::TraceRecord rec;
    rec.time = r.f64();
    const std::uint32_t kind = r.u32();
    if (kind == 0 || (kind & (kind - 1)) != 0 || (kind & ~obs::kAllTraceKinds) != 0) {
      throw std::invalid_argument("checkpoint section 'TRCE': record " + std::to_string(i) +
                                  " has unknown trace kind bit " + std::to_string(kind));
    }
    rec.kind = static_cast<obs::TraceKind>(kind);
    rec.src = r.i32();
    rec.dst = r.i32();
    rec.link = r.i32();
    rec.hops = r.i32();
    rec.units = r.i32();
    rec.alternate = r.u8() != 0;
    rec.hold = r.f64();
    rec.links = get_i32_vec(r);
    rec.occ = get_i32_vec(r);
    rec.alt_occupancy = r.i32();
    rec.detail = r.str();
    rec.links_changed = r.i32();
    rec.count = r.i64();
    rec.replication = r.i32();
    rec.policy = r.i32();
    records.push_back(std::move(rec));
  }
  return records;
}

Section encode_meta(const char* kind, const std::string& fingerprint, std::uint64_t task) {
  SectionWriter w("META");
  w.str(kind);
  w.str(fingerprint);
  w.u64(task);
  return w.take();
}

/// Locates `tag` in `sections` or throws a pointed error naming the file.
const Section& find_section(const std::vector<Section>& sections, const std::string& name,
                            const char* tag) {
  for (const Section& s : sections) {
    if (s.tag == tag) return s;
  }
  throw std::invalid_argument("checkpoint '" + name + "': missing section '" +
                              std::string(tag) + "'");
}

/// Validates the META kind and returns (fingerprint, task).
std::pair<std::string, std::uint64_t> check_meta(const std::vector<Section>& sections,
                                                 const std::string& name,
                                                 const char* expected_kind) {
  SectionReader r(find_section(sections, name, "META"));
  const std::string kind = r.str();
  const std::string fingerprint = r.str();
  const std::uint64_t task = r.u64();
  r.finish();
  if (kind != expected_kind) {
    throw std::invalid_argument("checkpoint '" + name + "': file is a '" + kind + "', not a " +
                                expected_kind);
  }
  return {fingerprint, task};
}

std::vector<Section> encode_checkpoint_body(const ScenarioCheckpoint& c) {
  std::vector<Section> sections;
  {
    SectionWriter w("CONF");
    w.f64(c.checkpoint_at);
    w.f64(c.advanced_to);
    w.u64(c.next_call);
    w.u64(c.next_event);
    w.f64(c.traffic_factor);
    w.f64(c.horizon);
    w.f64(c.warmup);
    w.u64(c.policy_seed);
    w.i32(c.node_count);
    w.i32(c.link_count);
    w.u64(c.trace_calls);
    w.u64(c.scenario_events);
    w.u8(c.legacy_event_queue);
    w.i32(c.max_alt_hops);
    w.i32(c.time_bins);
    sections.push_back(w.take());
  }
  {
    SectionWriter w("GRPH");
    w.u64(c.link_enabled.size());
    for (const std::uint8_t e : c.link_enabled) w.u8(e);
    put_i32_vec(w, c.link_capacity);
    sections.push_back(w.take());
  }
  {
    SectionWriter w("NETS");
    put_i32_vec(w, c.occupancy);
    put_i32_vec(w, c.reservation);
    sections.push_back(w.take());
  }
  {
    SectionWriter w("RNGS");
    for (const std::uint64_t s : c.engine_rng) w.u64(s);
    sections.push_back(w.take());
  }
  {
    SectionWriter w("POLS");
    w.str(c.policy);
    w.blob(c.policy_state);
    sections.push_back(w.take());
  }
  {
    SectionWriter w("EVTQ");
    w.u64(c.departures.next_seq);
    w.u64(c.departures.entries.size());
    for (const QueueEntry& e : c.departures.entries) {
      w.f64(e.time);
      w.u64(e.seq);
      w.u64(e.payload);
    }
    sections.push_back(w.take());
  }
  {
    SectionWriter w("ARNA");
    put_u32_vec(w, c.arena.gens);
    put_u32_vec(w, c.arena.live_order);
    put_u32_vec(w, c.arena.free_order);
    w.u64(c.arena.calls.size());
    for (const CallState& call : c.arena.calls) {
      put_i32_vec(w, call.nodes);
      put_i32_vec(w, call.links);
      w.i32(call.units);
      w.u8(call.alternate);
    }
    sections.push_back(w.take());
  }
  {
    SectionWriter w("CNTR");
    w.i64(c.counters.offered);
    w.i64(c.counters.blocked);
    w.i64(c.counters.carried_primary);
    w.i64(c.counters.carried_alternate);
    put_i64_vec(w, c.counters.per_pair);
    put_i32_vec(w, c.counters.class_bandwidth);
    put_i64_vec(w, c.counters.class_offered);
    put_i64_vec(w, c.counters.class_blocked);
    put_i64_vec(w, c.counters.carried_by_hops);
    put_i64_vec(w, c.counters.bin_offered);
    put_i64_vec(w, c.counters.bin_blocked);
    w.i64(c.counters.dropped);
    put_applied(w, c.counters.applied);
    sections.push_back(w.take());
  }
  {
    SectionWriter w("OBSM");
    put_obs(w, c.obs);
    sections.push_back(w.take());
  }
  {
    SectionWriter w("MEMO");
    put_f64_vec(w, c.memo_lambda);
    put_i32_vec(w, c.memo_capacity);
    sections.push_back(w.take());
  }
  // CTRL is OPTIONAL: written only when the capturing run had the control
  // plane on, so control-off checkpoints stay byte-identical to the
  // pre-control format (and old files keep loading -- see ControlState).
  if (c.control.present != 0) {
    SectionWriter w("CTRL");
    put_control(w, c.control);
    sections.push_back(w.take());
  }
  return sections;
}

ScenarioCheckpoint decode_checkpoint_body(const std::vector<Section>& sections,
                                          const std::string& name) {
  ScenarioCheckpoint c;
  {
    SectionReader r(find_section(sections, name, "CONF"));
    c.checkpoint_at = r.f64();
    c.advanced_to = r.f64();
    c.next_call = r.u64();
    c.next_event = r.u64();
    c.traffic_factor = r.f64();
    c.horizon = r.f64();
    c.warmup = r.f64();
    c.policy_seed = r.u64();
    c.node_count = r.i32();
    c.link_count = r.i32();
    c.trace_calls = r.u64();
    c.scenario_events = r.u64();
    c.legacy_event_queue = r.u8();
    c.max_alt_hops = r.i32();
    c.time_bins = r.i32();
    r.finish();
  }
  {
    SectionReader r(find_section(sections, name, "GRPH"));
    const std::uint64_t n = r.count(1, "link flag");
    c.link_enabled.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) c.link_enabled.push_back(r.u8());
    c.link_capacity = get_i32_vec(r);
    r.finish();
  }
  {
    SectionReader r(find_section(sections, name, "NETS"));
    c.occupancy = get_i32_vec(r);
    c.reservation = get_i32_vec(r);
    r.finish();
  }
  {
    SectionReader r(find_section(sections, name, "RNGS"));
    for (std::uint64_t& s : c.engine_rng) s = r.u64();
    r.finish();
  }
  {
    SectionReader r(find_section(sections, name, "POLS"));
    c.policy = r.str();
    c.policy_state = r.blob();
    r.finish();
  }
  {
    SectionReader r(find_section(sections, name, "EVTQ"));
    c.departures.next_seq = r.u64();
    const std::uint64_t n = r.count(24, "queue entry");
    c.departures.entries.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      QueueEntry e;
      e.time = r.f64();
      e.seq = r.u64();
      e.payload = r.u64();
      c.departures.entries.push_back(e);
    }
    r.finish();
  }
  {
    SectionReader r(find_section(sections, name, "ARNA"));
    c.arena.gens = get_u32_vec(r);
    c.arena.live_order = get_u32_vec(r);
    c.arena.free_order = get_u32_vec(r);
    const std::uint64_t n = r.u64();
    if (n != c.arena.live_order.size()) {
      throw std::invalid_argument("checkpoint '" + name + "': section 'ARNA' holds " +
                                  std::to_string(n) + " calls for " +
                                  std::to_string(c.arena.live_order.size()) + " live slots");
    }
    c.arena.calls.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      CallState call;
      call.nodes = get_i32_vec(r);
      call.links = get_i32_vec(r);
      call.units = r.i32();
      call.alternate = r.u8();
      c.arena.calls.push_back(std::move(call));
    }
    r.finish();
  }
  {
    SectionReader r(find_section(sections, name, "CNTR"));
    c.counters.offered = r.i64();
    c.counters.blocked = r.i64();
    c.counters.carried_primary = r.i64();
    c.counters.carried_alternate = r.i64();
    c.counters.per_pair = get_i64_vec(r);
    c.counters.class_bandwidth = get_i32_vec(r);
    c.counters.class_offered = get_i64_vec(r);
    c.counters.class_blocked = get_i64_vec(r);
    c.counters.carried_by_hops = get_i64_vec(r);
    c.counters.bin_offered = get_i64_vec(r);
    c.counters.bin_blocked = get_i64_vec(r);
    c.counters.dropped = r.i64();
    c.counters.applied = get_applied(r);
    r.finish();
  }
  {
    SectionReader r(find_section(sections, name, "OBSM"));
    c.obs = get_obs(r);
    r.finish();
  }
  {
    SectionReader r(find_section(sections, name, "MEMO"));
    c.memo_lambda = get_f64_vec(r);
    c.memo_capacity = get_i32_vec(r);
    r.finish();
  }
  // CTRL is optional (absent from control-off checkpoints and from every
  // file captured before the control plane existed): look it up without
  // find_section's missing-section error.
  for (const Section& s : sections) {
    if (s.tag != "CTRL") continue;
    SectionReader r(s);
    c.control = get_control(r);
    r.finish();
    break;
  }
  return c;
}

void encode_slot(SectionWriter& w, const SweepSlotState& slot) {
  w.f64(slot.blocking);
  w.f64(slot.alternate_fraction);
  w.i64(slot.dropped);
  put_i64_vec(w, slot.pair_offered);
  put_i64_vec(w, slot.pair_blocked);
  put_i64_vec(w, slot.bin_offered);
  put_i64_vec(w, slot.bin_blocked);
  put_applied(w, slot.applied);
  put_obs(w, slot.obs);
  put_trace_records(w, slot.trace_records);
}

SweepSlotState decode_slot(SectionReader& r) {
  SweepSlotState slot;
  slot.blocking = r.f64();
  slot.alternate_fraction = r.f64();
  slot.dropped = r.i64();
  slot.pair_offered = get_i64_vec(r);
  slot.pair_blocked = get_i64_vec(r);
  slot.bin_offered = get_i64_vec(r);
  slot.bin_blocked = get_i64_vec(r);
  slot.applied = get_applied(r);
  slot.obs = get_obs(r);
  slot.trace_records = get_trace_records(r);
  return slot;
}

}  // namespace

void FileCheckpointSink::on_checkpoint(const ScenarioCheckpoint& ckpt) {
  save_checkpoint(path_, ckpt);
}

std::vector<Section> encode_checkpoint(const ScenarioCheckpoint& ckpt) {
  std::vector<Section> sections;
  sections.push_back(encode_meta(kKindCheckpoint, "", 0));
  for (Section& s : encode_checkpoint_body(ckpt)) sections.push_back(std::move(s));
  return sections;
}

ScenarioCheckpoint decode_checkpoint(const std::vector<Section>& sections,
                                     const std::string& name) {
  check_meta(sections, name, kKindCheckpoint);
  return decode_checkpoint_body(sections, name);
}

void save_checkpoint(const std::string& path, const ScenarioCheckpoint& ckpt) {
  write_container_file(path, encode_checkpoint(ckpt));
}

ScenarioCheckpoint load_checkpoint(const std::string& path) {
  return decode_checkpoint(read_container_file(path), path);
}

void save_sweep_task_result(const std::string& path, const SweepTaskResult& result) {
  std::vector<Section> sections;
  sections.push_back(encode_meta(kKindTaskResult, result.fingerprint, result.task));
  {
    SectionWriter w("SLTS");
    w.u64(result.slots.size());
    for (const SweepSlotState& slot : result.slots) encode_slot(w, slot);
    sections.push_back(w.take());
  }
  write_container_file(path, sections);
}

SweepTaskResult load_sweep_task_result(const std::string& path) {
  const std::vector<Section> sections = read_container_file(path);
  SweepTaskResult result;
  std::tie(result.fingerprint, result.task) = check_meta(sections, path, kKindTaskResult);
  SectionReader r(find_section(sections, path, "SLTS"));
  const std::uint64_t n = r.count(1, "sweep slot");
  result.slots.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) result.slots.push_back(decode_slot(r));
  r.finish();
  return result;
}

void save_sweep_task_checkpoint(const std::string& path, const SweepTaskCheckpoint& ckpt) {
  std::vector<Section> sections;
  sections.push_back(encode_meta(kKindTaskCheckpoint, ckpt.fingerprint, 0));
  for (Section& s : encode_checkpoint_body(ckpt.ckpt)) sections.push_back(std::move(s));
  {
    SectionWriter w("TRCE");
    put_trace_records(w, ckpt.trace_records);
    sections.push_back(w.take());
  }
  write_container_file(path, sections);
}

SweepTaskCheckpoint load_sweep_task_checkpoint(const std::string& path) {
  const std::vector<Section> sections = read_container_file(path);
  SweepTaskCheckpoint ckpt;
  ckpt.fingerprint = check_meta(sections, path, kKindTaskCheckpoint).first;
  ckpt.ckpt = decode_checkpoint_body(sections, path);
  SectionReader r(find_section(sections, path, "TRCE"));
  ckpt.trace_records = get_trace_records(r);
  r.finish();
  return ckpt;
}

}  // namespace altroute::snapshot
