// Versioned, sectioned binary container -- the on-disk envelope of every
// checkpoint artifact (scenario checkpoints, sweep carry files).
//
// Layout (all integers little-endian):
//
//   offset 0   8 bytes   magic "ALTRCKPT"
//   offset 8   u32       format version (kFormatVersion)
//   offset 12  u32       section count N
//   offset 16  N x 24    section table: 4-byte ASCII tag, u64 payload
//                        offset, u64 payload size, u32 CRC-32 (IEEE) of
//                        the payload bytes
//   then       payloads, tightly packed in table order; the file ends
//              exactly at the last payload's end (no trailing bytes)
//
// Readers validate EVERYTHING before handing a byte to a decoder -- magic,
// version, table bounds, tight packing, per-section CRC, trailing bytes --
// and reject with one pointed std::invalid_argument line naming the file
// and the first offending section, in the style of the scenario JSON
// parser (tests/data/ckpt_bad mirrors tests/data/scenario_bad).  Writes go
// through a temp file + rename, so a crash mid-write never leaves a
// half-checkpoint behind under the final name.
//
// SectionWriter / SectionReader are the primitive codecs: bounds-checked
// little-endian scalars, length-prefixed strings and blobs.  Decoders call
// finish() so trailing garbage inside a section is an error, not silence.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace altroute::snapshot {

inline constexpr std::uint32_t kFormatVersion = 1;

/// One named payload of a container file.
struct Section {
  std::string tag;  ///< exactly 4 ASCII characters, unique per file
  std::vector<std::uint8_t> bytes;
};

/// Section-table row as stored on disk (the inspector dumps these).
struct SectionInfo {
  std::string tag;
  std::uint64_t offset{0};
  std::uint64_t size{0};
  std::uint32_t crc{0};
};

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) of `size` bytes.
[[nodiscard]] std::uint32_t crc32(const std::uint8_t* data, std::size_t size);

/// Serializes sections into one container image (header + table + packed
/// payloads).  Throws std::invalid_argument on a tag that is not 4 ASCII
/// characters or a duplicate tag.
[[nodiscard]] std::vector<std::uint8_t> render_container(const std::vector<Section>& sections);

/// Parses and fully validates a container image.  `name` labels error
/// messages (usually the file path).  Throws std::invalid_argument with a
/// pointed one-line message on any malformation.
[[nodiscard]] std::vector<Section> parse_container(const std::vector<std::uint8_t>& bytes,
                                                   const std::string& name);

/// Header + section table only, CRCs verified (the inspector's dump view).
/// Validates exactly like parse_container.
[[nodiscard]] std::vector<SectionInfo> read_section_table(const std::vector<std::uint8_t>& bytes,
                                                          const std::string& name);

/// Atomic file write: renders, writes to `path` + ".tmp", renames over
/// `path`.  Throws std::runtime_error when the file cannot be written.
void write_container_file(const std::string& path, const std::vector<Section>& sections);

/// Reads and validates a container file (see parse_container).  Throws
/// std::invalid_argument on a missing/unreadable file or any malformation.
[[nodiscard]] std::vector<Section> read_container_file(const std::string& path);

/// Raw file bytes, for the inspector (same open error as read_container_file).
[[nodiscard]] std::vector<std::uint8_t> read_file_bytes(const std::string& path);

/// Appends little-endian primitives to one section payload.
class SectionWriter {
 public:
  explicit SectionWriter(std::string tag) : tag_(std::move(tag)) {}

  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  /// Doubles travel as their IEEE-754 bit pattern: bit-identical round-trip.
  void f64(double v);
  /// u64 length prefix + raw bytes.
  void str(std::string_view v);
  void blob(const std::vector<std::uint8_t>& v);

  [[nodiscard]] Section take() { return Section{std::move(tag_), std::move(bytes_)}; }

 private:
  std::string tag_;
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian reads over one section payload.  Every
/// error is "checkpoint section 'TAG': ..." -- decoders add no context.
class SectionReader {
 public:
  explicit SectionReader(const Section& section) : section_(section) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();
  [[nodiscard]] std::vector<std::uint8_t> blob();

  /// Reads a u64 element count and validates it against the bytes actually
  /// left in the section (each element occupies at least `min_elem_bytes`
  /// on the wire).  A forged count -- e.g. 2^60 links -- is rejected with a
  /// pointed error BEFORE any decoder reserves storage for it, instead of
  /// attempting a giant allocation.
  [[nodiscard]] std::uint64_t count(std::size_t min_elem_bytes, const char* what);

  /// Bytes not yet consumed.
  [[nodiscard]] std::size_t remaining() const { return section_.bytes.size() - pos_; }

  /// Throws when the section holds bytes past the last decoded field.
  void finish() const;

 private:
  void need(std::size_t count, const char* what) const;

  const Section& section_;
  std::size_t pos_{0};
};

}  // namespace altroute::snapshot
