// Complete mid-run simulation state of scenario::run_scenario, and the
// file formats built on the sectioned container (format.hpp).
//
// A ScenarioCheckpoint is captured at the top of the runner's main loop --
// after every departure/event with time <= the last processed arrival has
// applied, before the next arrival is routed -- and holds EVERYTHING the
// continuation depends on:
//
//   CONF  capture point (next trace call, pending-event cursor, advanced-to
//         time), run fingerprint (horizon, warmup, counts, engine choice)
//   GRPH  per-link enabled flag + capacity of the working graph (the route
//         table is NOT stored: build_min_hop_routes is deterministic in the
//         graph and H, so routes are rebuilt on resume)
//   NETS  loss::NetworkState SoA arrays (occupancy is stored for
//         validation; it is REBUILT by re-booking the in-flight calls)
//   RNGS  the engine's xoshiro256++ state (the common-random-numbers
//         stream: every primary pick after resume matches the straight run)
//   POLS  policy name + the policy's opaque learning-state blob
//         (RoutingPolicy::snapshot_state; empty for stateless policies)
//   EVTQ  departure-queue contents as the logical (time, seq, handle)
//         multiset plus the next sequence number -- pop order depends only
//         on (time, seq), so a checkpoint taken under the calendar queue
//         resumes bit-identically under the binary heap and vice versa
//   ARNA  the slab arena's exact slot layout (generations, live order,
//         free-list order) plus each live call's path/units/class, so
//         future handles and stale-handle detection replay exactly
//   CNTR  accumulated results: offered/blocked/carried, per-pair,
//         per-class (in insertion order -- class_of lookups depend on it),
//         hop census, time bins, dropped count, applied-event log
//   OBSM  accumulated obs metrics (flattened registry values) + the
//         occupancy-grid sampling cursor; absent when no probe is attached
//   MEMO  the Erlang memo's per-link (Lambda, C) keys, re-warmed on resume
//
// Restore validates structural compatibility (graph shape, trace length,
// horizon, scenario prefix) with pointed errors before touching any state.
// See DESIGN.md, "Checkpoint & fork".
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "snapshot/format.hpp"

namespace altroute::snapshot {

/// One pending departure: logical queue entry (payload = arena handle).
struct QueueEntry {
  double time{0.0};
  std::uint64_t seq{0};
  std::uint64_t payload{0};
};

/// Logical contents of a departure queue, engine-independent.
struct EventQueueState {
  std::uint64_t next_seq{0};
  std::vector<QueueEntry> entries;  ///< canonical order: ascending seq
};

/// One in-flight call (mirrors the runner's InFlight, with the path as a
/// node sequence -- link ids are re-resolved against the restored graph).
struct CallState {
  std::vector<std::int32_t> nodes;
  std::vector<std::int32_t> links;
  std::int32_t units{1};
  std::uint8_t alternate{0};
};

/// The slab arena's exact internal structure (sim::SlabArena::Layout) plus
/// the live calls in insertion (oldest-first) order.
struct ArenaState {
  std::vector<std::uint32_t> gens;        ///< per slot
  std::vector<std::uint32_t> live_order;  ///< oldest -> newest slot index
  std::vector<std::uint32_t> free_order;  ///< free-list pop order
  std::vector<CallState> calls;           ///< parallel to live_order
};

/// One applied scenario event (scenario::AppliedEvent, enum as int).
struct AppliedEventState {
  double time{0.0};
  std::int32_t kind{0};
  std::int32_t links_changed{0};
  std::int64_t calls_killed{0};
};

/// Accumulated run counters at the capture point.
struct CountersState {
  std::int64_t offered{0};
  std::int64_t blocked{0};
  std::int64_t carried_primary{0};
  std::int64_t carried_alternate{0};
  /// n*n rows of [offered, blocked, carried_primary, carried_alternate].
  std::vector<std::int64_t> per_pair;
  /// Per-bandwidth counters in INSERTION order (the runner's class_of
  /// probes linearly; restoring sorted would change later lookups).
  std::vector<std::int32_t> class_bandwidth;
  std::vector<std::int64_t> class_offered;
  std::vector<std::int64_t> class_blocked;
  std::vector<std::int64_t> carried_by_hops;
  std::vector<std::int64_t> bin_offered;
  std::vector<std::int64_t> bin_blocked;
  std::int64_t dropped{0};
  std::vector<AppliedEventState> applied;
};

/// Accumulated observability state (obs::MetricRegistry values flattened
/// by export_accumulated, plus the probe's occupancy-grid cursor).
struct ObsState {
  std::uint8_t present{0};
  std::int32_t grid_cursor{0};
  std::vector<long long> ints;  ///< MetricRegistry::export_accumulated order
  std::vector<double> reals;
};

/// Adaptive control plane state (control::EpochController memento plus a
/// config echo).  Serialized as the OPTIONAL section CTRL: written only
/// when present, and checkpoints without it -- including every checkpoint
/// captured before the control plane existed -- decode with present = 0,
/// so old files keep loading.
struct ControlState {
  std::uint8_t present{0};
  // Config echo (restore rejects a resume under different control knobs).
  double epoch{0.0};
  std::int32_t estimator{0};
  double window{0.0};
  double weight{0.0};
  double deadband{0.0};
  std::int32_t max_step{0};
  // control::ControlMemento fields.
  double window_start{0.0};
  std::uint64_t windows_done{0};
  std::uint64_t observations{0};
  std::vector<double> pair_estimate;
  std::vector<double> pair_window_sum;
  std::vector<double> pair_hold_total;
  std::vector<double> link_lambda_ref;
  std::vector<std::int32_t> reservation;
  std::uint64_t epochs_done{0};
  std::uint64_t retargets{0};
  std::uint64_t holds{0};
};

struct ScenarioCheckpoint {
  // CONF -- capture point & run fingerprint.
  double checkpoint_at{0.0};  ///< requested capture time (diagnostic)
  double advanced_to{-1.0};   ///< arrival of the last processed call (-1: none)
  std::uint64_t next_call{0};  ///< index of the first unprocessed trace call
  std::uint64_t next_event{0};  ///< pending-event cursor into scenario.events
  double traffic_factor{1.0};
  double horizon{0.0};
  double warmup{0.0};
  std::uint64_t policy_seed{0};
  std::int32_t node_count{0};
  std::int32_t link_count{0};
  std::uint64_t trace_calls{0};
  std::uint64_t scenario_events{0};
  std::uint8_t legacy_event_queue{0};  ///< engine at capture (informational)
  std::int32_t max_alt_hops{0};
  std::int32_t time_bins{0};

  // GRPH / NETS / RNGS / POLS.
  std::vector<std::uint8_t> link_enabled;
  std::vector<std::int32_t> link_capacity;
  std::vector<std::int32_t> occupancy;
  std::vector<std::int32_t> reservation;
  std::array<std::uint64_t, 4> engine_rng{};
  std::string policy;
  std::vector<std::uint8_t> policy_state;

  // EVTQ / ARNA / CNTR / OBSM / MEMO / CTRL.
  EventQueueState departures;
  ArenaState arena;
  CountersState counters;
  ObsState obs;
  std::vector<double> memo_lambda;
  std::vector<std::int32_t> memo_capacity;
  ControlState control;
};

/// Receives checkpoints captured by scenario::run_scenario.  The runner
/// calls on_checkpoint at each due capture point; the sink decides what to
/// do with the state (write a file, keep it in memory, bundle it with
/// sweep context).
class CheckpointSink {
 public:
  virtual ~CheckpointSink() = default;
  virtual void on_checkpoint(const ScenarioCheckpoint& ckpt) = 0;
};

/// Keeps every captured checkpoint in memory (fork studies, tests).
class BufferCheckpointSink final : public CheckpointSink {
 public:
  void on_checkpoint(const ScenarioCheckpoint& ckpt) override { captured.push_back(ckpt); }

  std::vector<ScenarioCheckpoint> captured;
};

/// Writes every captured checkpoint to one path (atomically, last wins --
/// the --checkpoint-at / periodic --checkpoint-out CLI sink).
class FileCheckpointSink final : public CheckpointSink {
 public:
  explicit FileCheckpointSink(std::string path) : path_(std::move(path)) {}

  void on_checkpoint(const ScenarioCheckpoint& ckpt) override;

 private:
  std::string path_;
};

// --- scenario checkpoint files ---------------------------------------------

/// Encodes the checkpoint as container sections (META + the ten state
/// sections above, in that order).
[[nodiscard]] std::vector<Section> encode_checkpoint(const ScenarioCheckpoint& ckpt);

/// Decodes container sections into a checkpoint.  `name` labels errors.
/// Throws std::invalid_argument on a missing/unknown section, a field-level
/// truncation, or a META kind that is not a scenario checkpoint.
[[nodiscard]] ScenarioCheckpoint decode_checkpoint(const std::vector<Section>& sections,
                                                   const std::string& name);

/// Atomic save / validated load of a checkpoint file.
void save_checkpoint(const std::string& path, const ScenarioCheckpoint& ckpt);
[[nodiscard]] ScenarioCheckpoint load_checkpoint(const std::string& path);

// --- sweep carry files ------------------------------------------------------
// Crash-tolerant sweeps (study::run_sweep / run_scenario_sweep with a
// checkpoint_dir) persist one "task result" file per completed
// (load point x seed) task, and scenario sweeps additionally one mid-run
// checkpoint per (seed, policy) at the periodic capture times.  Both carry
// a fingerprint of the sweep configuration; a resume run whose fingerprint
// differs rejects the file instead of silently mixing results.

/// One completed policy slot of a sweep task (superset of the load-sweep
/// and scenario-sweep slot fields; unused fields stay empty).
struct SweepSlotState {
  double blocking{0.0};
  double alternate_fraction{0.0};
  std::int64_t dropped{0};
  std::vector<std::int64_t> pair_offered;
  std::vector<std::int64_t> pair_blocked;
  std::vector<std::int64_t> bin_offered;
  std::vector<std::int64_t> bin_blocked;
  std::vector<AppliedEventState> applied;
  ObsState obs;
  std::vector<obs::TraceRecord> trace_records;
};

struct SweepTaskResult {
  std::string fingerprint;
  std::uint64_t task{0};
  std::vector<SweepSlotState> slots;  ///< one per policy, request order
};

void save_sweep_task_result(const std::string& path, const SweepTaskResult& result);
[[nodiscard]] SweepTaskResult load_sweep_task_result(const std::string& path);

/// Mid-run state of one scenario-sweep (seed, policy) run: the scenario
/// checkpoint plus the trace records buffered so far.
struct SweepTaskCheckpoint {
  std::string fingerprint;
  ScenarioCheckpoint ckpt;
  std::vector<obs::TraceRecord> trace_records;
};

void save_sweep_task_checkpoint(const std::string& path, const SweepTaskCheckpoint& ckpt);
[[nodiscard]] SweepTaskCheckpoint load_sweep_task_checkpoint(const std::string& path);

}  // namespace altroute::snapshot
