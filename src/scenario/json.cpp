#include "scenario/json.hpp"

#include <cstdlib>
#include <stdexcept>

namespace altroute::scenario {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

/// Containers may nest at most this deep.  Scenario documents are two
/// levels deep in practice; the bound exists so adversarial input like
/// "[[[[..." is rejected with a pointed error instead of exhausting the
/// call stack (the parser is recursive-descent).
constexpr int kMaxNestingDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("JSON error at byte " + std::to_string(pos_) + ": " + what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': {
        if (depth_ >= kMaxNestingDepth) fail("value nested too deeply");
        ++depth_;
        JsonValue v = parse_object();
        --depth_;
        return v;
      }
      case '[': {
        if (depth_ >= kMaxNestingDepth) fail("value nested too deeply");
        ++depth_;
        JsonValue v = parse_array();
        --depth_;
        return v;
      }
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        if (consume_literal("true")) {
          v.boolean = true;
        } else if (consume_literal("false")) {
          v.boolean = false;
        } else {
          fail("invalid literal");
        }
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("invalid literal");
        return JsonValue{};
      }
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      if (v.find(key) != nullptr) fail("duplicate object key '" + key + "'");
      skip_whitespace();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    if (peek() != '"') fail("expected string");
    ++pos_;
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("unescaped control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default: fail("invalid escape character");
      }
    }
  }

  void append_unicode_escape(std::string& out) {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') {
        code += static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        code += static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        code += static_cast<unsigned>(h - 'A' + 10);
      } else {
        fail("invalid hex digit in \\u escape");
      }
    }
    if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate \\u escapes not supported");
    // UTF-8 encode the BMP code point.
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    const auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) fail("invalid number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("digits required after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (digits() == 0) fail("digits required in exponent");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    // The token was validated above, so strtod cannot fail here; the copy
    // guarantees NUL termination for it.
    v.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(), nullptr);
    return v;
  }

  std::string_view text_;
  std::size_t pos_{0};
  int depth_{0};
};

}  // namespace

JsonValue parse_json(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace altroute::scenario
