#include "scenario/parse.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "scenario/json.hpp"

namespace altroute::scenario {

namespace {

[[noreturn]] void reject(std::size_t index, const std::string& why) {
  throw std::invalid_argument("scenario_from_json: event " + std::to_string(index) + " " + why);
}

double require_number(const JsonValue& event, std::size_t index, std::string_view key) {
  const JsonValue* v = event.find(key);
  if (v == nullptr || !v->is_number()) {
    reject(index, "needs a numeric '" + std::string(key) + "' field");
  }
  return v->number;
}

int require_int(const JsonValue& event, std::size_t index, std::string_view key) {
  const double d = require_number(event, index, key);
  const int i = static_cast<int>(d);
  if (static_cast<double>(i) != d) {
    reject(index, "field '" + std::string(key) + "' must be an integer");
  }
  return i;
}

void check_keys(const JsonValue& event, std::size_t index,
                std::initializer_list<std::string_view> allowed) {
  for (const auto& [key, value] : event.object) {
    bool known = false;
    for (const std::string_view a : allowed) {
      if (key == a) {
        known = true;
        break;
      }
    }
    if (!known) reject(index, "has unknown field '" + key + "'");
  }
}

}  // namespace

Scenario scenario_from_json(std::string_view json_text) {
  return scenario_from_value(parse_json(json_text));
}

Scenario scenario_from_value(const JsonValue& root) {
  if (!root.is_object()) {
    throw std::invalid_argument("scenario_from_json: top-level value must be an object");
  }
  for (const auto& [key, value] : root.object) {
    if (key != "name" && key != "events") {
      throw std::invalid_argument("scenario_from_json: unknown top-level field '" + key + "'");
    }
  }
  Scenario scenario;
  if (const JsonValue* name = root.find("name"); name != nullptr) {
    if (!name->is_string()) {
      throw std::invalid_argument("scenario_from_json: 'name' must be a string");
    }
    scenario.name = name->string;
  }
  const JsonValue* events = root.find("events");
  if (events == nullptr || !events->is_array()) {
    throw std::invalid_argument("scenario_from_json: required field 'events' must be an array");
  }

  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& ev = events->array[i];
    if (!ev.is_object()) reject(i, "must be an object");
    const JsonValue* type = ev.find("type");
    if (type == nullptr || !type->is_string()) reject(i, "needs a string 'type' field");
    const double time = require_number(ev, i, "time");
    const std::string& kind = type->string;
    if (kind == "link_fail" || kind == "link_repair") {
      check_keys(ev, i, {"type", "time", "a", "b"});
      const int a = require_int(ev, i, "a");
      const int b = require_int(ev, i, "b");
      scenario.events.push_back(kind == "link_fail" ? ScenarioEvent::link_fail(time, a, b)
                                                    : ScenarioEvent::link_repair(time, a, b));
    } else if (kind == "capacity_set") {
      check_keys(ev, i, {"type", "time", "a", "b", "capacity"});
      scenario.events.push_back(ScenarioEvent::capacity_set(time, require_int(ev, i, "a"),
                                                            require_int(ev, i, "b"),
                                                            require_int(ev, i, "capacity")));
    } else if (kind == "capacity_scale") {
      check_keys(ev, i, {"type", "time", "a", "b", "factor"});
      scenario.events.push_back(ScenarioEvent::capacity_scale(time, require_int(ev, i, "a"),
                                                              require_int(ev, i, "b"),
                                                              require_number(ev, i, "factor")));
    } else if (kind == "traffic_scale") {
      check_keys(ev, i, {"type", "time", "factor"});
      scenario.events.push_back(
          ScenarioEvent::traffic_scale(time, require_number(ev, i, "factor")));
    } else if (kind == "resolve_protection") {
      check_keys(ev, i, {"type", "time"});
      scenario.events.push_back(ScenarioEvent::resolve_protection(time));
    } else {
      reject(i, "has unknown type '" + kind + "'");
    }
  }
  scenario.validate();
  return scenario;
}

std::string scenario_to_json(const Scenario& scenario) {
  const auto number = [](double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return std::string(buf);
  };
  std::string out = "{";
  if (!scenario.name.empty()) {
    // Scenario names are plain identifiers in practice; escape the two
    // JSON-breaking characters so the writer is total anyway.
    std::string escaped;
    for (const char c : scenario.name) {
      if (c == '"' || c == '\\') escaped.push_back('\\');
      escaped.push_back(c);
    }
    out += "\"name\": \"" + escaped + "\", ";
  }
  out += "\"events\": [";
  for (std::size_t i = 0; i < scenario.events.size(); ++i) {
    const ScenarioEvent& e = scenario.events[i];
    if (i > 0) out += ", ";
    out += "\n  {\"time\": " + number(e.time) + ", \"type\": \"" +
           std::string(event_kind_name(e.kind)) + "\"";
    switch (e.kind) {
      case EventKind::kLinkFail:
      case EventKind::kLinkRepair:
        out += ", \"a\": " + std::to_string(e.node_a) + ", \"b\": " + std::to_string(e.node_b);
        break;
      case EventKind::kCapacitySet:
        out += ", \"a\": " + std::to_string(e.node_a) + ", \"b\": " + std::to_string(e.node_b) +
               ", \"capacity\": " + std::to_string(e.capacity);
        break;
      case EventKind::kCapacityScale:
        out += ", \"a\": " + std::to_string(e.node_a) + ", \"b\": " + std::to_string(e.node_b) +
               ", \"factor\": " + number(e.factor);
        break;
      case EventKind::kTrafficScale:
        out += ", \"factor\": " + number(e.factor);
        break;
      case EventKind::kResolveProtection:
        break;
    }
    out += "}";
  }
  out += scenario.events.empty() ? "]}" : "\n]}";
  return out;
}

Scenario load_scenario_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_scenario_file: cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) throw std::runtime_error("load_scenario_file: error reading '" + path + "'");
  return scenario_from_json(buffer.str());
}

}  // namespace altroute::scenario
