// Scenario-aware simulation runner: replays a call trace while applying a
// Scenario's network events at exact timestamps.
//
// This is the dynamic sibling of loss::run_trace.  The runner owns working
// copies of the graph and the admission state, merges three time-ordered
// streams -- call arrivals, call departures, scenario events -- and keeps
// the system consistent across events with calls in flight:
//
//  * link_fail:   both directions of the facility are disabled, every call
//                 whose booked path uses them is killed (its circuits on
//                 ALL its links are released immediately), and the route
//                 table is rebuilt from the surviving topology.
//  * link_repair: the facility is re-enabled and the route table rebuilt.
//  * capacity_set / capacity_scale: both directions get the new capacity
//                 (scale rounds to the nearest circuit, never below 1) in
//                 the graph and the admission state; when a shrink leaves a
//                 link over-full, in-flight calls using it are preempted
//                 newest-first until occupancy <= capacity, so occupancy
//                 can never exceed capacity at any admission decision.
//  * traffic_scale: records the offered-load multiplier now in force (the
//                 arrivals themselves are already shaped by
//                 make_scenario_trace; the multiplier feeds Eq. 15).
//  * resolve_protection: re-runs the paper's Eq. 15 rule per link against
//                 the current topology, capacities, routes, and scaled
//                 traffic, and installs the resulting r^k -- the local
//                 re-solve a deployed link would perform after a change.
//
// Route tables are rebuilt with state-independent min-hop primaries (the
// SI tier stays state-independent by construction); in-flight calls hold
// copies of their booked paths, so rebuilds never invalidate them.  The
// run is deterministic in (graph, traffic, trace, scenario, options):
// in-flight bookkeeping iterates in call-admission order, preemption kills
// newest-first, and ties between departures, events, and arrivals resolve
// in that fixed order.  See DESIGN.md, "Scenario engine".
#pragma once

#include <cstdint>
#include <vector>

#include "control/config.hpp"
#include "loss/engine.hpp"
#include "loss/policy.hpp"
#include "netgraph/graph.hpp"
#include "obs/probe.hpp"
#include "netgraph/traffic_matrix.hpp"
#include "scenario/scenario.hpp"
#include "sim/call_trace.hpp"

namespace altroute::snapshot {
struct ScenarioCheckpoint;
class CheckpointSink;
}  // namespace altroute::snapshot

namespace altroute::scenario {

struct ScenarioEngineOptions {
  /// Calls arriving before this time are routed but not counted.
  double warmup{10.0};
  /// Seed of the engine-side RNG stream (bifurcated-primary sampling);
  /// keep equal across policies for common random numbers.
  std::uint64_t policy_seed{0x5eed};
  /// When > 0, the measurement window [warmup, horizon) is split into this
  /// many equal bins and offered/blocked are counted per bin -- the
  /// transient (failure -> degradation -> recovery) time series.
  int time_bins{0};
  /// Maximum alternate hop count H used for route-table rebuilds and
  /// resolve_protection events.
  int max_alt_hops{6};
  /// Safety cap on alternate enumeration per ordered pair.
  std::size_t max_paths_per_pair{100000};
  /// Initial per-link state-protection levels (empty = all zero).
  std::vector<int> reservations;
  /// Re-run Eq. 15 after every topology/capacity event, as if every link
  /// re-solved locally on detecting the change (equivalent to an explicit
  /// resolve_protection after each such event).
  bool auto_resolve_protection{false};
  /// Route departures through the legacy binary-heap EventQueue instead of
  /// the calendar queue.  Results are bit-identical either way; the flag
  /// exists for the differential ctests and as an escape hatch.
  bool legacy_event_queue{false};
  /// Serve resolve_protection from the per-link Erlang memo tables
  /// (erlang::NetworkErlangMemo) instead of recomputing every inverse
  /// Erlang-B sequence from scratch.  The memo is keyed on each link's
  /// (Lambda, C) pair, so capacity/traffic events can never leave a stale
  /// r* behind; results are bit-identical either way (differential ctests
  /// and tests/test_rstar_invalidation.cpp enforce it).
  bool memoize_protection{true};
  /// TEST HOOK (src/check mutation tests only -- never set in real runs):
  /// when true, every call release "forgets" the last link of the call's
  /// booked path, leaking one circuit per departure.  The checker's
  /// occupancy oracles must catch this; it exists to prove they can.
  bool fault_leak_release{false};
  /// Observability hooks (metrics / structured tracing), nullptr = off.
  /// Call-level hooks and kill/preempt accounting fire post-warm-up only
  /// (matching the counters); event_applied and protection_resolved records
  /// cover the whole run.  See obs/probe.hpp.
  obs::Probe* probe{nullptr};
  /// When non-null, the run's deterministic operation counters are
  /// accumulated into this struct at the end of the run (tallies add,
  /// peaks max).  Kill/preempt tallies here cover the WHOLE run, not just
  /// the measured window -- they describe work done, not results.  See
  /// obs/prof/counters.hpp for the cross-configuration identity classes.
  obs::prof::EngineCounters* counters{nullptr};
  /// Adaptive control plane (src/control): when non-null and enabled()
  /// (epoch > 0), the runner feeds every call request to an online load
  /// estimator and, at every multiple of the epoch period ON THE EVENT
  /// TIMELINE, re-solves Eq. 15 from the ESTIMATED loads and installs the
  /// resulting protection vector.  Epochs interleave deterministically
  /// with departures and scenario events (departures, then events, then
  /// epochs on ties -- an epoch sees the post-event topology and routes).
  /// nullptr or a disabled config = the pre-control engine, bit for bit:
  /// the hot path pays one never-taken branch per call.
  const control::ControlConfig* control{nullptr};

  // --- checkpoint / restore (src/snapshot) ---------------------------------
  // Checkpoints are captured at CALL BOUNDARIES: the first arrival with
  // time >= the due time triggers a capture at the top of the main loop,
  // BEFORE that arrival's departures/events/routing apply -- so the saved
  // state is exactly "everything through the previous arrival".  A due time
  // past the last arrival (but <= horizon) captures once after the loop,
  // before the tail is drained.  Continuing from a checkpoint is
  // bit-identical to never having stopped (ctest-enforced), for either
  // event-queue engine and regardless of which engine captured.

  /// When >= 0 and `checkpoints` is set: capture one checkpoint at the
  /// first call boundary at or after this time.
  double checkpoint_at{-1.0};
  /// When > 0 and `checkpoints` is set: capture at every multiple of this
  /// period (dues falling between two arrivals collapse to one capture).
  double checkpoint_every{0.0};
  /// Receives captured checkpoints; nullptr disables checkpointing.
  snapshot::CheckpointSink* checkpoints{nullptr};
  /// Resume from this checkpoint instead of starting at t = 0.  The graph,
  /// trace, scenario, and options must structurally match the capturing
  /// run (validated with pointed errors); the SCENARIO may diverge after
  /// the capture point -- the what-if fork mechanism -- but its prefix up
  /// to the checkpoint must have applied identically.
  const snapshot::ScenarioCheckpoint* resume{nullptr};
};

/// What one applied event did to the running system.
struct AppliedEvent {
  double time{0.0};
  EventKind kind{EventKind::kResolveProtection};
  /// Directed links whose enabled flag / capacity actually changed.
  int links_changed{0};
  /// In-flight calls killed by this event (failure or preemption).
  long long calls_killed{0};
};

/// Per-link snapshot at the horizon (diagnostics and tests).
struct FinalLinkState {
  int capacity{0};
  int reservation{0};
  int occupancy{0};
  bool enabled{true};
};

/// Outcome of one scenario run.
struct ScenarioRunResult {
  /// The familiar counters (offered/blocked/carried, per-pair, per-class,
  /// per-bin, hop census).  Calls killed mid-flight stay counted as
  /// carried -- they were admitted; the kill is reported separately below.
  /// primary_losses_at_link and mean_link_occupancy are not collected by
  /// the scenario runner.
  loss::RunResult run;
  /// In-flight calls killed by events at or after the warm-up (the
  /// service-interruption count of the scenario).
  long long dropped{0};
  /// Log of every event applied (times <= horizon only), in order.
  std::vector<AppliedEvent> applied;
  /// Every link's capacity/reservation/occupancy/enabled at the horizon.
  /// Occupancy counts calls still in flight; it never exceeds capacity.
  std::vector<FinalLinkState> final_links;
  /// Adaptive-control summary (all zero when options.control is off).
  /// Cumulative across a capture/resume chain, like the run counters.
  std::uint64_t control_epochs{0};     ///< epochs fired
  std::uint64_t control_retargets{0};  ///< links whose r changed, summed over epochs
  std::uint64_t control_holds{0};      ///< links held by the deadband, summed over epochs
};

/// Replays `trace` against `policy` on a working copy of `graph`, applying
/// `scenario`'s events as described above.  `traffic` is the nominal
/// offered matrix in force at t = 0 (already load-scaled by the caller);
/// it is used only by resolve_protection.  The route table is built
/// internally (min-hop primaries, alternates up to options.max_alt_hops)
/// and rebuilt after every topology change.  Throws std::invalid_argument
/// on an invalid scenario, node indices outside the graph, events naming a
/// non-existent duplex facility, or a bad warmup/horizon.
[[nodiscard]] ScenarioRunResult run_scenario(const net::Graph& graph,
                                             const net::TrafficMatrix& traffic,
                                             loss::RoutingPolicy& policy,
                                             const sim::CallTrace& trace,
                                             const Scenario& scenario,
                                             const ScenarioEngineOptions& options = {});

}  // namespace altroute::scenario
