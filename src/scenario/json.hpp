// Minimal JSON parser for scenario descriptions.
//
// The repository deliberately carries no third-party dependencies beyond
// the test/bench toolchain, so scenario files are parsed by this small
// recursive-descent reader.  It supports the full JSON value grammar
// (objects, arrays, strings with escapes, numbers, booleans, null) and
// reports errors with a byte offset; it does NOT aim to be a general JSON
// library -- no serialization, no streaming, object keys kept in insertion
// order with duplicate keys rejected.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace altroute::scenario {

/// One parsed JSON value (a small tagged union over owned containers).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind{Kind::kNull};
  bool boolean{false};
  double number{0.0};
  std::string string;
  std::vector<JsonValue> array;
  /// Key/value pairs in document order (keys are unique).
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }

  /// Member lookup on an object; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
};

/// Parses one JSON document (trailing junk after the value is an error).
/// Throws std::invalid_argument with a byte offset on malformed input.
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace altroute::scenario
