#include "scenario/runner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>

#include "control/controller.hpp"
#include "core/protection.hpp"
#include "erlang/memo.hpp"
#include "routing/route_table.hpp"
#include "sim/calendar_queue.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/slab_arena.hpp"
#include "snapshot/checkpoint.hpp"

namespace altroute::scenario {

namespace {

/// One admitted call: a copy of its booked path (so route-table rebuilds
/// never invalidate it), its circuit width, and its admission class.
/// Stored in a SlabArena -- released slots keep the path's vector capacity,
/// so steady-state admission churn allocates nothing.
struct InFlight {
  routing::Path path;
  int units{1};
  bool alternate{false};
};

using Arena = sim::SlabArena<InFlight>;

bool path_uses_any(const routing::Path& path, const std::vector<net::LinkId>& links) {
  for (const net::LinkId id : path.links) {
    if (std::find(links.begin(), links.end(), id) != links.end()) return true;
  }
  return false;
}

bool path_uses(const routing::Path& path, net::LinkId link) {
  return std::find(path.links.begin(), path.links.end(), link) != path.links.end();
}

// The scenario replay loop, templated over the departure-queue
// implementation exactly like loss::run_trace_impl: calendar queue on the
// hot path, the legacy binary heap behind
// ScenarioEngineOptions::legacy_event_queue.  Both pop in identical
// (time, seq) order, so results are bit-identical (differential ctests).
template <typename DepartureQueue>
ScenarioRunResult run_scenario_impl(const net::Graph& graph, const net::TrafficMatrix& traffic,
                                    loss::RoutingPolicy& policy, const sim::CallTrace& trace,
                                    const Scenario& scenario,
                                    const ScenarioEngineOptions& options) {
  scenario.validate();
  if (graph.node_count() != traffic.size()) {
    throw std::invalid_argument("run_scenario: graph/traffic node count mismatch");
  }
  if (!(options.warmup >= 0.0) || options.warmup >= trace.horizon) {
    throw std::invalid_argument("run_scenario: warmup must lie in [0, horizon)");
  }
  if (options.max_alt_hops < 1) {
    throw std::invalid_argument("run_scenario: max_alt_hops must be >= 1");
  }
  for (const ScenarioEvent& e : scenario.events) {
    if (e.node_a >= graph.node_count() || e.node_b >= graph.node_count()) {
      throw std::invalid_argument("run_scenario: event names a node outside the graph");
    }
  }

  // Working copies: events mutate the graph/state, never the caller's.
  net::Graph g = graph;
  routing::RouteTable routes =
      routing::build_min_hop_routes(g, options.max_alt_hops, options.max_paths_per_pair);
  loss::NetworkState state(g);
  if (!options.reservations.empty()) state.set_reservations(options.reservations);
  // Same engine stream as loss::run_trace, so a no-event scenario replays
  // a trace with the exact bifurcated-primary picks of the static engine.
  sim::Rng engine_rng(options.policy_seed, 0xA17E72A7E);

  obs::Probe* const probe = options.probe;
  ALTROUTE_OBS_HOOK(probe, bind(static_cast<std::size_t>(g.link_count())));

  // Adaptive control plane: built only when enabled, so a control-off run
  // carries a null pointer and the never-taken branches below.
  const bool control_on = options.control != nullptr && options.control->enabled();
  std::unique_ptr<control::EpochController> ctrl;
  if (control_on) {
    ctrl = std::make_unique<control::EpochController>(
        *options.control, g.node_count(), static_cast<std::size_t>(g.link_count()),
        options.reservations);
    ALTROUTE_OBS_HOOK(probe, bind_control());
  }
  const auto occ_of = [&state](std::size_t k) {
    return static_cast<long long>(
        state.link(net::LinkId(static_cast<std::int32_t>(k))).occupancy());
  };

  ScenarioRunResult out;
  loss::RunResult& result = out.run;
  const int n = g.node_count();
  result.node_count = n;
  result.per_pair.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), {});

  if (options.time_bins > 0) {
    result.bin_offered.assign(static_cast<std::size_t>(options.time_bins), 0);
    result.bin_blocked.assign(static_cast<std::size_t>(options.time_bins), 0);
  }
  const double bin_width = options.time_bins > 0
                               ? (trace.horizon - options.warmup) / options.time_bins
                               : 0.0;
  const auto bin_of = [&](double t) {
    const auto bin = static_cast<std::size_t>((t - options.warmup) / bin_width);
    return std::min(bin, static_cast<std::size_t>(options.time_bins - 1));
  };

  // In-flight calls live in a slab arena whose insertion-order list is the
  // admission order: oldest()/next() iterate oldest-first (the kill order),
  // newest()/prev() newest-first (the preemption order) -- the same
  // deterministic orders the previous id-keyed ordered map provided.  The
  // departure queue carries the arena handle; a call killed by an event is
  // released from the arena, and its departure handle -- now stale by
  // generation -- pops as a no-op later.
  Arena in_flight;
  DepartureQueue departures;

  // Per-bandwidth counters: flat vector probed linearly (widths are few),
  // sorted by width at the end -- see loss::run_trace_impl.
  std::vector<loss::ClassCounters> per_class;
  const auto class_of = [&per_class](int bandwidth) -> loss::ClassCounters& {
    for (loss::ClassCounters& c : per_class) {
      if (c.bandwidth == bandwidth) return c;
    }
    per_class.emplace_back();
    per_class.back().bandwidth = bandwidth;
    return per_class.back();
  };
  double traffic_factor = 1.0;

  // Per-link alternate-class circuits in flight, maintained only when a
  // probe is attached (see loss::run_trace): reported on blocked-call
  // records for the Theorem-1 loss attribution.
  std::vector<int> alt_occ;
  if (probe != nullptr) alt_occ.assign(static_cast<std::size_t>(g.link_count()), 0);
  const auto adjust_alt_occ = [&](const InFlight& call, int sign) {
    if (probe == nullptr || !call.alternate) return;
    for (const net::LinkId id : call.path.links) alt_occ[id.index()] += sign * call.units;
  };
  // Post-booking occupancy along a path, for the admitted trace record
  // (the Theorem-1 audit's admission state s); built only under the hook.
  const auto booked_occ = [&state](const routing::Path& path) {
    std::vector<int> occ;
    occ.reserve(path.links.size());
    for (const net::LinkId id : path.links) occ.push_back(state.link(id).occupancy());
    return occ;
  };

  const auto release_call = [&](Arena::Handle h) {
    const InFlight& call = in_flight.value(h);
    if (options.fault_leak_release && !call.path.links.empty()) {
      // TEST HOOK: leak one circuit on the path's last link per release.
      routing::Path leaky = call.path;
      leaky.links.pop_back();
      state.release(leaky, call.units);
    } else {
      state.release(call.path, call.units);
    }
    adjust_alt_occ(call, -1);
    in_flight.release(h);
  };

  // Deterministic operation counters of THIS run; folded into
  // options.counters at the end (restore-path route rebuilds and memo
  // re-warms are part of the work and count like any other).
  obs::prof::EngineCounters run_counters;

  const auto rebuild_routes = [&] {
    routes = routing::build_min_hop_routes(g, options.max_alt_hops, options.max_paths_per_pair);
    ++run_counters.route_rebuilds;
  };

  // Eq.-15 re-solve.  The memoized path reuses each link's cached inverse
  // Erlang-B sequence whenever its (Lambda, C) key is unchanged -- only
  // links actually touched by a failure/capacity/traffic event recompute.
  // Both paths produce bit-identical reservation vectors.
  erlang::NetworkErlangMemo memo;
  const auto resolve_protection = [&](double t) {
    ++run_counters.protection_resolves;
    if (options.memoize_protection) {
      const std::vector<double> lambda =
          routing::primary_link_loads(g, routes, traffic.scaled(traffic_factor));
      const std::size_t rebuilt = memo.configure(lambda, core::link_capacities(g));
      run_counters.memo_misses += rebuilt;
      run_counters.memo_hits += memo.link_count() - rebuilt;
      state.set_reservations(memo.protection_levels(options.max_alt_hops));
    } else {
      state.set_reservations(core::protection_levels(g, routes, traffic.scaled(traffic_factor),
                                                     options.max_alt_hops));
    }
    ALTROUTE_OBS_HOOK(probe, on_protection_resolved(t, g.link_count()));
  };

  // The measured-window gate for kill/preempt accounting (matches dropped).
  const auto measured_event = [&](const ScenarioEvent& event) {
    return event.time >= options.warmup;
  };
  // First link of `path` belonging to the affected set (the failed/shrunk
  // directed link a kill is attributed to in metrics and trace records).
  const auto attributed_link = [](const routing::Path& path,
                                  const std::vector<net::LinkId>& links) {
    for (const net::LinkId id : path.links) {
      if (std::find(links.begin(), links.end(), id) != links.end()) {
        return static_cast<int>(id.index());
      }
    }
    return -1;
  };

  const auto apply_event = [&](const ScenarioEvent& event) {
    ALTROUTE_OBS_HOOK(probe, sample_occupancy_to(event.time, occ_of));
    AppliedEvent applied;
    applied.time = event.time;
    applied.kind = event.kind;
    switch (event.kind) {
      case EventKind::kLinkFail: {
        const net::NodeId a(event.node_a);
        const net::NodeId b(event.node_b);
        const std::vector<net::LinkId> affected = g.duplex_links(a, b);
        applied.links_changed = g.fail_duplex(a, b);
        // Kill every in-flight call routed over the failed facility,
        // oldest-first (the arena's insertion order).
        for (Arena::Handle h = in_flight.oldest(); h != Arena::kInvalid;) {
          const Arena::Handle following = in_flight.next(h);
          const InFlight& call = in_flight.value(h);
          if (path_uses_any(call.path, affected)) {
            if (probe != nullptr && measured_event(event)) {
              probe->on_killed(event.time, call.path, attributed_link(call.path, affected),
                               call.units);
            }
            release_call(h);
            ++applied.calls_killed;
            ++run_counters.calls_killed;
          }
          h = following;
        }
        if (applied.links_changed > 0) rebuild_routes();
        break;
      }
      case EventKind::kLinkRepair: {
        applied.links_changed = g.repair_duplex(net::NodeId(event.node_a),
                                                net::NodeId(event.node_b));
        if (applied.links_changed > 0) rebuild_routes();
        break;
      }
      case EventKind::kCapacitySet:
      case EventKind::kCapacityScale: {
        const std::vector<net::LinkId> affected =
            g.duplex_links(net::NodeId(event.node_a), net::NodeId(event.node_b));
        for (const net::LinkId id : affected) {
          const int old_capacity = g.link(id).capacity;
          const int new_capacity =
              event.kind == EventKind::kCapacitySet
                  ? event.capacity
                  : std::max(1, static_cast<int>(std::llround(old_capacity * event.factor)));
          if (new_capacity == old_capacity) continue;
          g.set_link_capacity(id, new_capacity);
          state.set_capacity(id, new_capacity);
          ++applied.links_changed;
          // Preempt newest-first until the link fits its new capacity, so
          // occupancy never exceeds capacity at an admission decision.
          while (state.link(id).occupancy() > new_capacity) {
            Arena::Handle victim = in_flight.newest();
            while (victim != Arena::kInvalid && !path_uses(in_flight.value(victim).path, id)) {
              victim = in_flight.prev(victim);
            }
            if (victim == Arena::kInvalid) {
              throw std::logic_error("run_scenario: occupied link with no in-flight call");
            }
            if (probe != nullptr && measured_event(event)) {
              probe->on_preempted(event.time, in_flight.value(victim).path,
                                  static_cast<int>(id.index()), in_flight.value(victim).units);
            }
            release_call(victim);
            ++applied.calls_killed;
            ++run_counters.preemptions;
          }
        }
        break;
      }
      case EventKind::kTrafficScale:
        traffic_factor = event.factor;
        break;
      case EventKind::kResolveProtection:
        resolve_protection(event.time);
        break;
    }
    if (options.auto_resolve_protection &&
        (event.kind == EventKind::kLinkFail || event.kind == EventKind::kLinkRepair ||
         event.kind == EventKind::kCapacitySet || event.kind == EventKind::kCapacityScale)) {
      resolve_protection(event.time);
    }
    if (event.time >= options.warmup) out.dropped += applied.calls_killed;
    ALTROUTE_OBS_HOOK(probe, on_event_applied(event.time, event_kind_name(event.kind),
                                              applied.links_changed, applied.calls_killed));
    out.applied.push_back(applied);
  };

  // Control epoch at time t: re-solve Eq. 15 from the estimated loads and
  // install the resulting protection vector.  Runs strictly on the event
  // timeline; the outcome is recorded (trace + counters) so the checker
  // can re-derive r* from recorded state alone.
  const auto apply_epoch = [&](double t) {
    const control::EpochController::Outcome outcome =
        ctrl->run_epoch(t, g, routes, options.max_alt_hops);
    state.set_reservations(outcome.reservation);
    ++run_counters.control_epochs;
    run_counters.control_retargets += static_cast<std::uint64_t>(outcome.links_changed);
    run_counters.control_holds += static_cast<std::uint64_t>(outcome.links_held);
    if (probe != nullptr) {
      // Estimator audit (cold path, metrics only): sum over links of
      // |effective - true| offered load, the truth being what an
      // oracle-fed resolve_protection would use at this instant.
      double est_abs_error = 0.0;
      if (probe->metrics() != nullptr) {
        const std::vector<double> truth =
            routing::primary_link_loads(g, routes, traffic.scaled(traffic_factor));
        for (std::size_t k = 0; k < truth.size(); ++k) {
          est_abs_error += std::abs(outcome.lambda_eff[k] - truth[k]);
        }
      }
      probe->on_control_epoch(t, static_cast<long long>(ctrl->epochs_done()),
                              outcome.links_changed, outcome.links_held, outcome.reservation,
                              outcome.capacity, outcome.lambda_eff, est_abs_error);
    }
  };

  // Advances the system to time t: departures, scenario events, and
  // control epochs with time <= t apply in time order; ties resolve
  // departures first (a freed circuit is visible to an event at the same
  // instant, mirroring the static engine's departure-before-arrival rule),
  // then scenario events, then epochs (an epoch sees the post-event
  // topology, routes, and capacities -- fail/repair at the same instant
  // are already in force when the controller re-solves).
  std::size_t next_event = 0;
  const auto advance_to = [&](double t) {
    constexpr double kNever = std::numeric_limits<double>::infinity();
    for (;;) {
      const bool dep_due = !departures.empty() && departures.next_time() <= t;
      const bool event_due =
          next_event < scenario.events.size() && scenario.events[next_event].time <= t;
      const double epoch_time = control_on ? ctrl->next_epoch_time() : kNever;
      const bool epoch_due = epoch_time <= t;
      if (dep_due &&
          (!event_due || departures.next_time() <= scenario.events[next_event].time) &&
          (!epoch_due || departures.next_time() <= epoch_time)) {
        const auto [time, h] = departures.pop();
        if (in_flight.alive(h)) {  // killed calls: stale handle, no-op
          ALTROUTE_OBS_HOOK(probe, sample_occupancy_to(time, occ_of));
          release_call(h);
        }
      } else if (event_due && (!epoch_due || scenario.events[next_event].time <= epoch_time)) {
        apply_event(scenario.events[next_event]);
        ++next_event;
      } else if (epoch_due) {
        apply_epoch(epoch_time);
      } else {
        break;
      }
    }
  };

  // --- checkpoint capture ---------------------------------------------------
  // Snapshots the COMPLETE run state as of the previous arrival: the
  // working graph and admission state, the engine's RNG stream, the
  // policy's learning state, the departure queue as a logical (time, seq)
  // multiset, the arena's exact slot layout with the in-flight calls, the
  // accumulated counters, the obs registry values, and the Erlang memo
  // keys.  See snapshot/checkpoint.hpp for section-by-section rationale.
  const auto capture = [&](double due, std::size_t next_call) {
    snapshot::ScenarioCheckpoint ck;
    ck.checkpoint_at = due;
    ck.advanced_to = next_call > 0 ? trace.calls[next_call - 1].arrival : -1.0;
    ck.next_call = next_call;
    ck.next_event = next_event;
    ck.traffic_factor = traffic_factor;
    ck.horizon = trace.horizon;
    ck.warmup = options.warmup;
    ck.policy_seed = options.policy_seed;
    ck.node_count = n;
    ck.link_count = g.link_count();
    ck.trace_calls = trace.calls.size();
    ck.scenario_events = scenario.events.size();
    ck.legacy_event_queue = options.legacy_event_queue ? 1 : 0;
    ck.max_alt_hops = options.max_alt_hops;
    ck.time_bins = options.time_bins;
    for (int k = 0; k < g.link_count(); ++k) {
      const net::LinkId id(k);
      ck.link_enabled.push_back(g.link(id).enabled ? 1 : 0);
      ck.link_capacity.push_back(g.link(id).capacity);
      const auto link = state.link(id);
      ck.occupancy.push_back(link.occupancy());
      ck.reservation.push_back(link.reservation());
    }
    ck.engine_rng = engine_rng.state();
    ck.policy = std::string(policy.name());
    ck.policy_state = policy.snapshot_state();
    ck.departures.next_seq = departures.next_seq();
    departures.visit([&](double time, std::uint64_t seq, Arena::Handle h) {
      ck.departures.entries.push_back(snapshot::QueueEntry{time, seq, h});
    });
    std::sort(ck.departures.entries.begin(), ck.departures.entries.end(),
              [](const snapshot::QueueEntry& a, const snapshot::QueueEntry& b) {
                return a.seq < b.seq;
              });
    const Arena::Layout layout = in_flight.layout();
    ck.arena.gens = layout.gens;
    ck.arena.live_order = layout.live_order;
    ck.arena.free_order = layout.free_order;
    for (Arena::Handle h = in_flight.oldest(); h != Arena::kInvalid; h = in_flight.next(h)) {
      const InFlight& call = in_flight.value(h);
      snapshot::CallState cs;
      cs.nodes.reserve(call.path.nodes.size());
      for (const net::NodeId node : call.path.nodes) {
        cs.nodes.push_back(static_cast<std::int32_t>(node.index()));
      }
      cs.links.reserve(call.path.links.size());
      for (const net::LinkId link : call.path.links) {
        cs.links.push_back(static_cast<std::int32_t>(link.index()));
      }
      cs.units = call.units;
      cs.alternate = call.alternate ? 1 : 0;
      ck.arena.calls.push_back(std::move(cs));
    }
    snapshot::CountersState& c = ck.counters;
    c.offered = result.offered;
    c.blocked = result.blocked;
    c.carried_primary = result.carried_primary;
    c.carried_alternate = result.carried_alternate;
    c.per_pair.reserve(result.per_pair.size() * 4);
    for (const loss::PairCounters& pair : result.per_pair) {
      c.per_pair.push_back(pair.offered);
      c.per_pair.push_back(pair.blocked);
      c.per_pair.push_back(pair.carried_primary);
      c.per_pair.push_back(pair.carried_alternate);
    }
    for (const loss::ClassCounters& cls : per_class) {
      c.class_bandwidth.push_back(cls.bandwidth);
      c.class_offered.push_back(cls.offered);
      c.class_blocked.push_back(cls.blocked);
    }
    c.carried_by_hops.assign(result.carried_by_hops.begin(), result.carried_by_hops.end());
    c.bin_offered.assign(result.bin_offered.begin(), result.bin_offered.end());
    c.bin_blocked.assign(result.bin_blocked.begin(), result.bin_blocked.end());
    c.dropped = out.dropped;
    for (const AppliedEvent& e : out.applied) {
      c.applied.push_back(snapshot::AppliedEventState{
          e.time, static_cast<std::int32_t>(e.kind), e.links_changed, e.calls_killed});
    }
    if (probe != nullptr && probe->metrics() != nullptr) {
      ck.obs.present = 1;
      ck.obs.grid_cursor = probe->grid_cursor();
      probe->metrics()->export_accumulated(ck.obs.ints, ck.obs.reals);
    }
    for (std::size_t k = 0; k < memo.link_count(); ++k) {
      ck.memo_lambda.push_back(memo.link(k).lambda());
      ck.memo_capacity.push_back(memo.link(k).capacity());
    }
    if (control_on) {
      snapshot::ControlState& cs = ck.control;
      cs.present = 1;
      // Config echo: a resume under a different --control spec must be
      // rejected, not silently re-parameterized (validated on restore).
      const control::ControlConfig& cc = ctrl->config();
      cs.epoch = cc.epoch;
      cs.estimator = static_cast<std::int32_t>(cc.estimator);
      cs.window = cc.window;
      cs.weight = cc.weight;
      cs.deadband = cc.deadband;
      cs.max_step = cc.max_step;
      control::ControlMemento m = ctrl->save();
      cs.window_start = m.window_start;
      cs.windows_done = m.windows_done;
      cs.observations = m.observations;
      cs.pair_estimate = std::move(m.pair_estimate);
      cs.pair_window_sum = std::move(m.pair_window_sum);
      cs.pair_hold_total = std::move(m.pair_hold_total);
      cs.link_lambda_ref = std::move(m.link_lambda_ref);
      cs.reservation = std::move(m.reservation);
      cs.epochs_done = m.epochs_done;
      cs.retargets = m.retargets;
      cs.holds = m.holds;
    }
    options.checkpoints->on_checkpoint(ck);
  };

  // --- restore --------------------------------------------------------------
  std::size_t start_call = 0;
  if (options.resume != nullptr) {
    const snapshot::ScenarioCheckpoint& ck = *options.resume;
    const auto fail = [](const std::string& what) {
      throw std::invalid_argument("run_scenario: resume checkpoint " + what);
    };
    const auto check_count = [&](long long got, long long want, const char* what) {
      if (got != want) {
        fail(std::string("was captured with ") + std::to_string(got) + " " + what +
             ", this run has " + std::to_string(want));
      }
    };
    check_count(ck.node_count, n, "nodes");
    check_count(ck.link_count, g.link_count(), "links");
    check_count(static_cast<long long>(ck.trace_calls),
                static_cast<long long>(trace.calls.size()), "trace calls");
    check_count(ck.max_alt_hops, options.max_alt_hops, "max alternate hops (H)");
    check_count(ck.time_bins, options.time_bins, "time bins");
    if (ck.horizon != trace.horizon) {
      fail("was captured with horizon " + std::to_string(ck.horizon) + ", this run has " +
           std::to_string(trace.horizon));
    }
    if (ck.warmup != options.warmup) {
      fail("was captured with warmup " + std::to_string(ck.warmup) + ", this run has " +
           std::to_string(options.warmup));
    }
    if (ck.next_call > trace.calls.size()) {
      fail("points past the trace (next call " + std::to_string(ck.next_call) + " of " +
           std::to_string(trace.calls.size()) + ")");
    }
    const auto links = static_cast<std::size_t>(g.link_count());
    if (ck.link_enabled.size() != links || ck.link_capacity.size() != links ||
        ck.occupancy.size() != links || ck.reservation.size() != links) {
      fail("link vectors do not match the link count");
    }
    if (ck.counters.per_pair.size() !=
        static_cast<std::size_t>(n) * static_cast<std::size_t>(n) * 4) {
      fail("per-pair counters do not match the node count");
    }
    // The resume scenario may DIVERGE after the capture point (the what-if
    // fork), but its prefix must have applied identically: exactly the
    // events with time <= the restored clock must already be behind us.
    std::size_t due_events = 0;
    for (const ScenarioEvent& e : scenario.events) {
      if (e.time <= ck.advanced_to) ++due_events;
    }
    if (due_events != ck.next_event) {
      fail("applied " + std::to_string(ck.next_event) +
           " scenario events, but this scenario has " + std::to_string(due_events) +
           " events at or before the restored clock t=" + std::to_string(ck.advanced_to) +
           " -- the scenario diverges before the checkpoint");
    }
    const bool have_metrics = probe != nullptr && probe->metrics() != nullptr;
    if (ck.obs.present != 0 && !have_metrics) {
      fail("carries observability state but this run has no metric registry attached");
    }
    if (ck.obs.present == 0 && have_metrics) {
      fail("carries no observability state but this run has a metric registry attached");
    }
    // Control plane: present in the checkpoint iff enabled in this run,
    // with the exact same knobs.  Old checkpoints (captured before the
    // control plane existed) decode with present = 0 and resume fine in a
    // control-off run.
    if (ck.control.present != 0 && !control_on) {
      fail("carries adaptive-control state but this run does not enable --control");
    }
    if (ck.control.present == 0 && control_on) {
      fail("carries no adaptive-control state but this run enables --control");
    }
    if (control_on) {
      const control::ControlConfig& cc = ctrl->config();
      if (ck.control.epoch != cc.epoch ||
          ck.control.estimator != static_cast<std::int32_t>(cc.estimator) ||
          ck.control.window != cc.window || ck.control.weight != cc.weight ||
          ck.control.deadband != cc.deadband || ck.control.max_step != cc.max_step) {
        fail("was captured under a different --control spec (epoch/estimator/window/"
             "weight/deadband/max-step must match the capturing run)");
      }
      // The control clock is derived: exactly the epochs k * E <= the
      // restored simulation clock must already have fired.
      std::uint64_t due_epochs = 0;
      if (ck.advanced_to >= cc.epoch) {
        due_epochs = static_cast<std::uint64_t>(std::floor(ck.advanced_to / cc.epoch));
        // Guard the floor against representation: k * E <= t is authoritative.
        while (static_cast<double>(due_epochs + 1) * cc.epoch <= ck.advanced_to) ++due_epochs;
        while (due_epochs > 0 && static_cast<double>(due_epochs) * cc.epoch > ck.advanced_to) {
          --due_epochs;
        }
      }
      if (ck.control.epochs_done != due_epochs) {
        fail("recorded " + std::to_string(ck.control.epochs_done) +
             " control epochs, but " + std::to_string(due_epochs) +
             " fall at or before the restored clock t=" + std::to_string(ck.advanced_to) +
             " -- the control clock is inconsistent");
      }
    }

    // Graph + admission state, then routes from the restored topology.
    for (std::size_t k = 0; k < links; ++k) {
      const net::LinkId id(static_cast<std::int32_t>(k));
      g.set_link_enabled(id, ck.link_enabled[k] != 0);
      if (g.link(id).capacity != ck.link_capacity[k]) {
        g.set_link_capacity(id, ck.link_capacity[k]);
        state.set_capacity(id, ck.link_capacity[k]);
      }
    }
    rebuild_routes();
    state.set_reservations(
        std::vector<int>(ck.reservation.begin(), ck.reservation.end()));

    // Arena layout, then the in-flight calls re-booked oldest-first -- the
    // occupancy is REBUILT, not assigned, and then validated against the
    // stored vector so a corrupted call list cannot restore silently.
    Arena::Layout layout;
    layout.gens = ck.arena.gens;
    layout.live_order = ck.arena.live_order;
    layout.free_order = ck.arena.free_order;
    in_flight.restore_layout(layout);
    std::size_t ci = 0;
    for (Arena::Handle h = in_flight.oldest(); h != Arena::kInvalid;
         h = in_flight.next(h), ++ci) {
      const snapshot::CallState& cs = ck.arena.calls[ci];
      InFlight& rec = in_flight.value(h);
      rec.path.nodes.clear();
      for (const std::int32_t node : cs.nodes) rec.path.nodes.emplace_back(node);
      rec.path.links.clear();
      for (const std::int32_t link : cs.links) {
        if (link < 0 || link >= g.link_count()) {
          fail("in-flight call #" + std::to_string(ci) + " names link " +
               std::to_string(link) + " outside the graph");
        }
        rec.path.links.emplace_back(link);
      }
      rec.units = cs.units;
      rec.alternate = cs.alternate != 0;
      state.book(rec.path, rec.units);
      adjust_alt_occ(rec, +1);
    }
    for (std::size_t k = 0; k < links; ++k) {
      const int occ = state.link(net::LinkId(static_cast<std::int32_t>(k))).occupancy();
      if (occ != ck.occupancy[k]) {
        fail("occupancy mismatch on link " + std::to_string(k) + " (re-booked " +
             std::to_string(occ) + ", stored " + std::to_string(ck.occupancy[k]) +
             ") -- the in-flight call list is inconsistent");
      }
    }

    // Departure queue: logical entries re-inserted under their original
    // sequence numbers (FIFO tie groups keep their order in EITHER engine).
    for (const snapshot::QueueEntry& e : ck.departures.entries) {
      departures.restore_entry(e.time, e.seq, e.payload);
    }
    departures.set_next_seq(ck.departures.next_seq);

    engine_rng.set_state(ck.engine_rng);
    // The policy's learning state transfers only to the same policy; a
    // DIFFERENT policy starts cold from the warmed network (the policy-fork
    // study).  A same-named policy with a mismatched shape still fails
    // pointedly inside restore_state.
    if (ck.policy == policy.name()) {
      policy.restore_state(ck.policy_state);
    }

    // Accumulated counters.
    const snapshot::CountersState& c = ck.counters;
    result.offered = c.offered;
    result.blocked = c.blocked;
    result.carried_primary = c.carried_primary;
    result.carried_alternate = c.carried_alternate;
    for (std::size_t q = 0; q < result.per_pair.size(); ++q) {
      loss::PairCounters& pair = result.per_pair[q];
      pair.offered = c.per_pair[q * 4 + 0];
      pair.blocked = c.per_pair[q * 4 + 1];
      pair.carried_primary = c.per_pair[q * 4 + 2];
      pair.carried_alternate = c.per_pair[q * 4 + 3];
    }
    for (std::size_t q = 0; q < c.class_bandwidth.size(); ++q) {
      loss::ClassCounters cls;
      cls.bandwidth = c.class_bandwidth[q];
      cls.offered = c.class_offered[q];
      cls.blocked = c.class_blocked[q];
      per_class.push_back(cls);
    }
    result.carried_by_hops.assign(c.carried_by_hops.begin(), c.carried_by_hops.end());
    if (options.time_bins > 0) {
      if (c.bin_offered.size() != result.bin_offered.size() ||
          c.bin_blocked.size() != result.bin_blocked.size()) {
        fail("time-bin counters do not match the configured bin count");
      }
      result.bin_offered.assign(c.bin_offered.begin(), c.bin_offered.end());
      result.bin_blocked.assign(c.bin_blocked.begin(), c.bin_blocked.end());
    }
    out.dropped = c.dropped;
    for (const snapshot::AppliedEventState& e : c.applied) {
      if (e.kind < 0 || e.kind > static_cast<std::int32_t>(EventKind::kResolveProtection)) {
        fail("applied-event log names unknown event kind " + std::to_string(e.kind));
      }
      out.applied.push_back(AppliedEvent{e.time, static_cast<EventKind>(e.kind),
                                         e.links_changed, e.calls_killed});
    }

    if (ck.obs.present != 0) {
      probe->metrics()->import_accumulated(ck.obs.ints, ck.obs.reals);
      probe->set_grid_cursor(ck.obs.grid_cursor);
    }
    // Re-warm the Erlang memo from the stored keys; the tables themselves
    // are derived state, recomputed bit-identically from (Lambda, C).
    if (!ck.memo_lambda.empty()) {
      memo.configure(ck.memo_lambda,
                     std::vector<int>(ck.memo_capacity.begin(), ck.memo_capacity.end()));
    }
    if (control_on) {
      control::ControlMemento m;
      m.window_start = ck.control.window_start;
      m.windows_done = ck.control.windows_done;
      m.observations = ck.control.observations;
      m.pair_estimate = ck.control.pair_estimate;
      m.pair_window_sum = ck.control.pair_window_sum;
      m.pair_hold_total = ck.control.pair_hold_total;
      m.link_lambda_ref = ck.control.link_lambda_ref;
      m.reservation = ck.control.reservation;
      m.epochs_done = ck.control.epochs_done;
      m.retargets = ck.control.retargets;
      m.holds = ck.control.holds;
      try {
        ctrl->load(m);
      } catch (const std::invalid_argument& e) {
        fail(std::string("control state rejected: ") + e.what());
      }
    }

    traffic_factor = ck.traffic_factor;
    next_event = ck.next_event;
    start_call = ck.next_call;
  }

  // --- due-time bookkeeping for captures ------------------------------------
  const bool single_due = options.checkpoints != nullptr && options.checkpoint_at >= 0.0;
  const bool periodic = options.checkpoints != nullptr && options.checkpoint_every > 0.0;
  bool single_taken = false;
  double next_periodic =
      periodic ? options.checkpoint_every : std::numeric_limits<double>::infinity();
  if (options.resume != nullptr) {
    // Dues at or before the restored clock belong to the previous leg.
    if (single_due && options.checkpoint_at <= options.resume->advanced_to) {
      single_taken = true;
    }
    while (next_periodic <= options.resume->advanced_to) {
      next_periodic += options.checkpoint_every;
    }
  }

  for (std::size_t call_index = start_call; call_index < trace.calls.size(); ++call_index) {
    const sim::CallRecord& call = trace.calls[call_index];
    if (single_due && !single_taken && call.arrival >= options.checkpoint_at) {
      capture(options.checkpoint_at, call_index);
      single_taken = true;
    }
    if (call.arrival >= next_periodic) {
      capture(next_periodic, call_index);
      while (next_periodic <= call.arrival) next_periodic += options.checkpoint_every;
    }
    advance_to(call.arrival);
    if (control_on) {
      // Every REQUEST feeds the estimator (admitted or not -- offered load
      // is what Eq. 15 wants), warm-up included: the estimator's windows
      // measure traffic, not results.
      ctrl->observe(call.arrival, static_cast<int>(call.src.index()),
                    static_cast<int>(call.dst.index()), call.holding);
      ++run_counters.estimator_updates;
    }

    const routing::RouteSet& routes_for_pair = routes.at(call.src, call.dst);
    const loss::RoutingContext ctx{g,               state,
                                   call.src,        call.dst,
                                   routes_for_pair, engine_rng.uniform01(),
                                   call.arrival,    call.bandwidth};
    const loss::RouteDecision decision = policy.route(ctx);

    const bool measured = call.arrival >= options.warmup;
    loss::PairCounters& pair =
        result.per_pair[call.src.index() * static_cast<std::size_t>(n) + call.dst.index()];
    loss::ClassCounters& cls = class_of(call.bandwidth);
    if (measured) {
      ++result.offered;
      ++pair.offered;
      ++cls.offered;
      if (options.time_bins > 0) ++result.bin_offered[bin_of(call.arrival)];
      ALTROUTE_OBS_HOOK(probe, on_offered(call.arrival, static_cast<int>(call.src.index()),
                                          static_cast<int>(call.dst.index()), call.bandwidth));
    }

    if (decision.accepted()) {
      ALTROUTE_OBS_HOOK(probe, sample_occupancy_to(call.arrival, occ_of));
      const bool alternate = decision.call_class == loss::CallClass::kAlternate;
      // Pre-booking reserved-band check, as in loss::run_trace: alternate
      // admissions landing above C - r on any path link (0 when protected).
      int protected_band_links = 0;
      if (probe != nullptr && measured && alternate) {
        for (const net::LinkId id : decision.path->links) {
          const auto ls = state.link(id);
          if (ls.occupancy() + call.bandwidth > ls.capacity() - ls.reservation()) {
            ++protected_band_links;
          }
        }
      }
      state.book(*decision.path, call.bandwidth);
      const Arena::Handle h = in_flight.acquire();
      InFlight& record = in_flight.value(h);
      record.path = *decision.path;  // vector assign: reuses the slot's capacity
      record.units = call.bandwidth;
      record.alternate = alternate;
      adjust_alt_occ(record, +1);
      departures.schedule(call.arrival + call.holding, h);
      if (measured) {
        if (decision.call_class == loss::CallClass::kPrimary) {
          ++result.carried_primary;
          ++pair.carried_primary;
        } else {
          ++result.carried_alternate;
          ++pair.carried_alternate;
        }
        const auto hops = static_cast<std::size_t>(decision.path->hops());
        if (result.carried_by_hops.size() <= hops) result.carried_by_hops.resize(hops + 1, 0);
        ++result.carried_by_hops[hops];
        ALTROUTE_OBS_HOOK(probe,
                          on_admitted(call.arrival, static_cast<int>(call.src.index()),
                                      static_cast<int>(call.dst.index()), *decision.path,
                                      alternate, call.bandwidth, protected_band_links,
                                      call.holding, booked_occ(*decision.path)));
      }
    } else if (measured) {
      ++result.blocked;
      ++pair.blocked;
      ++cls.blocked;
      if (options.time_bins > 0) ++result.bin_blocked[bin_of(call.arrival)];
      if (probe != nullptr) {
        // First-blocking-link attribution for the trace record only (the
        // scenario runner does not collect primary_losses_at_link).
        int blocking_link = -1;
        if (routes_for_pair.reachable()) {
          const std::size_t p = loss::pick_primary(routes_for_pair, ctx.primary_pick);
          const routing::Path& primary = routes_for_pair.primaries[p];
          const int idx =
              state.first_blocking_link(primary, loss::CallClass::kPrimary, call.bandwidth);
          if (idx >= 0) {
            blocking_link = static_cast<int>(primary.links[static_cast<std::size_t>(idx)].index());
          }
        }
        probe->on_blocked(call.arrival, static_cast<int>(call.src.index()),
                          static_cast<int>(call.dst.index()), blocking_link, call.bandwidth,
                          blocking_link >= 0 ? alt_occ[static_cast<std::size_t>(blocking_link)]
                                             : 0);
        // Reserved-state diagnosis (see loss::run_trace).
        if (decision.alternates_probed > 0) {
          for (const routing::Path& alt : routes_for_pair.alternates) {
            const int j =
                state.first_blocking_link(alt, loss::CallClass::kAlternate, call.bandwidth);
            if (j < 0) continue;
            const net::LinkId id = alt.links[static_cast<std::size_t>(j)];
            if (state.link(id).admits(loss::CallClass::kPrimary, call.bandwidth)) {
              probe->on_reserved_rejection(call.arrival, static_cast<int>(call.src.index()),
                                           static_cast<int>(call.dst.index()),
                                           static_cast<int>(id.index()));
            }
          }
        }
      }
    }
  }
  // Dues past the last arrival capture once here, before the tail drains
  // (a resumed continuation replays the tail itself).
  if (single_due && !single_taken && options.checkpoint_at <= trace.horizon) {
    capture(options.checkpoint_at, trace.calls.size());
  }
  if (next_periodic <= trace.horizon) capture(next_periodic, trace.calls.size());
  // Apply the tail: departures and events between the last arrival and the
  // horizon (late events still kill calls and belong in the log).
  advance_to(trace.horizon);
  ALTROUTE_OBS_HOOK(probe, finish_sampling(occ_of));

  if (options.counters != nullptr) {
    const sim::QueueStats& q = departures.stats();
    run_counters.events_scheduled = q.scheduled;
    run_counters.events_popped = q.popped;
    run_counters.peak_queue_depth = q.peak_size;
    run_counters.calendar_resizes = q.resizes;
    const sim::ArenaStats& a = in_flight.stats();
    run_counters.arena_allocations = a.allocations;
    run_counters.arena_reuses = a.reuses;
    run_counters.peak_arena_occupancy = a.peak_live;
    options.counters->merge(run_counters);
  }

  if (control_on) {
    // Cumulative across a capture/resume chain (restored with the memento).
    out.control_epochs = ctrl->epochs_done();
    out.control_retargets = ctrl->retargets();
    out.control_holds = ctrl->holds();
  }

  std::sort(per_class.begin(), per_class.end(),
            [](const loss::ClassCounters& a, const loss::ClassCounters& b) {
              return a.bandwidth < b.bandwidth;
            });
  result.per_class = std::move(per_class);
  for (int k = 0; k < g.link_count(); ++k) {
    const net::LinkId id(k);
    const auto link = state.link(id);
    out.final_links.push_back(FinalLinkState{link.capacity(), link.reservation(),
                                             link.occupancy(), g.link(id).enabled});
  }
  return out;
}

}  // namespace

ScenarioRunResult run_scenario(const net::Graph& graph, const net::TrafficMatrix& traffic,
                               loss::RoutingPolicy& policy, const sim::CallTrace& trace,
                               const Scenario& scenario, const ScenarioEngineOptions& options) {
  if (options.legacy_event_queue) {
    return run_scenario_impl<sim::EventQueue<Arena::Handle>>(graph, traffic, policy, trace,
                                                             scenario, options);
  }
  return run_scenario_impl<sim::CalendarQueue<Arena::Handle>>(graph, traffic, policy, trace,
                                                              scenario, options);
}

}  // namespace altroute::scenario
