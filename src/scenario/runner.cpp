#include "scenario/runner.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/protection.hpp"
#include "erlang/memo.hpp"
#include "routing/route_table.hpp"
#include "sim/calendar_queue.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/slab_arena.hpp"

namespace altroute::scenario {

namespace {

/// One admitted call: a copy of its booked path (so route-table rebuilds
/// never invalidate it), its circuit width, and its admission class.
/// Stored in a SlabArena -- released slots keep the path's vector capacity,
/// so steady-state admission churn allocates nothing.
struct InFlight {
  routing::Path path;
  int units{1};
  bool alternate{false};
};

using Arena = sim::SlabArena<InFlight>;

bool path_uses_any(const routing::Path& path, const std::vector<net::LinkId>& links) {
  for (const net::LinkId id : path.links) {
    if (std::find(links.begin(), links.end(), id) != links.end()) return true;
  }
  return false;
}

bool path_uses(const routing::Path& path, net::LinkId link) {
  return std::find(path.links.begin(), path.links.end(), link) != path.links.end();
}

// The scenario replay loop, templated over the departure-queue
// implementation exactly like loss::run_trace_impl: calendar queue on the
// hot path, the legacy binary heap behind
// ScenarioEngineOptions::legacy_event_queue.  Both pop in identical
// (time, seq) order, so results are bit-identical (differential ctests).
template <typename DepartureQueue>
ScenarioRunResult run_scenario_impl(const net::Graph& graph, const net::TrafficMatrix& traffic,
                                    loss::RoutingPolicy& policy, const sim::CallTrace& trace,
                                    const Scenario& scenario,
                                    const ScenarioEngineOptions& options) {
  scenario.validate();
  if (graph.node_count() != traffic.size()) {
    throw std::invalid_argument("run_scenario: graph/traffic node count mismatch");
  }
  if (!(options.warmup >= 0.0) || options.warmup >= trace.horizon) {
    throw std::invalid_argument("run_scenario: warmup must lie in [0, horizon)");
  }
  if (options.max_alt_hops < 1) {
    throw std::invalid_argument("run_scenario: max_alt_hops must be >= 1");
  }
  for (const ScenarioEvent& e : scenario.events) {
    if (e.node_a >= graph.node_count() || e.node_b >= graph.node_count()) {
      throw std::invalid_argument("run_scenario: event names a node outside the graph");
    }
  }

  // Working copies: events mutate the graph/state, never the caller's.
  net::Graph g = graph;
  routing::RouteTable routes =
      routing::build_min_hop_routes(g, options.max_alt_hops, options.max_paths_per_pair);
  loss::NetworkState state(g);
  if (!options.reservations.empty()) state.set_reservations(options.reservations);
  // Same engine stream as loss::run_trace, so a no-event scenario replays
  // a trace with the exact bifurcated-primary picks of the static engine.
  sim::Rng engine_rng(options.policy_seed, 0xA17E72A7E);

  obs::Probe* const probe = options.probe;
  ALTROUTE_OBS_HOOK(probe, bind(static_cast<std::size_t>(g.link_count())));
  const auto occ_of = [&state](std::size_t k) {
    return static_cast<long long>(
        state.link(net::LinkId(static_cast<std::int32_t>(k))).occupancy());
  };

  ScenarioRunResult out;
  loss::RunResult& result = out.run;
  const int n = g.node_count();
  result.node_count = n;
  result.per_pair.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), {});

  if (options.time_bins > 0) {
    result.bin_offered.assign(static_cast<std::size_t>(options.time_bins), 0);
    result.bin_blocked.assign(static_cast<std::size_t>(options.time_bins), 0);
  }
  const double bin_width = options.time_bins > 0
                               ? (trace.horizon - options.warmup) / options.time_bins
                               : 0.0;
  const auto bin_of = [&](double t) {
    const auto bin = static_cast<std::size_t>((t - options.warmup) / bin_width);
    return std::min(bin, static_cast<std::size_t>(options.time_bins - 1));
  };

  // In-flight calls live in a slab arena whose insertion-order list is the
  // admission order: oldest()/next() iterate oldest-first (the kill order),
  // newest()/prev() newest-first (the preemption order) -- the same
  // deterministic orders the previous id-keyed ordered map provided.  The
  // departure queue carries the arena handle; a call killed by an event is
  // released from the arena, and its departure handle -- now stale by
  // generation -- pops as a no-op later.
  Arena in_flight;
  DepartureQueue departures;

  // Per-bandwidth counters: flat vector probed linearly (widths are few),
  // sorted by width at the end -- see loss::run_trace_impl.
  std::vector<loss::ClassCounters> per_class;
  const auto class_of = [&per_class](int bandwidth) -> loss::ClassCounters& {
    for (loss::ClassCounters& c : per_class) {
      if (c.bandwidth == bandwidth) return c;
    }
    per_class.emplace_back();
    per_class.back().bandwidth = bandwidth;
    return per_class.back();
  };
  double traffic_factor = 1.0;

  // Per-link alternate-class circuits in flight, maintained only when a
  // probe is attached (see loss::run_trace): reported on blocked-call
  // records for the Theorem-1 loss attribution.
  std::vector<int> alt_occ;
  if (probe != nullptr) alt_occ.assign(static_cast<std::size_t>(g.link_count()), 0);
  const auto adjust_alt_occ = [&](const InFlight& call, int sign) {
    if (probe == nullptr || !call.alternate) return;
    for (const net::LinkId id : call.path.links) alt_occ[id.index()] += sign * call.units;
  };
  // Post-booking occupancy along a path, for the admitted trace record
  // (the Theorem-1 audit's admission state s); built only under the hook.
  const auto booked_occ = [&state](const routing::Path& path) {
    std::vector<int> occ;
    occ.reserve(path.links.size());
    for (const net::LinkId id : path.links) occ.push_back(state.link(id).occupancy());
    return occ;
  };

  const auto release_call = [&](Arena::Handle h) {
    const InFlight& call = in_flight.value(h);
    state.release(call.path, call.units);
    adjust_alt_occ(call, -1);
    in_flight.release(h);
  };

  const auto rebuild_routes = [&] {
    routes = routing::build_min_hop_routes(g, options.max_alt_hops, options.max_paths_per_pair);
  };

  // Eq.-15 re-solve.  The memoized path reuses each link's cached inverse
  // Erlang-B sequence whenever its (Lambda, C) key is unchanged -- only
  // links actually touched by a failure/capacity/traffic event recompute.
  // Both paths produce bit-identical reservation vectors.
  erlang::NetworkErlangMemo memo;
  const auto resolve_protection = [&](double t) {
    if (options.memoize_protection) {
      const std::vector<double> lambda =
          routing::primary_link_loads(g, routes, traffic.scaled(traffic_factor));
      memo.configure(lambda, core::link_capacities(g));
      state.set_reservations(memo.protection_levels(options.max_alt_hops));
    } else {
      state.set_reservations(core::protection_levels(g, routes, traffic.scaled(traffic_factor),
                                                     options.max_alt_hops));
    }
    ALTROUTE_OBS_HOOK(probe, on_protection_resolved(t, g.link_count()));
  };

  // The measured-window gate for kill/preempt accounting (matches dropped).
  const auto measured_event = [&](const ScenarioEvent& event) {
    return event.time >= options.warmup;
  };
  // First link of `path` belonging to the affected set (the failed/shrunk
  // directed link a kill is attributed to in metrics and trace records).
  const auto attributed_link = [](const routing::Path& path,
                                  const std::vector<net::LinkId>& links) {
    for (const net::LinkId id : path.links) {
      if (std::find(links.begin(), links.end(), id) != links.end()) {
        return static_cast<int>(id.index());
      }
    }
    return -1;
  };

  const auto apply_event = [&](const ScenarioEvent& event) {
    ALTROUTE_OBS_HOOK(probe, sample_occupancy_to(event.time, occ_of));
    AppliedEvent applied;
    applied.time = event.time;
    applied.kind = event.kind;
    switch (event.kind) {
      case EventKind::kLinkFail: {
        const net::NodeId a(event.node_a);
        const net::NodeId b(event.node_b);
        const std::vector<net::LinkId> affected = g.duplex_links(a, b);
        applied.links_changed = g.fail_duplex(a, b);
        // Kill every in-flight call routed over the failed facility,
        // oldest-first (the arena's insertion order).
        for (Arena::Handle h = in_flight.oldest(); h != Arena::kInvalid;) {
          const Arena::Handle following = in_flight.next(h);
          const InFlight& call = in_flight.value(h);
          if (path_uses_any(call.path, affected)) {
            if (probe != nullptr && measured_event(event)) {
              probe->on_killed(event.time, call.path, attributed_link(call.path, affected),
                               call.units);
            }
            release_call(h);
            ++applied.calls_killed;
          }
          h = following;
        }
        if (applied.links_changed > 0) rebuild_routes();
        break;
      }
      case EventKind::kLinkRepair: {
        applied.links_changed = g.repair_duplex(net::NodeId(event.node_a),
                                                net::NodeId(event.node_b));
        if (applied.links_changed > 0) rebuild_routes();
        break;
      }
      case EventKind::kCapacitySet:
      case EventKind::kCapacityScale: {
        const std::vector<net::LinkId> affected =
            g.duplex_links(net::NodeId(event.node_a), net::NodeId(event.node_b));
        for (const net::LinkId id : affected) {
          const int old_capacity = g.link(id).capacity;
          const int new_capacity =
              event.kind == EventKind::kCapacitySet
                  ? event.capacity
                  : std::max(1, static_cast<int>(std::llround(old_capacity * event.factor)));
          if (new_capacity == old_capacity) continue;
          g.set_link_capacity(id, new_capacity);
          state.set_capacity(id, new_capacity);
          ++applied.links_changed;
          // Preempt newest-first until the link fits its new capacity, so
          // occupancy never exceeds capacity at an admission decision.
          while (state.link(id).occupancy() > new_capacity) {
            Arena::Handle victim = in_flight.newest();
            while (victim != Arena::kInvalid && !path_uses(in_flight.value(victim).path, id)) {
              victim = in_flight.prev(victim);
            }
            if (victim == Arena::kInvalid) {
              throw std::logic_error("run_scenario: occupied link with no in-flight call");
            }
            if (probe != nullptr && measured_event(event)) {
              probe->on_preempted(event.time, in_flight.value(victim).path,
                                  static_cast<int>(id.index()), in_flight.value(victim).units);
            }
            release_call(victim);
            ++applied.calls_killed;
          }
        }
        break;
      }
      case EventKind::kTrafficScale:
        traffic_factor = event.factor;
        break;
      case EventKind::kResolveProtection:
        resolve_protection(event.time);
        break;
    }
    if (options.auto_resolve_protection &&
        (event.kind == EventKind::kLinkFail || event.kind == EventKind::kLinkRepair ||
         event.kind == EventKind::kCapacitySet || event.kind == EventKind::kCapacityScale)) {
      resolve_protection(event.time);
    }
    if (event.time >= options.warmup) out.dropped += applied.calls_killed;
    ALTROUTE_OBS_HOOK(probe, on_event_applied(event.time, event_kind_name(event.kind),
                                              applied.links_changed, applied.calls_killed));
    out.applied.push_back(applied);
  };

  // Advances the system to time t: departures and scenario events with
  // time <= t apply in time order, departures first on ties (a freed
  // circuit is visible to an event at the same instant, mirroring the
  // static engine's departure-before-arrival rule).
  std::size_t next_event = 0;
  const auto advance_to = [&](double t) {
    for (;;) {
      const bool dep_due = !departures.empty() && departures.next_time() <= t;
      const bool event_due =
          next_event < scenario.events.size() && scenario.events[next_event].time <= t;
      if (dep_due &&
          (!event_due || departures.next_time() <= scenario.events[next_event].time)) {
        const auto [time, h] = departures.pop();
        if (in_flight.alive(h)) {  // killed calls: stale handle, no-op
          ALTROUTE_OBS_HOOK(probe, sample_occupancy_to(time, occ_of));
          release_call(h);
        }
      } else if (event_due) {
        apply_event(scenario.events[next_event]);
        ++next_event;
      } else {
        break;
      }
    }
  };

  for (const sim::CallRecord& call : trace.calls) {
    advance_to(call.arrival);

    const routing::RouteSet& routes_for_pair = routes.at(call.src, call.dst);
    const loss::RoutingContext ctx{g,               state,
                                   call.src,        call.dst,
                                   routes_for_pair, engine_rng.uniform01(),
                                   call.arrival,    call.bandwidth};
    const loss::RouteDecision decision = policy.route(ctx);

    const bool measured = call.arrival >= options.warmup;
    loss::PairCounters& pair =
        result.per_pair[call.src.index() * static_cast<std::size_t>(n) + call.dst.index()];
    loss::ClassCounters& cls = class_of(call.bandwidth);
    if (measured) {
      ++result.offered;
      ++pair.offered;
      ++cls.offered;
      if (options.time_bins > 0) ++result.bin_offered[bin_of(call.arrival)];
      ALTROUTE_OBS_HOOK(probe, on_offered(call.arrival, static_cast<int>(call.src.index()),
                                          static_cast<int>(call.dst.index()), call.bandwidth));
    }

    if (decision.accepted()) {
      ALTROUTE_OBS_HOOK(probe, sample_occupancy_to(call.arrival, occ_of));
      const bool alternate = decision.call_class == loss::CallClass::kAlternate;
      // Pre-booking reserved-band check, as in loss::run_trace: alternate
      // admissions landing above C - r on any path link (0 when protected).
      int protected_band_links = 0;
      if (probe != nullptr && measured && alternate) {
        for (const net::LinkId id : decision.path->links) {
          const auto ls = state.link(id);
          if (ls.occupancy() + call.bandwidth > ls.capacity() - ls.reservation()) {
            ++protected_band_links;
          }
        }
      }
      state.book(*decision.path, call.bandwidth);
      const Arena::Handle h = in_flight.acquire();
      InFlight& record = in_flight.value(h);
      record.path = *decision.path;  // vector assign: reuses the slot's capacity
      record.units = call.bandwidth;
      record.alternate = alternate;
      adjust_alt_occ(record, +1);
      departures.schedule(call.arrival + call.holding, h);
      if (measured) {
        if (decision.call_class == loss::CallClass::kPrimary) {
          ++result.carried_primary;
          ++pair.carried_primary;
        } else {
          ++result.carried_alternate;
          ++pair.carried_alternate;
        }
        const auto hops = static_cast<std::size_t>(decision.path->hops());
        if (result.carried_by_hops.size() <= hops) result.carried_by_hops.resize(hops + 1, 0);
        ++result.carried_by_hops[hops];
        ALTROUTE_OBS_HOOK(probe,
                          on_admitted(call.arrival, static_cast<int>(call.src.index()),
                                      static_cast<int>(call.dst.index()), *decision.path,
                                      alternate, call.bandwidth, protected_band_links,
                                      call.holding, booked_occ(*decision.path)));
      }
    } else if (measured) {
      ++result.blocked;
      ++pair.blocked;
      ++cls.blocked;
      if (options.time_bins > 0) ++result.bin_blocked[bin_of(call.arrival)];
      if (probe != nullptr) {
        // First-blocking-link attribution for the trace record only (the
        // scenario runner does not collect primary_losses_at_link).
        int blocking_link = -1;
        if (routes_for_pair.reachable()) {
          const std::size_t p = loss::pick_primary(routes_for_pair, ctx.primary_pick);
          const routing::Path& primary = routes_for_pair.primaries[p];
          const int idx =
              state.first_blocking_link(primary, loss::CallClass::kPrimary, call.bandwidth);
          if (idx >= 0) {
            blocking_link = static_cast<int>(primary.links[static_cast<std::size_t>(idx)].index());
          }
        }
        probe->on_blocked(call.arrival, static_cast<int>(call.src.index()),
                          static_cast<int>(call.dst.index()), blocking_link, call.bandwidth,
                          blocking_link >= 0 ? alt_occ[static_cast<std::size_t>(blocking_link)]
                                             : 0);
        // Reserved-state diagnosis (see loss::run_trace).
        if (decision.alternates_probed > 0) {
          for (const routing::Path& alt : routes_for_pair.alternates) {
            const int j =
                state.first_blocking_link(alt, loss::CallClass::kAlternate, call.bandwidth);
            if (j < 0) continue;
            const net::LinkId id = alt.links[static_cast<std::size_t>(j)];
            if (state.link(id).admits(loss::CallClass::kPrimary, call.bandwidth)) {
              probe->on_reserved_rejection(call.arrival, static_cast<int>(call.src.index()),
                                           static_cast<int>(call.dst.index()),
                                           static_cast<int>(id.index()));
            }
          }
        }
      }
    }
  }
  // Apply the tail: departures and events between the last arrival and the
  // horizon (late events still kill calls and belong in the log).
  advance_to(trace.horizon);
  ALTROUTE_OBS_HOOK(probe, finish_sampling(occ_of));

  std::sort(per_class.begin(), per_class.end(),
            [](const loss::ClassCounters& a, const loss::ClassCounters& b) {
              return a.bandwidth < b.bandwidth;
            });
  result.per_class = std::move(per_class);
  for (int k = 0; k < g.link_count(); ++k) {
    const net::LinkId id(k);
    const auto link = state.link(id);
    out.final_links.push_back(FinalLinkState{link.capacity(), link.reservation(),
                                             link.occupancy(), g.link(id).enabled});
  }
  return out;
}

}  // namespace

ScenarioRunResult run_scenario(const net::Graph& graph, const net::TrafficMatrix& traffic,
                               loss::RoutingPolicy& policy, const sim::CallTrace& trace,
                               const Scenario& scenario, const ScenarioEngineOptions& options) {
  if (options.legacy_event_queue) {
    return run_scenario_impl<sim::EventQueue<Arena::Handle>>(graph, traffic, policy, trace,
                                                             scenario, options);
  }
  return run_scenario_impl<sim::CalendarQueue<Arena::Handle>>(graph, traffic, policy, trace,
                                                              scenario, options);
}

}  // namespace altroute::scenario
