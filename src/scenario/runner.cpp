#include "scenario/runner.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "core/protection.hpp"
#include "routing/route_table.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace altroute::scenario {

namespace {

/// One admitted call: a copy of its booked path (so route-table rebuilds
/// never invalidate it), its circuit width, and its admission class.
struct InFlight {
  routing::Path path;
  int units{1};
  bool alternate{false};
};

bool path_uses_any(const routing::Path& path, const std::vector<net::LinkId>& links) {
  for (const net::LinkId id : path.links) {
    if (std::find(links.begin(), links.end(), id) != links.end()) return true;
  }
  return false;
}

}  // namespace

ScenarioRunResult run_scenario(const net::Graph& graph, const net::TrafficMatrix& traffic,
                               loss::RoutingPolicy& policy, const sim::CallTrace& trace,
                               const Scenario& scenario, const ScenarioEngineOptions& options) {
  scenario.validate();
  if (graph.node_count() != traffic.size()) {
    throw std::invalid_argument("run_scenario: graph/traffic node count mismatch");
  }
  if (!(options.warmup >= 0.0) || options.warmup >= trace.horizon) {
    throw std::invalid_argument("run_scenario: warmup must lie in [0, horizon)");
  }
  if (options.max_alt_hops < 1) {
    throw std::invalid_argument("run_scenario: max_alt_hops must be >= 1");
  }
  for (const ScenarioEvent& e : scenario.events) {
    if (e.node_a >= graph.node_count() || e.node_b >= graph.node_count()) {
      throw std::invalid_argument("run_scenario: event names a node outside the graph");
    }
  }

  // Working copies: events mutate the graph/state, never the caller's.
  net::Graph g = graph;
  routing::RouteTable routes =
      routing::build_min_hop_routes(g, options.max_alt_hops, options.max_paths_per_pair);
  loss::NetworkState state(g);
  if (!options.reservations.empty()) state.set_reservations(options.reservations);
  // Same engine stream as loss::run_trace, so a no-event scenario replays
  // a trace with the exact bifurcated-primary picks of the static engine.
  sim::Rng engine_rng(options.policy_seed, 0xA17E72A7E);

  obs::Probe* const probe = options.probe;
  ALTROUTE_OBS_HOOK(probe, bind(static_cast<std::size_t>(g.link_count())));
  const auto occ_of = [&state](std::size_t k) {
    return static_cast<long long>(
        state.link(net::LinkId(static_cast<std::int32_t>(k))).occupancy());
  };

  ScenarioRunResult out;
  loss::RunResult& result = out.run;
  const int n = g.node_count();
  result.node_count = n;
  result.per_pair.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), {});

  if (options.time_bins > 0) {
    result.bin_offered.assign(static_cast<std::size_t>(options.time_bins), 0);
    result.bin_blocked.assign(static_cast<std::size_t>(options.time_bins), 0);
  }
  const double bin_width = options.time_bins > 0
                               ? (trace.horizon - options.warmup) / options.time_bins
                               : 0.0;
  const auto bin_of = [&](double t) {
    const auto bin = static_cast<std::size_t>((t - options.warmup) / bin_width);
    return std::min(bin, static_cast<std::size_t>(options.time_bins - 1));
  };

  // In-flight calls keyed by admission sequence (ordered map: iteration is
  // oldest-first, reverse iteration newest-first -- both deterministic).
  // The departure queue carries only the key; a call killed by an event is
  // erased from the map, and its departure pops as a no-op later.
  std::map<std::uint64_t, InFlight> in_flight;
  sim::EventQueue<std::uint64_t> departures;
  std::uint64_t next_call_id = 0;

  std::map<int, loss::ClassCounters> per_class;
  double traffic_factor = 1.0;

  // Per-link alternate-class circuits in flight, maintained only when a
  // probe is attached (see loss::run_trace): reported on blocked-call
  // records for the Theorem-1 loss attribution.
  std::vector<int> alt_occ;
  if (probe != nullptr) alt_occ.assign(static_cast<std::size_t>(g.link_count()), 0);
  const auto adjust_alt_occ = [&](const InFlight& call, int sign) {
    if (probe == nullptr || !call.alternate) return;
    for (const net::LinkId id : call.path.links) alt_occ[id.index()] += sign * call.units;
  };
  // Post-booking occupancy along a path, for the admitted trace record
  // (the Theorem-1 audit's admission state s); built only under the hook.
  const auto booked_occ = [&state](const routing::Path& path) {
    std::vector<int> occ;
    occ.reserve(path.links.size());
    for (const net::LinkId id : path.links) occ.push_back(state.link(id).occupancy());
    return occ;
  };

  const auto release_call = [&](std::uint64_t id) {
    const auto it = in_flight.find(id);
    state.release(it->second.path, it->second.units);
    adjust_alt_occ(it->second, -1);
    in_flight.erase(it);
  };

  const auto rebuild_routes = [&] {
    routes = routing::build_min_hop_routes(g, options.max_alt_hops, options.max_paths_per_pair);
  };

  const auto resolve_protection = [&](double t) {
    state.set_reservations(
        core::protection_levels(g, routes, traffic.scaled(traffic_factor), options.max_alt_hops));
    ALTROUTE_OBS_HOOK(probe, on_protection_resolved(t, g.link_count()));
  };

  // The measured-window gate for kill/preempt accounting (matches dropped).
  const auto measured_event = [&](const ScenarioEvent& event) {
    return event.time >= options.warmup;
  };
  // First link of `path` belonging to the affected set (the failed/shrunk
  // directed link a kill is attributed to in metrics and trace records).
  const auto attributed_link = [](const routing::Path& path,
                                  const std::vector<net::LinkId>& links) {
    for (const net::LinkId id : path.links) {
      if (std::find(links.begin(), links.end(), id) != links.end()) {
        return static_cast<int>(id.index());
      }
    }
    return -1;
  };

  const auto apply_event = [&](const ScenarioEvent& event) {
    ALTROUTE_OBS_HOOK(probe, sample_occupancy_to(event.time, occ_of));
    AppliedEvent applied;
    applied.time = event.time;
    applied.kind = event.kind;
    switch (event.kind) {
      case EventKind::kLinkFail: {
        const net::NodeId a(event.node_a);
        const net::NodeId b(event.node_b);
        const std::vector<net::LinkId> affected = g.duplex_links(a, b);
        applied.links_changed = g.fail_duplex(a, b);
        // Kill every in-flight call routed over the failed facility,
        // oldest-first (iteration order of the id-keyed map).
        for (auto it = in_flight.begin(); it != in_flight.end();) {
          if (path_uses_any(it->second.path, affected)) {
            if (probe != nullptr && measured_event(event)) {
              probe->on_killed(event.time, it->second.path,
                               attributed_link(it->second.path, affected), it->second.units);
            }
            state.release(it->second.path, it->second.units);
            adjust_alt_occ(it->second, -1);
            it = in_flight.erase(it);
            ++applied.calls_killed;
          } else {
            ++it;
          }
        }
        if (applied.links_changed > 0) rebuild_routes();
        break;
      }
      case EventKind::kLinkRepair: {
        applied.links_changed = g.repair_duplex(net::NodeId(event.node_a),
                                                net::NodeId(event.node_b));
        if (applied.links_changed > 0) rebuild_routes();
        break;
      }
      case EventKind::kCapacitySet:
      case EventKind::kCapacityScale: {
        const std::vector<net::LinkId> affected =
            g.duplex_links(net::NodeId(event.node_a), net::NodeId(event.node_b));
        for (const net::LinkId id : affected) {
          const int old_capacity = g.link(id).capacity;
          const int new_capacity =
              event.kind == EventKind::kCapacitySet
                  ? event.capacity
                  : std::max(1, static_cast<int>(std::llround(old_capacity * event.factor)));
          if (new_capacity == old_capacity) continue;
          g.set_link_capacity(id, new_capacity);
          state.set_capacity(id, new_capacity);
          ++applied.links_changed;
          // Preempt newest-first until the link fits its new capacity, so
          // occupancy never exceeds capacity at an admission decision.
          while (state.link(id).occupancy() > new_capacity) {
            auto victim = in_flight.rbegin();
            while (victim != in_flight.rend() && !path_uses_any(victim->second.path, {id})) {
              ++victim;
            }
            if (victim == in_flight.rend()) {
              throw std::logic_error("run_scenario: occupied link with no in-flight call");
            }
            if (probe != nullptr && measured_event(event)) {
              probe->on_preempted(event.time, victim->second.path,
                                  static_cast<int>(id.index()), victim->second.units);
            }
            state.release(victim->second.path, victim->second.units);
            adjust_alt_occ(victim->second, -1);
            in_flight.erase(std::next(victim).base());
            ++applied.calls_killed;
          }
        }
        break;
      }
      case EventKind::kTrafficScale:
        traffic_factor = event.factor;
        break;
      case EventKind::kResolveProtection:
        resolve_protection(event.time);
        break;
    }
    if (options.auto_resolve_protection &&
        (event.kind == EventKind::kLinkFail || event.kind == EventKind::kLinkRepair ||
         event.kind == EventKind::kCapacitySet || event.kind == EventKind::kCapacityScale)) {
      resolve_protection(event.time);
    }
    if (event.time >= options.warmup) out.dropped += applied.calls_killed;
    ALTROUTE_OBS_HOOK(probe, on_event_applied(event.time, event_kind_name(event.kind),
                                              applied.links_changed, applied.calls_killed));
    out.applied.push_back(applied);
  };

  // Advances the system to time t: departures and scenario events with
  // time <= t apply in time order, departures first on ties (a freed
  // circuit is visible to an event at the same instant, mirroring the
  // static engine's departure-before-arrival rule).
  std::size_t next_event = 0;
  const auto advance_to = [&](double t) {
    for (;;) {
      const bool dep_due = !departures.empty() && departures.next_time() <= t;
      const bool event_due =
          next_event < scenario.events.size() && scenario.events[next_event].time <= t;
      if (dep_due &&
          (!event_due || departures.next_time() <= scenario.events[next_event].time)) {
        const auto [time, id] = departures.pop();
        if (in_flight.count(id) != 0) {  // killed calls: no-op
          ALTROUTE_OBS_HOOK(probe, sample_occupancy_to(time, occ_of));
          release_call(id);
        }
      } else if (event_due) {
        apply_event(scenario.events[next_event]);
        ++next_event;
      } else {
        break;
      }
    }
  };

  for (const sim::CallRecord& call : trace.calls) {
    advance_to(call.arrival);

    const routing::RouteSet& routes_for_pair = routes.at(call.src, call.dst);
    const loss::RoutingContext ctx{g,               state,
                                   call.src,        call.dst,
                                   routes_for_pair, engine_rng.uniform01(),
                                   call.arrival,    call.bandwidth};
    const loss::RouteDecision decision = policy.route(ctx);

    const bool measured = call.arrival >= options.warmup;
    loss::PairCounters& pair =
        result.per_pair[call.src.index() * static_cast<std::size_t>(n) + call.dst.index()];
    loss::ClassCounters& cls = per_class[call.bandwidth];
    cls.bandwidth = call.bandwidth;
    if (measured) {
      ++result.offered;
      ++pair.offered;
      ++cls.offered;
      if (options.time_bins > 0) ++result.bin_offered[bin_of(call.arrival)];
      ALTROUTE_OBS_HOOK(probe, on_offered(call.arrival, static_cast<int>(call.src.index()),
                                          static_cast<int>(call.dst.index()), call.bandwidth));
    }

    if (decision.accepted()) {
      ALTROUTE_OBS_HOOK(probe, sample_occupancy_to(call.arrival, occ_of));
      const bool alternate = decision.call_class == loss::CallClass::kAlternate;
      // Pre-booking reserved-band check, as in loss::run_trace: alternate
      // admissions landing above C - r on any path link (0 when protected).
      int protected_band_links = 0;
      if (probe != nullptr && measured && alternate) {
        for (const net::LinkId id : decision.path->links) {
          const loss::LinkState& ls = state.link(id);
          if (ls.occupancy() + call.bandwidth > ls.capacity() - ls.reservation()) {
            ++protected_band_links;
          }
        }
      }
      state.book(*decision.path, call.bandwidth);
      const auto placed =
          in_flight.emplace(next_call_id, InFlight{*decision.path, call.bandwidth, alternate});
      adjust_alt_occ(placed.first->second, +1);
      departures.schedule(call.arrival + call.holding, next_call_id);
      ++next_call_id;
      if (measured) {
        if (decision.call_class == loss::CallClass::kPrimary) {
          ++result.carried_primary;
          ++pair.carried_primary;
        } else {
          ++result.carried_alternate;
          ++pair.carried_alternate;
        }
        const auto hops = static_cast<std::size_t>(decision.path->hops());
        if (result.carried_by_hops.size() <= hops) result.carried_by_hops.resize(hops + 1, 0);
        ++result.carried_by_hops[hops];
        ALTROUTE_OBS_HOOK(probe,
                          on_admitted(call.arrival, static_cast<int>(call.src.index()),
                                      static_cast<int>(call.dst.index()), *decision.path,
                                      alternate, call.bandwidth, protected_band_links,
                                      call.holding, booked_occ(*decision.path)));
      }
    } else if (measured) {
      ++result.blocked;
      ++pair.blocked;
      ++cls.blocked;
      if (options.time_bins > 0) ++result.bin_blocked[bin_of(call.arrival)];
      if (probe != nullptr) {
        // First-blocking-link attribution for the trace record only (the
        // scenario runner does not collect primary_losses_at_link).
        int blocking_link = -1;
        if (routes_for_pair.reachable()) {
          const std::size_t p = loss::pick_primary(routes_for_pair, ctx.primary_pick);
          const routing::Path& primary = routes_for_pair.primaries[p];
          const int idx =
              state.first_blocking_link(primary, loss::CallClass::kPrimary, call.bandwidth);
          if (idx >= 0) {
            blocking_link = static_cast<int>(primary.links[static_cast<std::size_t>(idx)].index());
          }
        }
        probe->on_blocked(call.arrival, static_cast<int>(call.src.index()),
                          static_cast<int>(call.dst.index()), blocking_link, call.bandwidth,
                          blocking_link >= 0 ? alt_occ[static_cast<std::size_t>(blocking_link)]
                                             : 0);
        // Reserved-state diagnosis (see loss::run_trace).
        if (decision.alternates_probed > 0) {
          for (const routing::Path& alt : routes_for_pair.alternates) {
            const int j =
                state.first_blocking_link(alt, loss::CallClass::kAlternate, call.bandwidth);
            if (j < 0) continue;
            const net::LinkId id = alt.links[static_cast<std::size_t>(j)];
            if (state.link(id).admits(loss::CallClass::kPrimary, call.bandwidth)) {
              probe->on_reserved_rejection(call.arrival, static_cast<int>(call.src.index()),
                                           static_cast<int>(call.dst.index()),
                                           static_cast<int>(id.index()));
            }
          }
        }
      }
    }
  }
  // Apply the tail: departures and events between the last arrival and the
  // horizon (late events still kill calls and belong in the log).
  advance_to(trace.horizon);
  ALTROUTE_OBS_HOOK(probe, finish_sampling(occ_of));

  for (const auto& [bandwidth, counters] : per_class) {
    result.per_class.push_back(counters);
  }
  for (int k = 0; k < g.link_count(); ++k) {
    const net::LinkId id(k);
    const loss::LinkState& link = state.link(id);
    out.final_links.push_back(FinalLinkState{link.capacity(), link.reservation(),
                                             link.occupancy(), g.link(id).enabled});
  }
  return out;
}

}  // namespace altroute::scenario
