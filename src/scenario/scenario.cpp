#include "scenario/scenario.hpp"

#include <cmath>
#include <stdexcept>

namespace altroute::scenario {

std::string_view event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kLinkFail:
      return "link_fail";
    case EventKind::kLinkRepair:
      return "link_repair";
    case EventKind::kCapacitySet:
      return "capacity_set";
    case EventKind::kCapacityScale:
      return "capacity_scale";
    case EventKind::kTrafficScale:
      return "traffic_scale";
    case EventKind::kResolveProtection:
      return "resolve_protection";
  }
  throw std::invalid_argument("event_kind_name: unknown kind");
}

ScenarioEvent ScenarioEvent::link_fail(double time, int a, int b) {
  ScenarioEvent e;
  e.time = time;
  e.kind = EventKind::kLinkFail;
  e.node_a = a;
  e.node_b = b;
  return e;
}

ScenarioEvent ScenarioEvent::link_repair(double time, int a, int b) {
  ScenarioEvent e = link_fail(time, a, b);
  e.kind = EventKind::kLinkRepair;
  return e;
}

ScenarioEvent ScenarioEvent::capacity_set(double time, int a, int b, int capacity) {
  ScenarioEvent e = link_fail(time, a, b);
  e.kind = EventKind::kCapacitySet;
  e.capacity = capacity;
  return e;
}

ScenarioEvent ScenarioEvent::capacity_scale(double time, int a, int b, double factor) {
  ScenarioEvent e = link_fail(time, a, b);
  e.kind = EventKind::kCapacityScale;
  e.factor = factor;
  return e;
}

ScenarioEvent ScenarioEvent::traffic_scale(double time, double factor) {
  ScenarioEvent e;
  e.time = time;
  e.kind = EventKind::kTrafficScale;
  e.factor = factor;
  return e;
}

ScenarioEvent ScenarioEvent::resolve_protection(double time) {
  ScenarioEvent e;
  e.time = time;
  e.kind = EventKind::kResolveProtection;
  return e;
}

namespace {

[[noreturn]] void reject(std::size_t index, const ScenarioEvent& event, const std::string& why) {
  throw std::invalid_argument("Scenario: event " + std::to_string(index) + " (" +
                              std::string(event_kind_name(event.kind)) + ") " + why);
}

bool needs_duplex(EventKind kind) {
  return kind == EventKind::kLinkFail || kind == EventKind::kLinkRepair ||
         kind == EventKind::kCapacitySet || kind == EventKind::kCapacityScale;
}

}  // namespace

void Scenario::validate() const {
  double previous = 0.0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const ScenarioEvent& e = events[i];
    if (!std::isfinite(e.time) || e.time < 0.0) {
      reject(i, e, "has a negative or non-finite time");
    }
    if (i > 0 && e.time < previous) {
      reject(i, e, "is out of order (times must be non-decreasing)");
    }
    previous = e.time;
    if (needs_duplex(e.kind)) {
      if (e.node_a < 0 || e.node_b < 0) reject(i, e, "needs non-negative node indices");
      if (e.node_a == e.node_b) reject(i, e, "names a self-pair");
    }
    switch (e.kind) {
      case EventKind::kCapacitySet:
        if (e.capacity < 1) reject(i, e, "needs capacity >= 1");
        break;
      case EventKind::kCapacityScale:
        if (!std::isfinite(e.factor) || e.factor <= 0.0) reject(i, e, "needs factor > 0");
        break;
      case EventKind::kTrafficScale:
        if (!std::isfinite(e.factor) || e.factor < 0.0) reject(i, e, "needs factor >= 0");
        break;
      default:
        break;
    }
  }
}

bool Scenario::has_traffic_dynamics() const {
  for (const ScenarioEvent& e : events) {
    if (e.kind == EventKind::kTrafficScale) return true;
  }
  return false;
}

sim::LoadProfile Scenario::traffic_profile(double base_factor) const {
  if (!(base_factor >= 0.0)) {
    throw std::invalid_argument("Scenario::traffic_profile: negative base factor");
  }
  validate();
  std::vector<double> times{0.0};
  std::vector<double> factors{base_factor};
  for (const ScenarioEvent& e : events) {
    if (e.kind != EventKind::kTrafficScale) continue;
    if (e.time == times.back()) {
      factors.back() = e.factor;  // same-instant events: last one wins
    } else {
      times.push_back(e.time);
      factors.push_back(e.factor);
    }
  }
  return sim::LoadProfile(std::move(times), std::move(factors));
}

sim::CallTrace make_scenario_trace(const net::TrafficMatrix& nominal, const Scenario& scenario,
                                   double horizon, std::uint64_t seed) {
  return sim::generate_profiled_trace(nominal, scenario.traffic_profile(), horizon, seed);
}

}  // namespace altroute::scenario
