// Declarative mid-run network dynamics: the event vocabulary of the
// scenario engine.
//
// The paper motivates controlled alternate routing with non-stationary
// reality (the Thanksgiving-day overloads of its introduction, the link
// failures of Section 4.2.2), but evaluates stationary snapshots.  A
// Scenario closes that gap: it is an ordered list of timestamped network
// events -- link failures and repairs, capacity changes, offered-load
// swings, and protection re-solves -- that the scenario runner
// (scenario/runner.hpp) merges into a simulation's event flow at exact
// times.  Scenarios are plain data: build them in code with the
// ScenarioEvent factories or parse them from JSON (scenario/parse.hpp).
// Everything downstream is deterministic in (scenario, trace, seed).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "netgraph/traffic_matrix.hpp"
#include "sim/call_trace.hpp"
#include "sim/load_profile.hpp"

namespace altroute::scenario {

/// The event vocabulary.  Link and capacity events act on a duplex
/// facility (both directed links between two nodes), matching the paper's
/// Section 4.2.2 failure model.
enum class EventKind {
  kLinkFail,           ///< disable both directions of a duplex facility
  kLinkRepair,         ///< re-enable both directions
  kCapacitySet,        ///< set both directions' capacity to an absolute value
  kCapacityScale,      ///< multiply both directions' capacity by a factor
  kTrafficScale,       ///< set the offered-load multiplier from this time on
  kResolveProtection,  ///< re-run the local Eq. 15 rule for every r^k
};

/// Lower-case token used in JSON and reports ("link_fail", ...).
[[nodiscard]] std::string_view event_kind_name(EventKind kind);

/// One timestamped event.  Which fields are meaningful depends on `kind`;
/// the factory functions below set exactly the right ones.
struct ScenarioEvent {
  double time{0.0};
  EventKind kind{EventKind::kResolveProtection};
  /// Duplex endpoints (node indices) for link/capacity events.
  int node_a{-1};
  int node_b{-1};
  /// Absolute per-direction capacity for kCapacitySet.
  int capacity{0};
  /// Multiplier for kCapacityScale (> 0) / kTrafficScale (>= 0).
  double factor{1.0};

  [[nodiscard]] static ScenarioEvent link_fail(double time, int a, int b);
  [[nodiscard]] static ScenarioEvent link_repair(double time, int a, int b);
  [[nodiscard]] static ScenarioEvent capacity_set(double time, int a, int b, int capacity);
  [[nodiscard]] static ScenarioEvent capacity_scale(double time, int a, int b, double factor);
  [[nodiscard]] static ScenarioEvent traffic_scale(double time, double factor);
  [[nodiscard]] static ScenarioEvent resolve_protection(double time);
};

/// A named, time-ordered event list.
struct Scenario {
  std::string name;
  /// Events in non-decreasing time order (ties apply in list order).
  std::vector<ScenarioEvent> events;

  /// Checks times (finite, >= 0, non-decreasing) and per-kind field
  /// validity; throws std::invalid_argument naming the offending event.
  /// Node indices are validated later, against the graph, by the runner.
  void validate() const;

  /// True when any kTrafficScale event is present.
  [[nodiscard]] bool has_traffic_dynamics() const;

  /// The piecewise-constant offered-load multiplier implied by the
  /// kTrafficScale events: `base_factor` from t = 0 until the first event,
  /// then each event's factor from its time on (same-time events: the last
  /// one wins).  This is what make_scenario_trace thins arrivals with.
  [[nodiscard]] sim::LoadProfile traffic_profile(double base_factor = 1.0) const;
};

/// Samples the call trace of one scenario replication: arrivals follow
/// `nominal` scaled by the scenario's traffic profile (non-homogeneous
/// Poisson by thinning; see sim/load_profile.hpp).  Scenarios without
/// traffic events yield the constant-rate trace.  Deterministic in `seed`,
/// and unchanged by non-traffic events -- so a failure scenario and the
/// intact run replay the SAME calls (common random numbers).
[[nodiscard]] sim::CallTrace make_scenario_trace(const net::TrafficMatrix& nominal,
                                                 const Scenario& scenario, double horizon,
                                                 std::uint64_t seed);

}  // namespace altroute::scenario
