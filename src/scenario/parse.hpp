// JSON front door of the scenario engine.
//
// Scenario files are small JSON documents:
//
//   {
//     "name": "failure-recovery",
//     "events": [
//       {"time": 40, "type": "link_fail",          "a": 2, "b": 3},
//       {"time": 40, "type": "resolve_protection"},
//       {"time": 70, "type": "link_repair",        "a": 2, "b": 3},
//       {"time": 70, "type": "resolve_protection"}
//     ]
//   }
//
// Per-type fields: link_fail / link_repair take duplex endpoints "a"/"b"
// (node indices); capacity_set adds "capacity" (integer >= 1);
// capacity_scale and traffic_scale take "factor"; resolve_protection takes
// nothing.  Unknown types, unknown keys, missing fields, negative times,
// and out-of-order events are all rejected with a descriptive error --
// scenario files are experiment inputs, so typos must fail loudly.
#pragma once

#include <string>
#include <string_view>

#include "scenario/json.hpp"
#include "scenario/scenario.hpp"

namespace altroute::scenario {

/// Parses a scenario from JSON text and validates it.  Throws
/// std::invalid_argument on malformed JSON or invalid scenario content.
[[nodiscard]] Scenario scenario_from_json(std::string_view json_text);

/// Same, from an already-parsed JSON object (embedded scenarios, e.g. the
/// checker's case.json artifacts).  Validation is identical.
[[nodiscard]] Scenario scenario_from_value(const JsonValue& root);

/// Renders a scenario back to the JSON schema scenario_from_json reads.
/// Doubles are printed with "%.17g", so times and factors round-trip
/// bit-exactly: scenario_from_json(scenario_to_json(s)) == s.
[[nodiscard]] std::string scenario_to_json(const Scenario& scenario);

/// Reads `path` and parses it with scenario_from_json.  Throws
/// std::runtime_error when the file cannot be read.
[[nodiscard]] Scenario load_scenario_file(const std::string& path);

}  // namespace altroute::scenario
