// Call-by-call simulation engine.
//
// Replays a pre-generated CallTrace against one routing policy: for each
// arrival the policy is consulted, accepted calls book circuits on every
// link of the chosen path and release them after the call's holding time.
// Measurement starts after the warm-up period (the paper warms up for 10
// time units from an idle network and measures for 100).
#pragma once

#include <cstdint>
#include <vector>

#include "loss/policy.hpp"
#include "netgraph/graph.hpp"
#include "obs/probe.hpp"
#include "obs/prof/counters.hpp"
#include "routing/route_table.hpp"
#include "sim/call_trace.hpp"

namespace altroute::loss {

struct EngineOptions {
  /// Calls arriving before this time are routed but not counted.
  double warmup{10.0};
  /// Seed of the engine-side RNG stream (bifurcated-primary sampling).
  /// Keep equal across policies for common random numbers.
  std::uint64_t policy_seed{0x5eed};
  /// Collect per-link mean occupancy (small extra cost).
  bool link_stats{true};
  /// Per-link state-protection levels applied to the network state before
  /// the run (empty = all zero).  Policies that probe alternates with
  /// CallClass::kAlternate are subject to them; single-path and
  /// uncontrolled policies ignore them by construction.
  std::vector<int> reservations;
  /// When > 0, the measurement window [warmup, horizon) is split into this
  /// many equal bins and offered/blocked are also counted per bin
  /// (time-varying-load experiments).
  int time_bins{0};
  /// Replay departures through the legacy binary-heap EventQueue instead
  /// of the calendar queue.  Results are bit-identical either way (the
  /// differential ctests enforce it); the flag exists for those tests and
  /// as an escape hatch.
  bool legacy_event_queue{false};
  /// Observability hooks: metrics and/or structured event tracing for the
  /// run.  nullptr (the default) disables instrumentation entirely -- each
  /// hook site is then one never-taken branch (see obs/probe.hpp).  Only
  /// post-warm-up calls are recorded, matching the counters above.
  obs::Probe* probe{nullptr};
  /// When non-null, the run's deterministic operation counters are
  /// ACCUMULATED into this struct at the end of the run (tallies add,
  /// peaks take the max -- pass the same struct across runs to aggregate).
  /// Always available, even under ALTROUTE_OBS_ENABLED=0; the values are
  /// bit-identical across thread counts and engine configurations (see
  /// obs/prof/counters.hpp).
  obs::prof::EngineCounters* counters{nullptr};
};

/// Counters for one ordered O-D pair (post-warm-up).
struct PairCounters {
  long long offered{0};
  long long blocked{0};
  long long carried_primary{0};
  long long carried_alternate{0};

  [[nodiscard]] double blocking() const {
    return offered > 0 ? static_cast<double>(blocked) / static_cast<double>(offered) : 0.0;
  }
};

/// Post-warm-up counters for one bandwidth class (multi-rate extension).
struct ClassCounters {
  int bandwidth{1};
  long long offered{0};
  long long blocked{0};

  [[nodiscard]] double blocking() const {
    return offered > 0 ? static_cast<double>(blocked) / static_cast<double>(offered) : 0.0;
  }
};

/// Aggregate outcome of one simulation run.
struct RunResult {
  long long offered{0};
  long long blocked{0};
  long long carried_primary{0};
  long long carried_alternate{0};
  /// Per-bandwidth-class counters, ascending bandwidth; a single entry
  /// {1, offered, blocked} for the paper's single-rate traces.
  std::vector<ClassCounters> per_class;
  /// Post-warm-up per-pair counters, indexed src * n + dst.
  std::vector<PairCounters> per_pair;
  /// Post-warm-up blocked-primary-probe count per link (loss attributed to
  /// the first blocking link, the paper's convention).
  std::vector<long long> primary_losses_at_link;
  /// Time-averaged occupancy per link over the measurement window
  /// (empty when EngineOptions::link_stats is false).
  std::vector<double> mean_link_occupancy;
  /// Offered/blocked per time bin (empty unless EngineOptions::time_bins).
  std::vector<long long> bin_offered;
  std::vector<long long> bin_blocked;
  /// carried_by_hops[h] = carried calls whose path had h links (index 0
  /// unused).  The resource-cost fingerprint of alternate routing: the
  /// mean carried hop count rises exactly when calls overflow onto longer
  /// paths.
  std::vector<long long> carried_by_hops;
  int node_count{0};

  /// Average network blocking probability: blocked / offered.
  [[nodiscard]] double blocking() const {
    return offered > 0 ? static_cast<double>(blocked) / static_cast<double>(offered) : 0.0;
  }
  /// Fraction of carried calls that used an alternate path.
  [[nodiscard]] double alternate_fraction() const {
    const long long carried = carried_primary + carried_alternate;
    return carried > 0 ? static_cast<double>(carried_alternate) / static_cast<double>(carried)
                       : 0.0;
  }
  /// Mean links per carried call -- circuits consumed per carried Erlang.
  [[nodiscard]] double mean_carried_hops() const {
    long long calls = 0;
    long long hops = 0;
    for (std::size_t h = 0; h < carried_by_hops.size(); ++h) {
      calls += carried_by_hops[h];
      hops += carried_by_hops[h] * static_cast<long long>(h);
    }
    return calls > 0 ? static_cast<double>(hops) / static_cast<double>(calls) : 0.0;
  }
  /// Per-pair blocking probabilities for pairs with offered > 0.
  [[nodiscard]] std::vector<double> pair_blocking_probabilities() const;
};

/// Replays `trace` against `policy` and returns the measured counters.
/// Throws when routes/graph/trace disagree on the node count.
[[nodiscard]] RunResult run_trace(const net::Graph& graph, const routing::RouteTable& routes,
                                  RoutingPolicy& policy, const sim::CallTrace& trace,
                                  const EngineOptions& options = {});

}  // namespace altroute::loss
