// Whole-network admission state: one LinkState per directed link.
#pragma once

#include <vector>

#include "loss/link_state.hpp"
#include "netgraph/graph.hpp"
#include "routing/path.hpp"

namespace altroute::loss {

/// Aggregate of every link's occupancy/reservation, plus path-level
/// admission (the call set-up probe) and booking/release.
class NetworkState {
 public:
  /// Initializes idle links with the graph's capacities and zero
  /// reservation levels.
  explicit NetworkState(const net::Graph& graph);

  [[nodiscard]] int link_count() const { return static_cast<int>(links_.size()); }

  [[nodiscard]] const LinkState& link(net::LinkId id) const { return links_[id.index()]; }

  /// Sets one link's state-protection level.
  void set_reservation(net::LinkId id, int reservation) {
    links_[id.index()].set_reservation(reservation);
  }

  /// Sets every link's state-protection level from a per-link vector.
  void set_reservations(const std::vector<int>& reservations);

  /// Updates one link's capacity mid-run (scenario capacity events); the
  /// link's reservation is clamped to the new capacity.  See
  /// LinkState::set_capacity for the occupancy contract.
  void set_capacity(net::LinkId id, int capacity) { links_[id.index()].set_capacity(capacity); }

  /// The set-up probe: true when every link of `path` admits a call of the
  /// given class and width under the current state.
  [[nodiscard]] bool path_admissible(const routing::Path& path, CallClass cls,
                                     int units = 1) const;

  /// Index into `path.links` of the first link that refuses the call, or -1
  /// when the whole path admits it.  The paper's loss-attribution
  /// convention: a call is lost at the first blocking link.
  [[nodiscard]] int first_blocking_link(const routing::Path& path, CallClass cls,
                                        int units = 1) const;

  /// Books `units` circuits on every link of the path (the set-up packet's
  /// return leg).  Throws std::logic_error if they do not fit; callers
  /// probe first, and in this single-threaded simulator the state cannot
  /// change between probe and booking.
  void book(const routing::Path& path, int units = 1);

  /// Releases `units` circuits on every link of the path (call
  /// termination).
  void release(const routing::Path& path, int units = 1);

  /// Books `units` circuits on a single link (hop-by-hop signaling).
  void book_link(net::LinkId id, int units = 1) { links_[id.index()].seize(units); }

  /// Releases `units` circuits on a single link (crankback).
  void release_link(net::LinkId id, int units = 1) { links_[id.index()].release(units); }

  /// Total circuits in use across all links (each call counts once per hop).
  [[nodiscard]] long long total_occupancy() const;

 private:
  std::vector<LinkState> links_;
};

}  // namespace altroute::loss
