// Whole-network admission state in a cache-friendly SoA layout.
//
// The hot loop of every policy is "does this path admit a call of class X
// right now" -- a walk over a handful of link ids testing occupancy against
// a class-dependent ceiling.  Instead of an array of per-link structs, the
// state keeps three parallel int arrays indexed by LinkId:
//
//   occupancy[k]  circuits in use
//   capacity[k]   the primary-class admission ceiling C^k
//   alt_limit[k]  the alternate-class ceiling C^k - r^k (state protection)
//
// so an admission probe is one load from `occupancy` plus one load from the
// ceiling array for the call's class -- two cache lines of useful data per
// probe instead of a stride of 12-byte structs, and the per-class branch of
// LinkState::admits is hoisted out of the per-link loop entirely.
// Reservation levels are stored as the derived alternate ceiling; the
// paper-facing r^k is recovered as capacity - alt_limit on demand.
#pragma once

#include <vector>

#include "loss/link_state.hpp"
#include "netgraph/graph.hpp"
#include "routing/path.hpp"

namespace altroute::loss {

class NetworkState;

/// Read-only view of one link's admission state, returned by
/// NetworkState::link().  Mirrors the LinkState accessors so call sites
/// (and tests) read identically; it holds a pointer into the SoA arrays,
/// not a copy, so it always reflects the live state.
class LinkStateView {
 public:
  [[nodiscard]] int capacity() const;
  [[nodiscard]] int occupancy() const;
  [[nodiscard]] int reservation() const;
  [[nodiscard]] int free_circuits() const;
  [[nodiscard]] bool admits(CallClass cls, int units = 1) const;

 private:
  friend class NetworkState;
  LinkStateView(const NetworkState& state, std::size_t k) : state_(&state), k_(k) {}
  const NetworkState* state_;
  std::size_t k_;
};

/// Aggregate of every link's occupancy/reservation, plus path-level
/// admission (the call set-up probe) and booking/release.
class NetworkState {
 public:
  /// Initializes idle links with the graph's capacities and zero
  /// reservation levels.
  explicit NetworkState(const net::Graph& graph);

  [[nodiscard]] int link_count() const { return static_cast<int>(occupancy_.size()); }

  [[nodiscard]] LinkStateView link(net::LinkId id) const {
    return LinkStateView(*this, id.index());
  }

  // Direct SoA accessors (hot paths and the LinkStateView).
  [[nodiscard]] int occupancy(net::LinkId id) const { return occupancy_[id.index()]; }
  [[nodiscard]] int capacity(net::LinkId id) const { return capacity_[id.index()]; }
  [[nodiscard]] int reservation(net::LinkId id) const {
    return capacity_[id.index()] - alt_limit_[id.index()];
  }

  /// Sets one link's state-protection level.
  void set_reservation(net::LinkId id, int reservation);

  /// Sets every link's state-protection level from a per-link vector.
  void set_reservations(const std::vector<int>& reservations);

  /// Updates one link's capacity mid-run (scenario capacity events); the
  /// link's reservation is clamped to the new capacity.  Occupancy is NOT
  /// touched: after a shrink it may transiently exceed the new capacity,
  /// and the caller (the scenario runner) must preempt calls until
  /// occupancy <= capacity before the next admission decision.
  void set_capacity(net::LinkId id, int capacity);

  /// The set-up probe: true when every link of `path` admits a call of the
  /// given class and width under the current state.
  [[nodiscard]] bool path_admissible(const routing::Path& path, CallClass cls,
                                     int units = 1) const {
    return first_blocking_link(path, cls, units) < 0;
  }

  /// Index into `path.links` of the first link that refuses the call, or -1
  /// when the whole path admits it.  The paper's loss-attribution
  /// convention: a call is lost at the first blocking link.
  [[nodiscard]] int first_blocking_link(const routing::Path& path, CallClass cls,
                                        int units = 1) const {
    if (units < 1) throw std::invalid_argument("NetworkState: units < 1");
    const int* const occ = occupancy_.data();
    const int* const limit = (cls == CallClass::kAlternate ? alt_limit_ : capacity_).data();
    const net::LinkId* const ids = path.links.data();
    const std::size_t hops = path.links.size();
    for (std::size_t i = 0; i < hops; ++i) {
      const std::size_t k = ids[i].index();
      if (occ[k] + units > limit[k]) return static_cast<int>(i);
    }
    return -1;
  }

  /// Books `units` circuits on every link of the path (the set-up packet's
  /// return leg).  Throws std::logic_error if they do not fit; callers
  /// probe first, and in this single-threaded simulator the state cannot
  /// change between probe and booking.
  void book(const routing::Path& path, int units = 1);

  /// Releases `units` circuits on every link of the path (call
  /// termination).
  void release(const routing::Path& path, int units = 1);

  /// Books `units` circuits on a single link (hop-by-hop signaling).
  void book_link(net::LinkId id, int units = 1) { seize(id.index(), units); }

  /// Releases `units` circuits on a single link (crankback).
  void release_link(net::LinkId id, int units = 1) { unseize(id.index(), units); }

  /// Total circuits in use across all links (each call counts once per hop).
  [[nodiscard]] long long total_occupancy() const;

 private:
  void seize(std::size_t k, int units) {
    if (units < 1) throw std::invalid_argument("LinkState::seize: units < 1");
    if (occupancy_[k] + units > capacity_[k]) {
      throw std::logic_error("LinkState::seize: link full");
    }
    occupancy_[k] += units;
  }

  void unseize(std::size_t k, int units) {
    if (units < 1) throw std::invalid_argument("LinkState::release: units < 1");
    if (occupancy_[k] < units) throw std::logic_error("LinkState::release: not that busy");
    occupancy_[k] -= units;
  }

  std::vector<int> occupancy_;
  std::vector<int> capacity_;
  std::vector<int> alt_limit_;  ///< capacity - reservation, the alternate ceiling
};

inline int LinkStateView::capacity() const {
  return state_->capacity(net::LinkId(static_cast<std::int32_t>(k_)));
}
inline int LinkStateView::occupancy() const {
  return state_->occupancy(net::LinkId(static_cast<std::int32_t>(k_)));
}
inline int LinkStateView::reservation() const {
  return state_->reservation(net::LinkId(static_cast<std::int32_t>(k_)));
}
inline int LinkStateView::free_circuits() const { return capacity() - occupancy(); }
inline bool LinkStateView::admits(CallClass cls, int units) const {
  if (units < 1) throw std::invalid_argument("LinkState::admits: units < 1");
  const net::LinkId id(static_cast<std::int32_t>(k_));
  const int ceiling =
      cls == CallClass::kAlternate ? state_->capacity(id) - state_->reservation(id)
                                   : state_->capacity(id);
  return state_->occupancy(id) + units <= ceiling;
}

}  // namespace altroute::loss
