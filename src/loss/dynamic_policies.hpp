// Classic state-dependent alternate-selection rules from the telephony
// literature the paper builds on, adapted to general meshes.  Both pick
// WHICH alternate to use differently from the paper's fixed
// increasing-length order; both respect the same per-link admission rules
// (including state protection when their calls probe as kAlternate), so
// they compose with the Eq.-15 control.
//
//  * Least-busy alternative (the LBA/ALBA family of Mitra & Gibbens):
//    among the admissible alternates, carry the call on the one whose
//    bottleneck link has the most free circuits (ties: shortest, then
//    route-table order).  Needs global state at decision time -- exactly
//    the requirement the paper's scheme avoids -- so it serves as an
//    informed upper-comparison.
//
//  * Sticky random routing (Gibbens & Kelly's Dynamic Alternative
//    Routing): each ordered pair remembers one current alternate; a call
//    blocked on its primary tries just that alternate.  On success the
//    choice sticks; on failure the call is lost and the pair resets to a
//    RANDOM alternate for the next overflow.  Local state only, one probe
//    per overflow -- cheaper signaling than the paper's sequential probing.
#pragma once

#include <cstdint>
#include <vector>

#include "loss/policy.hpp"
#include "sim/rng.hpp"

namespace altroute::loss {

class LeastBusyAlternatePolicy final : public RoutingPolicy {
 public:
  /// `protected_alternates` selects the admission class alternates probe
  /// with: true = kAlternate (subject to state protection), false =
  /// kPrimary (uncontrolled).
  explicit LeastBusyAlternatePolicy(bool protected_alternates)
      : alt_class_(protected_alternates ? CallClass::kAlternate : CallClass::kPrimary) {}

  [[nodiscard]] RouteDecision route(const RoutingContext& ctx) override;
  [[nodiscard]] std::string_view name() const override {
    return alt_class_ == CallClass::kAlternate ? "least-busy-alt-protected"
                                               : "least-busy-alt";
  }

 private:
  CallClass alt_class_;
};

class StickyRandomPolicy final : public RoutingPolicy {
 public:
  /// `nodes` sizes the per-pair memory; `seed` drives the random resets;
  /// `protected_alternates` as in LeastBusyAlternatePolicy.
  StickyRandomPolicy(int nodes, std::uint64_t seed, bool protected_alternates);

  [[nodiscard]] RouteDecision route(const RoutingContext& ctx) override;
  [[nodiscard]] std::string_view name() const override {
    return alt_class_ == CallClass::kAlternate ? "sticky-random-protected" : "sticky-random";
  }

  /// Currently remembered alternate index for a pair (for tests); SIZE_MAX
  /// when unset.
  [[nodiscard]] std::size_t current_alternate(net::NodeId src, net::NodeId dst) const {
    return sticky_[pair_index(src, dst)];
  }

  /// Checkpoint support: the reset-RNG state plus the per-pair sticky
  /// memory -- everything a resumed run needs to pick the same alternates.
  [[nodiscard]] std::vector<std::uint8_t> snapshot_state() const override;
  void restore_state(const std::vector<std::uint8_t>& blob) override;

 private:
  [[nodiscard]] std::size_t pair_index(net::NodeId src, net::NodeId dst) const {
    return src.index() * static_cast<std::size_t>(nodes_) + dst.index();
  }

  int nodes_;
  CallClass alt_class_;
  sim::Rng rng_;
  std::vector<std::size_t> sticky_;
};

}  // namespace altroute::loss
