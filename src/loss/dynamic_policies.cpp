#include "loss/dynamic_policies.hpp"

#include <limits>
#include <stdexcept>

namespace altroute::loss {

namespace {

constexpr std::size_t kUnset = std::numeric_limits<std::size_t>::max();

// Free circuits at the path's bottleneck link.
int bottleneck_free(const RoutingContext& ctx, const routing::Path& path) {
  int least = std::numeric_limits<int>::max();
  for (const net::LinkId id : path.links) {
    least = std::min(least, ctx.state.link(id).free_circuits());
  }
  return least;
}

// Little-endian u64 push/pull for the policy-state blob (the blob is
// opaque to the snapshot container; only this policy reads it back).
void push_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t pull_u64(const std::vector<std::uint8_t>& in, std::size_t word) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[word * 8 + static_cast<std::size_t>(i)]) << (8 * i);
  }
  return v;
}

}  // namespace

RouteDecision LeastBusyAlternatePolicy::route(const RoutingContext& ctx) {
  RouteDecision d;
  const std::size_t p = pick_primary(ctx.routes, ctx.primary_pick);
  if (p == kUnset) return d;
  const routing::Path& primary = ctx.routes.primaries[p];
  if (ctx.state.path_admissible(primary, CallClass::kPrimary, ctx.bandwidth)) {
    d.path = &primary;
    d.call_class = CallClass::kPrimary;
    return d;
  }
  const routing::Path* best = nullptr;
  int best_free = -1;
  int best_hops = std::numeric_limits<int>::max();
  for (const routing::Path& alt : ctx.routes.alternates) {
    if (alt == primary) continue;
    ++d.alternates_probed;
    if (!ctx.state.path_admissible(alt, alt_class_, ctx.bandwidth)) continue;
    const int free = bottleneck_free(ctx, alt);
    if (free > best_free || (free == best_free && alt.hops() < best_hops)) {
      best = &alt;
      best_free = free;
      best_hops = alt.hops();
    }
  }
  if (best != nullptr) {
    d.path = best;
    d.call_class = CallClass::kAlternate;
  }
  return d;
}

StickyRandomPolicy::StickyRandomPolicy(int nodes, std::uint64_t seed,
                                       bool protected_alternates)
    : nodes_(nodes),
      alt_class_(protected_alternates ? CallClass::kAlternate : CallClass::kPrimary),
      rng_(seed, 0xDA12),
      sticky_(static_cast<std::size_t>(nodes) * static_cast<std::size_t>(nodes), kUnset) {
  if (nodes < 1) throw std::invalid_argument("StickyRandomPolicy: nodes < 1");
}

RouteDecision StickyRandomPolicy::route(const RoutingContext& ctx) {
  RouteDecision d;
  const std::size_t p = pick_primary(ctx.routes, ctx.primary_pick);
  if (p == kUnset) return d;
  const routing::Path& primary = ctx.routes.primaries[p];
  if (ctx.state.path_admissible(primary, CallClass::kPrimary, ctx.bandwidth)) {
    d.path = &primary;
    d.call_class = CallClass::kPrimary;
    return d;
  }
  // Candidate alternates exclude the primary itself.
  std::size_t candidates = 0;
  for (const routing::Path& alt : ctx.routes.alternates) {
    if (!(alt == primary)) ++candidates;
  }
  if (candidates == 0) return d;
  const auto nth_candidate = [&](std::size_t n) -> const routing::Path& {
    for (const routing::Path& alt : ctx.routes.alternates) {
      if (alt == primary) continue;
      if (n == 0) return alt;
      --n;
    }
    return ctx.routes.alternates.front();  // unreachable by construction
  };

  std::size_t& remembered = sticky_[pair_index(ctx.src, ctx.dst)];
  if (remembered == kUnset || remembered >= candidates) {
    remembered = rng_.below(candidates);
  }
  const routing::Path& attempt = nth_candidate(remembered);
  ++d.alternates_probed;
  if (ctx.state.path_admissible(attempt, alt_class_, ctx.bandwidth)) {
    d.path = &attempt;  // success: the choice sticks
    d.call_class = CallClass::kAlternate;
    return d;
  }
  // Failure: lose the call and re-point the pair at a fresh random
  // alternate for its next overflow (DAR's reset rule).
  remembered = rng_.below(candidates);
  return d;
}

std::vector<std::uint8_t> StickyRandomPolicy::snapshot_state() const {
  // 4 words of RNG state, one word of pair count, one word per pair.
  std::vector<std::uint8_t> blob;
  blob.reserve((5 + sticky_.size()) * 8);
  for (const std::uint64_t word : rng_.state()) push_u64(blob, word);
  push_u64(blob, sticky_.size());
  for (const std::size_t s : sticky_) push_u64(blob, static_cast<std::uint64_t>(s));
  return blob;
}

void StickyRandomPolicy::restore_state(const std::vector<std::uint8_t>& blob) {
  const std::size_t expected = (5 + sticky_.size()) * 8;
  if (blob.size() != expected || pull_u64(blob, 4) != sticky_.size()) {
    throw std::invalid_argument(
        "StickyRandomPolicy::restore_state: blob does not match this policy's " +
        std::to_string(sticky_.size()) + "-pair memory (got " + std::to_string(blob.size()) +
        " bytes, expected " + std::to_string(expected) + ")");
  }
  rng_.set_state({pull_u64(blob, 0), pull_u64(blob, 1), pull_u64(blob, 2), pull_u64(blob, 3)});
  for (std::size_t q = 0; q < sticky_.size(); ++q) {
    sticky_[q] = static_cast<std::size_t>(pull_u64(blob, 5 + q));
  }
}

}  // namespace altroute::loss
