#include "loss/dynamic_policies.hpp"

#include <limits>
#include <stdexcept>

namespace altroute::loss {

namespace {

constexpr std::size_t kUnset = std::numeric_limits<std::size_t>::max();

// Free circuits at the path's bottleneck link.
int bottleneck_free(const RoutingContext& ctx, const routing::Path& path) {
  int least = std::numeric_limits<int>::max();
  for (const net::LinkId id : path.links) {
    least = std::min(least, ctx.state.link(id).free_circuits());
  }
  return least;
}

}  // namespace

RouteDecision LeastBusyAlternatePolicy::route(const RoutingContext& ctx) {
  RouteDecision d;
  const std::size_t p = pick_primary(ctx.routes, ctx.primary_pick);
  if (p == kUnset) return d;
  const routing::Path& primary = ctx.routes.primaries[p];
  if (ctx.state.path_admissible(primary, CallClass::kPrimary, ctx.bandwidth)) {
    d.path = &primary;
    d.call_class = CallClass::kPrimary;
    return d;
  }
  const routing::Path* best = nullptr;
  int best_free = -1;
  int best_hops = std::numeric_limits<int>::max();
  for (const routing::Path& alt : ctx.routes.alternates) {
    if (alt == primary) continue;
    ++d.alternates_probed;
    if (!ctx.state.path_admissible(alt, alt_class_, ctx.bandwidth)) continue;
    const int free = bottleneck_free(ctx, alt);
    if (free > best_free || (free == best_free && alt.hops() < best_hops)) {
      best = &alt;
      best_free = free;
      best_hops = alt.hops();
    }
  }
  if (best != nullptr) {
    d.path = best;
    d.call_class = CallClass::kAlternate;
  }
  return d;
}

StickyRandomPolicy::StickyRandomPolicy(int nodes, std::uint64_t seed,
                                       bool protected_alternates)
    : nodes_(nodes),
      alt_class_(protected_alternates ? CallClass::kAlternate : CallClass::kPrimary),
      rng_(seed, 0xDA12),
      sticky_(static_cast<std::size_t>(nodes) * static_cast<std::size_t>(nodes), kUnset) {
  if (nodes < 1) throw std::invalid_argument("StickyRandomPolicy: nodes < 1");
}

RouteDecision StickyRandomPolicy::route(const RoutingContext& ctx) {
  RouteDecision d;
  const std::size_t p = pick_primary(ctx.routes, ctx.primary_pick);
  if (p == kUnset) return d;
  const routing::Path& primary = ctx.routes.primaries[p];
  if (ctx.state.path_admissible(primary, CallClass::kPrimary, ctx.bandwidth)) {
    d.path = &primary;
    d.call_class = CallClass::kPrimary;
    return d;
  }
  // Candidate alternates exclude the primary itself.
  std::size_t candidates = 0;
  for (const routing::Path& alt : ctx.routes.alternates) {
    if (!(alt == primary)) ++candidates;
  }
  if (candidates == 0) return d;
  const auto nth_candidate = [&](std::size_t n) -> const routing::Path& {
    for (const routing::Path& alt : ctx.routes.alternates) {
      if (alt == primary) continue;
      if (n == 0) return alt;
      --n;
    }
    return ctx.routes.alternates.front();  // unreachable by construction
  };

  std::size_t& remembered = sticky_[pair_index(ctx.src, ctx.dst)];
  if (remembered == kUnset || remembered >= candidates) {
    remembered = rng_.below(candidates);
  }
  const routing::Path& attempt = nth_candidate(remembered);
  ++d.alternates_probed;
  if (ctx.state.path_admissible(attempt, alt_class_, ctx.bandwidth)) {
    d.path = &attempt;  // success: the choice sticks
    d.call_class = CallClass::kAlternate;
    return d;
  }
  // Failure: lose the call and re-point the pair at a fresh random
  // alternate for its next overflow (DAR's reset rule).
  remembered = rng_.below(candidates);
  return d;
}

}  // namespace altroute::loss
