// Routing policy interface.
//
// A policy sees one call request at a time, together with the O-D pair's
// route program and the current network state, and decides which path (if
// any) carries the call.  Policies are stateless with respect to calls in
// flight -- all dynamic state lives in NetworkState -- so a policy object
// can be shared across runs.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "loss/network_state.hpp"
#include "netgraph/graph.hpp"
#include "routing/route_table.hpp"

namespace altroute::loss {

/// Everything a policy may look at when routing one call.
struct RoutingContext {
  const net::Graph& graph;
  const NetworkState& state;
  net::NodeId src;
  net::NodeId dst;
  const routing::RouteSet& routes;
  /// Common uniform variate in [0,1) used to sample among bifurcated
  /// primaries.  Drawn once per call by the engine from its own stream, so
  /// every policy replaying the same trace samples the same primary
  /// (common-random-numbers discipline).
  double primary_pick;
  /// Simulation clock at the call's arrival (adaptive policies use it to
  /// advance their estimation windows).
  double now{0.0};
  /// Circuits the call seizes per link (1 in the paper's single-rate
  /// model; the multi-rate extension sets the class bandwidth here).
  int bandwidth{1};
};

/// A policy's verdict for one call.
struct RouteDecision {
  /// Chosen path, or nullptr to block the call.  Must point into
  /// ctx.routes (storage owned by the RouteTable, stable for the run).
  const routing::Path* path{nullptr};
  /// Class the call is admitted under (decides later interactions only via
  /// metrics; the admission checks already happened inside the policy).
  CallClass call_class{CallClass::kPrimary};
  /// Number of alternate paths probed before the decision (diagnostics).
  int alternates_probed{0};

  [[nodiscard]] bool accepted() const { return path != nullptr; }
};

/// Interface implemented by the four routing schemes studied in the paper.
class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;

  /// Routes one call under the current state.  Must not mutate network
  /// state -- the engine performs the booking -- but a policy may update
  /// internal learning state (e.g. online Lambda estimates), hence
  /// non-const.
  [[nodiscard]] virtual RouteDecision route(const RoutingContext& ctx) = 0;

  /// Display name for experiment tables.
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Checkpoint support: the policy's internal learning state as an opaque
  /// blob (empty for stateless policies, the default).  restore_state must
  /// accept exactly what snapshot_state produced; the default rejects any
  /// non-empty blob, so a checkpoint carrying learning state can never
  /// silently resume against a policy that would discard it.
  [[nodiscard]] virtual std::vector<std::uint8_t> snapshot_state() const { return {}; }
  virtual void restore_state(const std::vector<std::uint8_t>& blob) {
    if (!blob.empty()) {
      throw std::invalid_argument("RoutingPolicy::restore_state: policy '" +
                                  std::string(name()) +
                                  "' is stateless but the checkpoint carries " +
                                  std::to_string(blob.size()) + " bytes of policy state");
    }
  }
};

/// Samples the primary path index from the route set's bifurcation
/// probabilities using the engine-provided uniform variate.  Helper shared
/// by all policies.  Returns SIZE_MAX for an empty route set.
[[nodiscard]] std::size_t pick_primary(const routing::RouteSet& routes, double primary_pick);

}  // namespace altroute::loss
