#include "loss/policies.hpp"

#include <limits>
#include <stdexcept>

#include "erlang/shadow_price.hpp"

namespace altroute::loss {

std::size_t pick_primary(const routing::RouteSet& routes, double primary_pick) {
  if (routes.primaries.empty()) return std::numeric_limits<std::size_t>::max();
  if (routes.primaries.size() == 1) return 0;
  double cumulative = 0.0;
  for (std::size_t p = 0; p < routes.primaries.size(); ++p) {
    cumulative += routes.primary_probs[p];
    if (primary_pick < cumulative) return p;
  }
  return routes.primaries.size() - 1;  // guard against rounding in the probs
}

RouteDecision SinglePathPolicy::route(const RoutingContext& ctx) {
  RouteDecision d;
  const std::size_t p = pick_primary(ctx.routes, ctx.primary_pick);
  if (p == std::numeric_limits<std::size_t>::max()) return d;
  const routing::Path& primary = ctx.routes.primaries[p];
  if (ctx.state.path_admissible(primary, CallClass::kPrimary, ctx.bandwidth)) {
    d.path = &primary;
    d.call_class = CallClass::kPrimary;
  }
  return d;
}

RouteDecision UncontrolledAlternatePolicy::route(const RoutingContext& ctx) {
  RouteDecision d;
  const std::size_t p = pick_primary(ctx.routes, ctx.primary_pick);
  if (p == std::numeric_limits<std::size_t>::max()) return d;
  const routing::Path& primary = ctx.routes.primaries[p];
  if (ctx.state.path_admissible(primary, CallClass::kPrimary, ctx.bandwidth)) {
    d.path = &primary;
    d.call_class = CallClass::kPrimary;
    return d;
  }
  for (const routing::Path& alt : ctx.routes.alternates) {
    if (alt == primary) continue;
    ++d.alternates_probed;
    // No state protection: an alternate call needs only free circuits.
    // Admission still uses kPrimary-class checks because the uncontrolled
    // scheme ignores reservation levels by definition.
    if (ctx.state.path_admissible(alt, CallClass::kPrimary, ctx.bandwidth)) {
      d.path = &alt;
      d.call_class = CallClass::kAlternate;
      return d;
    }
  }
  return d;
}

OttKrishnanPolicy::OttKrishnanPolicy(const std::vector<double>& lambda,
                                     const std::vector<int>& capacity) {
  if (lambda.size() != capacity.size()) {
    throw std::invalid_argument("OttKrishnanPolicy: lambda/capacity size mismatch");
  }
  prices_.reserve(lambda.size());
  for (std::size_t k = 0; k < lambda.size(); ++k) {
    prices_.push_back(erlang::link_shadow_prices(lambda[k], capacity[k]));
  }
}

RouteDecision OttKrishnanPolicy::route(const RoutingContext& ctx) {
  RouteDecision d;
  const std::size_t p = pick_primary(ctx.routes, ctx.primary_pick);
  if (p == std::numeric_limits<std::size_t>::max()) return d;
  const routing::Path& primary = ctx.routes.primaries[p];

  // Price of seizing `bandwidth` circuits on a link in state s is the sum
  // of the unit prices d(s), d(s+1), ..., d(s+b-1) -- adding the call one
  // circuit at a time.  Feasibility (s + b <= C) is checked separately.
  const auto path_price = [&](const routing::Path& path) {
    double total = 0.0;
    for (const net::LinkId id : path.links) {
      const int occupancy = ctx.state.link(id).occupancy();
      for (int unit = 0; unit < ctx.bandwidth; ++unit) {
        total += prices_[id.index()][static_cast<std::size_t>(occupancy + unit)];
      }
    }
    return total;
  };

  const routing::Path* best = nullptr;
  double best_price = std::numeric_limits<double>::infinity();
  bool best_is_primary = false;
  if (ctx.state.path_admissible(primary, CallClass::kPrimary, ctx.bandwidth)) {
    best = &primary;
    best_price = path_price(primary);
    best_is_primary = true;
  }
  for (const routing::Path& alt : ctx.routes.alternates) {
    if (alt == primary) continue;
    ++d.alternates_probed;
    if (!ctx.state.path_admissible(alt, CallClass::kPrimary, ctx.bandwidth)) continue;
    const double price = path_price(alt);
    if (price < best_price) {
      best_price = price;
      best = &alt;
      best_is_primary = false;
    }
  }
  // Revenue scales with the call's bandwidth (a b-circuit call is worth b
  // unit calls): accept only profitable routings.
  if (best != nullptr && best_price <= static_cast<double>(ctx.bandwidth)) {
    d.path = best;
    d.call_class = best_is_primary ? CallClass::kPrimary : CallClass::kAlternate;
  }
  return d;
}

}  // namespace altroute::loss
