// The state-independent and uncontrolled policies of the paper, plus the
// Ott-Krishnan separable shadow-price comparator.  The paper's contribution
// (controlled alternate routing) lives in core/controlled_policy.hpp.
#pragma once

#include <vector>

#include "loss/policy.hpp"

namespace altroute::loss {

/// Single-path (pure SI) routing: the call completes on its primary path or
/// is lost.  With bifurcated primaries the path is sampled per call, state
/// independently, and is still the only path tried ("single-path ... in a
/// loose fashion", Section 1).
class SinglePathPolicy final : public RoutingPolicy {
 public:
  [[nodiscard]] RouteDecision route(const RoutingContext& ctx) override;
  [[nodiscard]] std::string_view name() const override { return "single-path"; }
};

/// Uncontrolled alternate routing: when the primary is blocked, alternates
/// are tried in order of increasing length and the call completes on the
/// first one with free capacity on every link -- no state protection.
class UncontrolledAlternatePolicy final : public RoutingPolicy {
 public:
  [[nodiscard]] RouteDecision route(const RoutingContext& ctx) override;
  [[nodiscard]] std::string_view name() const override { return "uncontrolled-alt"; }
};

/// Ott-Krishnan separable state-dependent routing (Section 4.2.2 baseline):
/// the call is carried on the feasible candidate path (primary or
/// alternate) minimizing the sum of per-link shadow prices d_k(s_k), and is
/// blocked when that minimum exceeds the call's revenue (1).  Shadow-price
/// tables are precomputed per link from the UNREDUCED primary loads, as the
/// paper chose to do.
class OttKrishnanPolicy final : public RoutingPolicy {
 public:
  /// `lambda` is the per-link primary demand (Eq. 1) used to build the
  /// price tables; `capacity` the per-link circuit counts.
  OttKrishnanPolicy(const std::vector<double>& lambda, const std::vector<int>& capacity);

  [[nodiscard]] RouteDecision route(const RoutingContext& ctx) override;
  [[nodiscard]] std::string_view name() const override { return "ott-krishnan"; }

  /// Price of putting one more call on link `k` at occupancy `s` (exposed
  /// for tests).
  [[nodiscard]] double price(net::LinkId k, int occupancy) const {
    return prices_[k.index()][static_cast<std::size_t>(occupancy)];
  }

 private:
  std::vector<std::vector<double>> prices_;  // [link][occupancy 0..C-1]
};

}  // namespace altroute::loss
