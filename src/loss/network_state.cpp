#include "loss/network_state.hpp"

#include <stdexcept>

namespace altroute::loss {

NetworkState::NetworkState(const net::Graph& graph) {
  const std::size_t n = static_cast<std::size_t>(graph.link_count());
  occupancy_.assign(n, 0);
  capacity_.reserve(n);
  for (const net::Link& l : graph.links()) {
    if (l.capacity < 0) throw std::invalid_argument("LinkState: negative capacity");
    capacity_.push_back(l.capacity);
  }
  alt_limit_ = capacity_;  // zero reservation everywhere
}

void NetworkState::set_reservation(net::LinkId id, int reservation) {
  const std::size_t k = id.index();
  if (reservation < 0 || reservation > capacity_[k]) {
    throw std::invalid_argument("LinkState: reservation out of [0, capacity]");
  }
  alt_limit_[k] = capacity_[k] - reservation;
}

void NetworkState::set_reservations(const std::vector<int>& reservations) {
  if (reservations.size() != occupancy_.size()) {
    throw std::invalid_argument("NetworkState::set_reservations: size mismatch");
  }
  for (std::size_t k = 0; k < reservations.size(); ++k) {
    set_reservation(net::LinkId(static_cast<std::int32_t>(k)), reservations[k]);
  }
}

void NetworkState::set_capacity(net::LinkId id, int capacity) {
  if (capacity < 0) throw std::invalid_argument("LinkState::set_capacity: negative capacity");
  const std::size_t k = id.index();
  // Keep r = C - alt_limit, clamped into [0, C'].
  int reservation = capacity_[k] - alt_limit_[k];
  if (reservation > capacity) reservation = capacity;
  capacity_[k] = capacity;
  alt_limit_[k] = capacity - reservation;
}

void NetworkState::book(const routing::Path& path, int units) {
  for (const net::LinkId id : path.links) seize(id.index(), units);
}

void NetworkState::release(const routing::Path& path, int units) {
  for (const net::LinkId id : path.links) unseize(id.index(), units);
}

long long NetworkState::total_occupancy() const {
  long long total = 0;
  for (const int occ : occupancy_) total += occ;
  return total;
}

}  // namespace altroute::loss
