#include "loss/network_state.hpp"

#include <stdexcept>

namespace altroute::loss {

NetworkState::NetworkState(const net::Graph& graph) {
  links_.reserve(static_cast<std::size_t>(graph.link_count()));
  for (const net::Link& l : graph.links()) {
    links_.emplace_back(l.capacity, 0);
  }
}

void NetworkState::set_reservations(const std::vector<int>& reservations) {
  if (reservations.size() != links_.size()) {
    throw std::invalid_argument("NetworkState::set_reservations: size mismatch");
  }
  for (std::size_t k = 0; k < links_.size(); ++k) {
    links_[k].set_reservation(reservations[k]);
  }
}

bool NetworkState::path_admissible(const routing::Path& path, CallClass cls, int units) const {
  return first_blocking_link(path, cls, units) < 0;
}

int NetworkState::first_blocking_link(const routing::Path& path, CallClass cls,
                                      int units) const {
  for (std::size_t i = 0; i < path.links.size(); ++i) {
    if (!links_[path.links[i].index()].admits(cls, units)) return static_cast<int>(i);
  }
  return -1;
}

void NetworkState::book(const routing::Path& path, int units) {
  for (const net::LinkId id : path.links) links_[id.index()].seize(units);
}

void NetworkState::release(const routing::Path& path, int units) {
  for (const net::LinkId id : path.links) links_[id.index()].release(units);
}

long long NetworkState::total_occupancy() const {
  long long total = 0;
  for (const LinkState& l : links_) total += l.occupancy();
  return total;
}

}  // namespace altroute::loss
