#include "loss/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/calendar_queue.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace altroute::loss {

std::vector<double> RunResult::pair_blocking_probabilities() const {
  std::vector<double> out;
  for (const PairCounters& pc : per_pair) {
    if (pc.offered > 0) out.push_back(pc.blocking());
  }
  return out;
}

namespace {

// Departures carry the booked path (pointers into the RouteTable are
// stable for the duration of the run), the call's circuit width, and its
// class (needed to unwind the alternate-occupancy tally below).
struct Departure {
  const routing::Path* path;
  int units;
  bool alternate;
};

// The replay loop, templated over the departure-queue implementation: the
// calendar queue on the hot path, the legacy binary heap behind
// EngineOptions::legacy_event_queue.  Both pop in identical (time, seq)
// order, so the two instantiations produce bit-identical results -- the
// differential ctests replay the same traces through both and assert it.
template <typename DepartureQueue>
RunResult run_trace_impl(const net::Graph& graph, const routing::RouteTable& routes,
                         RoutingPolicy& policy, const sim::CallTrace& trace,
                         const EngineOptions& options) {
  if (routes.nodes() != graph.node_count()) {
    throw std::invalid_argument("run_trace: route table size mismatch");
  }
  if (!(options.warmup >= 0.0) || options.warmup >= trace.horizon) {
    throw std::invalid_argument("run_trace: warmup must lie in [0, horizon)");
  }

  const int n = graph.node_count();
  const std::size_t link_count = static_cast<std::size_t>(graph.link_count());

  NetworkState state(graph);
  if (!options.reservations.empty()) state.set_reservations(options.reservations);
  sim::Rng engine_rng(options.policy_seed, 0xA17E72A7E);

  obs::Probe* const probe = options.probe;
  ALTROUTE_OBS_HOOK(probe, bind(link_count));
  // Occupancy reader for the probe's event-time sampling grid.
  const auto occ_of = [&state](std::size_t k) {
    return static_cast<long long>(
        state.link(net::LinkId(static_cast<std::int32_t>(k))).occupancy());
  };

  RunResult result;
  result.node_count = n;
  result.per_pair.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), {});
  result.primary_losses_at_link.assign(link_count, 0);

  // Time-weighted link occupancy over the measurement window.
  std::vector<double> occupancy_integral(link_count, 0.0);
  std::vector<double> last_change(link_count, options.warmup);
  const auto account = [&](const routing::Path& path, double now) {
    if (!options.link_stats) return;
    for (const net::LinkId id : path.links) {
      const double from = last_change[id.index()];
      if (now > from) {
        occupancy_integral[id.index()] +=
            static_cast<double>(state.link(id).occupancy()) * (now - from);
        last_change[id.index()] = now;
      }
    }
  };

  DepartureQueue departures;

  // Per-link alternate-class circuits in flight, maintained only when a
  // probe is attached: the blocked-call hook reports the count at the
  // attributed link so the Theorem-1 audit can tell which primary losses
  // coincide with alternate traffic.
  std::vector<int> alt_occ;
  if (probe != nullptr) alt_occ.assign(link_count, 0);
  const auto adjust_alt_occ = [&](const routing::Path& path, int units, bool alternate,
                                  int sign) {
    if (probe == nullptr || !alternate) return;
    for (const net::LinkId id : path.links) alt_occ[id.index()] += sign * units;
  };
  // Post-booking occupancy along a path, for the admitted trace record
  // (the Theorem-1 audit's admission state s); built only under the hook.
  const auto booked_occ = [&state](const routing::Path& path) {
    std::vector<int> occ;
    occ.reserve(path.links.size());
    for (const net::LinkId id : path.links) occ.push_back(state.link(id).occupancy());
    return occ;
  };

  // Per-bandwidth counters: a flat vector probed linearly (widths are few
  // -- one for the paper's single-rate traces), sorted by width at the
  // end.  Replaces a std::map on the per-call path.
  std::vector<ClassCounters> per_class;
  const auto class_of = [&per_class](int bandwidth) -> ClassCounters& {
    for (ClassCounters& c : per_class) {
      if (c.bandwidth == bandwidth) return c;
    }
    per_class.emplace_back();
    per_class.back().bandwidth = bandwidth;
    return per_class.back();
  };

  if (options.time_bins > 0) {
    result.bin_offered.assign(static_cast<std::size_t>(options.time_bins), 0);
    result.bin_blocked.assign(static_cast<std::size_t>(options.time_bins), 0);
  }
  const double bin_width = options.time_bins > 0
                               ? (trace.horizon - options.warmup) / options.time_bins
                               : 0.0;
  const auto bin_of = [&](double t) {
    const auto bin = static_cast<std::size_t>((t - options.warmup) / bin_width);
    return std::min(bin, static_cast<std::size_t>(options.time_bins - 1));
  };

  for (const sim::CallRecord& call : trace.calls) {
    // Release every call that ends at or before this arrival.
    while (!departures.empty() && departures.next_time() <= call.arrival) {
      const auto [t, done] = departures.pop();
      ALTROUTE_OBS_HOOK(probe, sample_occupancy_to(t, occ_of));
      account(*done.path, t);
      state.release(*done.path, done.units);
      adjust_alt_occ(*done.path, done.units, done.alternate, -1);
    }

    const routing::RouteSet& routes_for_pair = routes.at(call.src, call.dst);
    const RoutingContext ctx{graph,           state,
                             call.src,        call.dst,
                             routes_for_pair, engine_rng.uniform01(),
                             call.arrival,    call.bandwidth};
    const RouteDecision decision = policy.route(ctx);

    const bool measured = call.arrival >= options.warmup;
    PairCounters& pair =
        result.per_pair[call.src.index() * static_cast<std::size_t>(n) + call.dst.index()];
    ClassCounters& cls = class_of(call.bandwidth);
    if (measured) {
      ++result.offered;
      ++pair.offered;
      ++cls.offered;
      if (options.time_bins > 0) ++result.bin_offered[bin_of(call.arrival)];
      ALTROUTE_OBS_HOOK(probe, on_offered(call.arrival, static_cast<int>(call.src.index()),
                                          static_cast<int>(call.dst.index()), call.bandwidth));
    }

    if (decision.accepted()) {
      ALTROUTE_OBS_HOOK(probe, sample_occupancy_to(call.arrival, occ_of));
      const bool alternate = decision.call_class == CallClass::kAlternate;
      // Count path links where this alternate admission lands inside the
      // reserved band occupancy > C - r (always 0 for a protected policy;
      // tests assert exactly that).  Checked before booking.
      int protected_band_links = 0;
      if (probe != nullptr && measured && alternate) {
        for (const net::LinkId id : decision.path->links) {
          const auto ls = state.link(id);
          if (ls.occupancy() + call.bandwidth > ls.capacity() - ls.reservation()) {
            ++protected_band_links;
          }
        }
      }
      account(*decision.path, call.arrival);
      state.book(*decision.path, call.bandwidth);
      adjust_alt_occ(*decision.path, call.bandwidth, alternate, +1);
      departures.schedule(call.arrival + call.holding,
                          Departure{decision.path, call.bandwidth, alternate});
      if (measured) {
        if (decision.call_class == CallClass::kPrimary) {
          ++result.carried_primary;
          ++pair.carried_primary;
        } else {
          ++result.carried_alternate;
          ++pair.carried_alternate;
        }
        const auto hops = static_cast<std::size_t>(decision.path->hops());
        if (result.carried_by_hops.size() <= hops) result.carried_by_hops.resize(hops + 1, 0);
        ++result.carried_by_hops[hops];
        ALTROUTE_OBS_HOOK(probe,
                          on_admitted(call.arrival, static_cast<int>(call.src.index()),
                                      static_cast<int>(call.dst.index()), *decision.path,
                                      alternate, call.bandwidth, protected_band_links,
                                      call.holding, booked_occ(*decision.path)));
      }
    } else {
      if (measured) {
        ++result.blocked;
        ++pair.blocked;
        ++cls.blocked;
        if (options.time_bins > 0) ++result.bin_blocked[bin_of(call.arrival)];
        // Attribute the loss to the first blocking link of the primary the
        // call would have probed (paper's convention).
        int blocking_link = -1;
        if (routes_for_pair.reachable()) {
          const std::size_t p = pick_primary(routes_for_pair, ctx.primary_pick);
          const routing::Path& primary = routes_for_pair.primaries[p];
          const int idx = state.first_blocking_link(primary, CallClass::kPrimary, call.bandwidth);
          if (idx >= 0) {
            const std::size_t k = primary.links[static_cast<std::size_t>(idx)].index();
            ++result.primary_losses_at_link[k];
            blocking_link = static_cast<int>(k);
          }
        }
        ALTROUTE_OBS_HOOK(probe,
                          on_blocked(call.arrival, static_cast<int>(call.src.index()),
                                     static_cast<int>(call.dst.index()), blocking_link,
                                     call.bandwidth,
                                     blocking_link >= 0
                                         ? alt_occ[static_cast<std::size_t>(blocking_link)]
                                         : 0));
        // Reserved-state diagnosis: when the policy probed alternates and
        // still blocked, find alternates shut out purely by state
        // protection -- the first refusing link would have admitted a
        // primary-class call of the same width.
        if (probe != nullptr && decision.alternates_probed > 0) {
          for (const routing::Path& alt : routes_for_pair.alternates) {
            const int j = state.first_blocking_link(alt, CallClass::kAlternate, call.bandwidth);
            if (j < 0) continue;
            const net::LinkId id = alt.links[static_cast<std::size_t>(j)];
            if (state.link(id).admits(CallClass::kPrimary, call.bandwidth)) {
              probe->on_reserved_rejection(call.arrival, static_cast<int>(call.src.index()),
                                           static_cast<int>(call.dst.index()),
                                           static_cast<int>(id.index()));
            }
          }
        }
      }
    }
  }

  // Drain departures up to the horizon so occupancy integrals close cleanly.
  while (!departures.empty() && departures.next_time() <= trace.horizon) {
    const auto [t, done] = departures.pop();
    ALTROUTE_OBS_HOOK(probe, sample_occupancy_to(t, occ_of));
    account(*done.path, t);
    state.release(*done.path, done.units);
    adjust_alt_occ(*done.path, done.units, done.alternate, -1);
  }
  ALTROUTE_OBS_HOOK(probe, finish_sampling(occ_of));
  if (options.counters != nullptr) {
    const sim::QueueStats& q = departures.stats();
    obs::prof::EngineCounters run;
    run.events_scheduled = q.scheduled;
    run.events_popped = q.popped;
    run.peak_queue_depth = q.peak_size;
    run.calendar_resizes = q.resizes;
    options.counters->merge(run);
  }
  std::sort(per_class.begin(), per_class.end(),
            [](const ClassCounters& a, const ClassCounters& b) {
              return a.bandwidth < b.bandwidth;
            });
  result.per_class = std::move(per_class);

  if (options.link_stats) {
    result.mean_link_occupancy.assign(link_count, 0.0);
    const double window = trace.horizon - options.warmup;
    for (std::size_t k = 0; k < link_count; ++k) {
      // Close each link's integral at the horizon.
      const double from = last_change[k];
      occupancy_integral[k] +=
          static_cast<double>(state.link(net::LinkId(static_cast<std::int32_t>(k))).occupancy()) *
          (trace.horizon - from);
      result.mean_link_occupancy[k] = occupancy_integral[k] / window;
    }
  }
  return result;
}

}  // namespace

RunResult run_trace(const net::Graph& graph, const routing::RouteTable& routes,
                    RoutingPolicy& policy, const sim::CallTrace& trace,
                    const EngineOptions& options) {
  if (options.legacy_event_queue) {
    return run_trace_impl<sim::EventQueue<Departure>>(graph, routes, policy, trace, options);
  }
  return run_trace_impl<sim::CalendarQueue<Departure>>(graph, routes, policy, trace, options);
}

}  // namespace altroute::loss
