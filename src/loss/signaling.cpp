#include "loss/signaling.hpp"

#include <limits>
#include <stdexcept>

#include "loss/policy.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace altroute::loss {

namespace {

// One in-flight call: its identity, the route program, and the progress of
// the current set-up attempt.
struct Setup {
  const routing::RouteSet* routes{nullptr};
  std::size_t primary_index{0};
  // Attempt 0 is the sampled primary; attempt k >= 1 is alternates[k-1]
  // skipping any entry equal to the primary.
  int attempt{-1};
  const routing::Path* path{nullptr};
  CallClass call_class{CallClass::kPrimary};
  double arrival{0.0};
  double holding{0.0};
  int bandwidth{1};
  bool measured{false};
  // Booking progress: hops [booked_from, hops) currently hold circuits.
  int booked_from{0};
};

struct Event {
  enum class Kind { kCheck, kBook, kRelease } kind{Kind::kCheck};
  std::size_t setup{0};  // index into the setups arena (kCheck/kBook)
  int hop{0};
  // kRelease carries its own payload (the call may be long gone from the
  // arena by then -- the arena is append-only within a run, so an index
  // would still work, but keeping the path avoids any aliasing doubts).
  const routing::Path* path{nullptr};
  int units{1};
};

}  // namespace

SignalingResult run_signaling(const net::Graph& graph, const routing::RouteTable& routes,
                              const sim::CallTrace& trace, const SignalingOptions& options) {
  if (routes.nodes() != graph.node_count()) {
    throw std::invalid_argument("run_signaling: route table size mismatch");
  }
  if (!(options.hop_delay >= 0.0)) {
    throw std::invalid_argument("run_signaling: negative hop delay");
  }
  if (!(options.warmup >= 0.0) || options.warmup >= trace.horizon) {
    throw std::invalid_argument("run_signaling: warmup must lie in [0, horizon)");
  }

  NetworkState state(graph);
  if (!options.reservations.empty()) state.set_reservations(options.reservations);
  sim::Rng engine_rng(options.policy_seed, 0xA17E72A7E);

  SignalingResult result;
  double setup_delay_sum = 0.0;
  long long carried = 0;

  std::vector<Setup> setups;
  setups.reserve(trace.calls.size());
  sim::EventQueue<Event> events;

  const double d = options.hop_delay;
  const CallClass alt_class = options.mode == SignalingMode::kControlled
                                  ? CallClass::kAlternate
                                  : CallClass::kPrimary;

  // Starts the next path attempt of `setup` at time `now`, or records the
  // call as blocked when the program is exhausted.
  const auto try_next = [&](std::size_t id, double now) {
    Setup& setup = setups[id];
    const routing::RouteSet& set = *setup.routes;
    const routing::Path& primary = set.primaries[setup.primary_index];
    for (;;) {
      ++setup.attempt;
      if (setup.attempt == 0) {
        setup.path = &primary;
        setup.call_class = CallClass::kPrimary;
        break;
      }
      if (options.mode == SignalingMode::kSinglePath) {
        setup.path = nullptr;
        break;
      }
      const std::size_t alt = static_cast<std::size_t>(setup.attempt - 1);
      if (alt >= set.alternates.size()) {
        setup.path = nullptr;
        break;
      }
      if (set.alternates[alt] == primary) continue;  // counted as the primary attempt
      setup.path = &set.alternates[alt];
      setup.call_class = alt_class;
      break;
    }
    if (setup.path == nullptr) {
      if (setup.measured) ++result.blocked;
      return;
    }
    ++result.attempts;
    setup.booked_from = setup.path->hops();
    events.schedule(now, Event{Event::Kind::kCheck, id, 0, nullptr, 0});
  };

  const auto handle_event = [&](double now, const Event& event) {
    switch (event.kind) {
      case Event::Kind::kRelease: {
        state.release(*event.path, event.units);
        break;
      }
      case Event::Kind::kCheck: {
        Setup& setup = setups[event.setup];
        const routing::Path& path = *setup.path;
        const net::LinkId link = path.links[static_cast<std::size_t>(event.hop)];
        if (!state.link(link).admits(setup.call_class, setup.bandwidth)) {
          // Failure notice travels back to the origin.
          try_next(event.setup, now + d * event.hop);
          break;
        }
        if (event.hop + 1 < path.hops()) {
          events.schedule(now + d, Event{Event::Kind::kCheck, event.setup, event.hop + 1,
                                         nullptr, 0});
        } else {
          // All checks passed; book on the way back, starting at the last
          // link one hop-delay later (destination processing).
          events.schedule(now + d, Event{Event::Kind::kBook, event.setup, path.hops() - 1,
                                         nullptr, 0});
        }
        break;
      }
      case Event::Kind::kBook: {
        Setup& setup = setups[event.setup];
        const routing::Path& path = *setup.path;
        const net::LinkId link = path.links[static_cast<std::size_t>(event.hop)];
        if (!state.link(link).admits(setup.call_class, setup.bandwidth)) {
          // Race: the link changed since the forward check.  Crank back the
          // circuits already booked downstream and try the next path.
          ++result.booking_races;
          for (int hop = setup.booked_from; hop < path.hops(); ++hop) {
            state.release_link(path.links[static_cast<std::size_t>(hop)], setup.bandwidth);
          }
          try_next(event.setup, now + d * event.hop);
          break;
        }
        state.book_link(link, setup.bandwidth);
        setup.booked_from = event.hop;
        if (event.hop > 0) {
          events.schedule(now + d, Event{Event::Kind::kBook, event.setup, event.hop - 1,
                                         nullptr, 0});
        } else {
          // Confirmation reaches the origin: the call is up.  Accounting
          // goes by which attempt succeeded (attempt 0 = primary path);
          // setup.call_class is the ADMISSION class, which the
          // uncontrolled mode keeps at kPrimary even for alternates.
          if (setup.measured) {
            if (setup.attempt == 0) {
              ++result.carried_primary;
            } else {
              ++result.carried_alternate;
            }
            setup_delay_sum += now - setup.arrival;
            ++carried;
          }
          events.schedule(now + setup.holding, Event{Event::Kind::kRelease, 0, 0,
                                                     setup.path, setup.bandwidth});
        }
        break;
      }
    }
  };

  for (const sim::CallRecord& call : trace.calls) {
    while (!events.empty() && events.next_time() <= call.arrival) {
      const auto [t, event] = events.pop();
      handle_event(t, event);
    }
    const double primary_pick = engine_rng.uniform01();
    const routing::RouteSet& set = routes.at(call.src, call.dst);
    const bool measured = call.arrival >= options.warmup;
    if (measured) ++result.offered;
    if (!set.reachable()) {
      if (measured) ++result.blocked;
      continue;
    }
    Setup setup;
    setup.routes = &set;
    setup.primary_index = pick_primary(set, primary_pick);
    setup.arrival = call.arrival;
    setup.holding = call.holding;
    setup.bandwidth = call.bandwidth;
    setup.measured = measured;
    setups.push_back(setup);
    try_next(setups.size() - 1, call.arrival);
  }
  // Drain everything: set-ups in flight at the horizon must still resolve
  // (conservation), and late releases are harmless.
  while (!events.empty()) {
    const auto [t, event] = events.pop();
    handle_event(t, event);
  }

  result.mean_setup_delay = carried > 0 ? setup_delay_sum / static_cast<double>(carried) : 0.0;
  return result;
}

}  // namespace altroute::loss
