// Event-driven call set-up signaling with per-hop latency and crankback.
//
// The paper describes the mechanism ("a call set-up packet ... zips along
// the primary path checking to see whether sufficient resources exist on
// each link ... If they do, resources are booked on its way back") but its
// simulator, like run_trace(), treats set-up as atomic.  This engine models
// the protocol faithfully:
//
//   * the set-up packet checks link i of an h-hop path at arrival + i*d
//     (d = one-way per-hop signaling delay);
//   * a failed check returns to the origin in i*d and the next path is
//     attempted (alternates in increasing length, per the scheme);
//   * after the last check the packet books circuits hop by hop on the
//     return leg; because other set-ups ran meanwhile, a booking can find
//     the link full or protection-violated -- a RACE.  The engine then
//     releases the circuits already booked (crankback) and the origin
//     tries the next path;
//   * a confirmed call holds its circuits from each link's booking instant
//     until (confirmation + holding time).  The booking of link 0 happens
//     at the origin itself, so a clean h-hop set-up completes with latency
//     (2h - 1) * d.
//
// With d == 0 every set-up completes atomically between arrivals and the
// engine reproduces run_trace() exactly (asserted in tests), so run_trace
// remains the fast path for the paper's experiments and this engine
// quantifies how stale state and races erode the schemes as d grows.
#pragma once

#include <cstdint>
#include <vector>

#include "loss/engine.hpp"
#include "loss/network_state.hpp"
#include "netgraph/graph.hpp"
#include "routing/route_table.hpp"
#include "sim/call_trace.hpp"

namespace altroute::loss {

/// Which of the paper's schemes the signaling engine executes.  (The
/// stateless RoutingPolicy interface decides a whole call at one instant,
/// which cannot express multi-attempt signaling, so the engine implements
/// the two-tier scheme natively.)
enum class SignalingMode {
  kSinglePath,    ///< primary attempt only
  kUncontrolled,  ///< alternates admitted on free capacity
  kControlled,    ///< alternates subject to the state-protection levels
};

struct SignalingOptions {
  /// One-way signaling delay per hop, in units of mean holding time.
  double hop_delay{0.0};
  double warmup{10.0};
  SignalingMode mode{SignalingMode::kControlled};
  /// Per-link protection levels (empty = all zero); only the controlled
  /// mode consults them.
  std::vector<int> reservations;
  /// Seed for the engine's bifurcated-primary sampling stream.
  std::uint64_t policy_seed{0x5eed};
};

struct SignalingResult {
  long long offered{0};
  long long blocked{0};
  long long carried_primary{0};
  long long carried_alternate{0};
  /// Booking attempts that found the link changed since the check (each
  /// triggers a crankback).
  long long booking_races{0};
  /// Total path attempts (primary + alternates) across all calls.
  long long attempts{0};
  /// Mean set-up latency (confirmation - arrival) over carried calls.
  double mean_setup_delay{0.0};

  [[nodiscard]] double blocking() const {
    return offered > 0 ? static_cast<double>(blocked) / static_cast<double>(offered) : 0.0;
  }
};

/// Replays `trace` through the signaling protocol.  Throws on size
/// mismatches, negative delay, or warmup outside [0, horizon).
[[nodiscard]] SignalingResult run_signaling(const net::Graph& graph,
                                            const routing::RouteTable& routes,
                                            const sim::CallTrace& trace,
                                            const SignalingOptions& options = {});

}  // namespace altroute::loss
