// Per-link admission state.
#pragma once

#include <stdexcept>

namespace altroute::loss {

/// Class of an admitted or probing call at a link, as carried by the call
/// set-up packet's primary flag.
enum class CallClass {
  kPrimary,    ///< call probing/using its SI primary path
  kAlternate,  ///< call overflowed onto an alternate path
};

/// Occupancy and admission logic of one directed link.
///
/// Occupancy is measured in circuits (bandwidth units); the paper's
/// single-rate model has every call seize one unit, and the multi-rate
/// extension seizes `units` per call.  A primary-class call is admitted
/// whenever its units fit.  An alternate-class call is additionally
/// subject to state protection: it is refused unless its units fit below
/// the protection boundary, occupancy + units <= C - r -- for unit calls
/// exactly the paper's "refused in the top r+1 states C-r .. C".
class LinkState {
 public:
  LinkState() = default;
  LinkState(int capacity, int reservation) : capacity_(capacity), reservation_(reservation) {
    if (capacity < 0) throw std::invalid_argument("LinkState: negative capacity");
    check_reservation(reservation);
  }

  [[nodiscard]] int capacity() const { return capacity_; }
  [[nodiscard]] int occupancy() const { return occupancy_; }
  [[nodiscard]] int reservation() const { return reservation_; }
  [[nodiscard]] int free_circuits() const { return capacity_ - occupancy_; }

  /// Updates the state-protection level (recomputed when Lambda estimates
  /// or H change).
  void set_reservation(int reservation) {
    check_reservation(reservation);
    reservation_ = reservation;
  }

  /// Updates the capacity mid-run (scenario capacity events).  The
  /// reservation is clamped into [0, capacity].  Occupancy is NOT touched:
  /// after a shrink it may transiently exceed the new capacity, and the
  /// caller (the scenario runner) must preempt calls until
  /// occupancy <= capacity before the next admission decision.
  void set_capacity(int capacity) {
    if (capacity < 0) throw std::invalid_argument("LinkState::set_capacity: negative capacity");
    capacity_ = capacity;
    if (reservation_ > capacity_) reservation_ = capacity_;
  }

  /// Would a call of the given class and width be admitted right now?
  [[nodiscard]] bool admits(CallClass cls, int units = 1) const {
    if (units < 1) throw std::invalid_argument("LinkState::admits: units < 1");
    if (occupancy_ + units > capacity_) return false;
    if (cls == CallClass::kAlternate && occupancy_ + units > capacity_ - reservation_) {
      return false;
    }
    return true;
  }

  /// Seizes `units` circuits.  Throws std::logic_error when they do not
  /// fit: callers must probe with admits() first (the two-phase set-up of
  /// the paper).
  void seize(int units = 1) {
    if (units < 1) throw std::invalid_argument("LinkState::seize: units < 1");
    if (occupancy_ + units > capacity_) throw std::logic_error("LinkState::seize: link full");
    occupancy_ += units;
  }

  /// Releases `units` circuits.  Throws std::logic_error on underflow.
  void release(int units = 1) {
    if (units < 1) throw std::invalid_argument("LinkState::release: units < 1");
    if (occupancy_ < units) throw std::logic_error("LinkState::release: not that busy");
    occupancy_ -= units;
  }

 private:
  void check_reservation(int reservation) const {
    if (reservation < 0 || reservation > capacity_) {
      throw std::invalid_argument("LinkState: reservation out of [0, capacity]");
    }
  }

  int capacity_{0};
  int occupancy_{0};
  int reservation_{0};
};

}  // namespace altroute::loss
