// Capacity planning with the teletraffic toolkit.
//
// Uses the library's analytic layer -- Erlang-B, the cut-set Erlang Bound,
// the min-loss primary optimizer -- to dimension a random 8-node mesh for a
// gravity traffic forecast, then validates the design by simulation under
// controlled alternate routing.  No part of this example touches the
// NSFNet/quadrangle scenarios: it shows the library as a general tool.
#include <iostream>

#include "core/controlled_policy.hpp"
#include "core/controller.hpp"
#include "erlang/erlang_b.hpp"
#include "erlang/erlang_bound.hpp"
#include "netgraph/topologies.hpp"
#include "routing/minloss.hpp"
#include "routing/route_table.hpp"
#include "sim/call_trace.hpp"
#include "sim/stats.hpp"
#include "study/report.hpp"

using namespace altroute;

int main() {
  // A random sparse mesh and a skewed gravity forecast (two big sites).
  net::Graph g = net::erdos_renyi(8, 0.25, 60, /*seed=*/2024);
  const net::TrafficMatrix forecast =
      net::TrafficMatrix::gravity({5.0, 5.0, 2.0, 2.0, 1.0, 1.0, 1.0, 1.0}, 400.0);

  std::cout << "Random 8-node mesh: " << g.link_count() << " directed links of 60 circuits, "
            << study::fmt(forecast.total(), 0) << " Erlangs forecast\n\n";

  // Step 1: analytic screening.  Which links would exceed 1% blocking if
  // all traffic took min-hop primaries?
  const routing::RouteTable minhop = routing::build_min_hop_routes(g, 7);
  const auto loads = routing::primary_link_loads(g, minhop, forecast);
  int hot_links = 0;
  for (std::size_t k = 0; k < loads.size(); ++k) {
    if (erlang::erlang_b(loads[k], 60) > 0.01) ++hot_links;
  }
  std::cout << "Min-hop screening: " << hot_links << " of " << loads.size()
            << " links above 1% Erlang-B blocking\n";

  // Step 2: no routing scheme can beat the cut-set Erlang Bound -- check
  // the topology itself is not the problem.
  const erlang::CutBound bound = erlang::erlang_bound(g, forecast);
  std::cout << "Erlang Bound for the design: " << study::fmt(bound.bound, 5)
            << " (binding cut crosses " << bound.forward_capacity << "+"
            << bound.reverse_capacity << " circuits)\n";

  // Step 3: spread primaries with the min-loss optimizer, then add the
  // controlled alternate tier on top.
  routing::MinLossOptions ml;
  ml.max_alt_hops = 7;
  const routing::MinLossResult optimized = routing::optimize_min_loss_primaries(g, forecast, ml);
  std::cout << "Min-loss primaries: expected loss rate "
            << study::fmt(optimized.initial_loss_rate, 2) << " -> "
            << study::fmt(optimized.expected_loss_rate, 2) << " calls/unit time\n\n";

  // Step 4: validate by simulation (10 seeds, controlled alternate routing).
  const core::Controller plan(g, forecast, optimized.routes, core::ControllerConfig{7});
  core::ControlledAlternatePolicy policy;
  sim::RunningStats blocking;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const sim::CallTrace trace = sim::generate_trace(forecast, 110.0, seed);
    blocking.add(plan.run(policy, trace).blocking());
  }
  std::cout << "Simulated design blocking: " << study::fmt(blocking.mean(), 5) << " +- "
            << study::fmt(blocking.ci95_halfwidth(), 5) << " (bound "
            << study::fmt(bound.bound, 5) << ")\n";
  std::cout << (blocking.mean() < 0.01 ? "Design meets the 1% objective.\n"
                                       : "Design misses the 1% objective - add capacity.\n");
  return 0;
}
