// Failure and recovery: the scenario engine on the NSFNet model.
//
// A scenario is a time-ordered script of network events -- failures,
// repairs, capacity changes, load swings, Eq. 15 re-solves -- replayed
// deterministically against the simulator while calls are in flight.
// This example scripts the ISSUE's canonical transient: the 2<->3 duplex
// facility fails at t = 40 (every call riding it is killed), the network
// re-solves its protection levels for the degraded topology, and the
// facility returns at t = 70.
//
//   $ ./failure_recovery
//
// Expected output: blocking is flat until the failure, jumps while the
// facility is down (alternate routing absorbs part of the loss), and
// returns to the pre-failure level after the repair.  The same scenario
// could be loaded from JSON with scenario::load_scenario_file -- see
// "Scenario engine" in DESIGN.md for the file format.
#include <iostream>

#include "netgraph/topologies.hpp"
#include "scenario/parse.hpp"
#include "scenario/scenario.hpp"
#include "study/experiment.hpp"
#include "study/nsfnet_traffic.hpp"
#include "study/report.hpp"

using namespace altroute;

int main() {
  // 1. The scenario.  scenario_from_json accepts exactly this shape from a
  //    file; building it in code is equivalent.
  const scenario::Scenario scen = scenario::scenario_from_json(R"({
    "name": "nsfnet failure recovery",
    "events": [
      {"time": 40, "type": "link_fail",          "a": 2, "b": 3},
      {"time": 40, "type": "resolve_protection"},
      {"time": 70, "type": "link_repair",        "a": 2, "b": 3},
      {"time": 70, "type": "resolve_protection"}
    ]})");

  // 2. Replay it over several seeds for the three schemes of the paper.
  //    Every policy sees the same per-seed call trace, and failure events
  //    never perturb the trace, so the transient is directly comparable
  //    to an intact run (common random numbers).
  study::ScenarioSweepOptions options;
  options.seeds = 5;
  options.measure = 100.0;  // horizon = 10 warmup + 100 measured units
  options.warmup = 10.0;
  options.max_alt_hops = 11;  // the paper's H for NSFNet
  options.time_bins = 10;
  const study::ScenarioSweepResult result = study::run_scenario_sweep(
      net::nsfnet_t3(), study::nsfnet_nominal_traffic(), scen,
      {study::PolicyKind::kSinglePath, study::PolicyKind::kUncontrolledAlternate,
       study::PolicyKind::kControlledAlternate},
      options);

  // 3. The transient series: one row per time bin, events marked inline.
  std::cout << "# " << scen.name << ": per-bin blocking\n"
            << study::scenario_table(result).str() << '\n';
  for (const study::ScenarioCurve& curve : result.curves) {
    std::cout << curve.name << ": mean blocking " << curve.mean_blocking << " +- "
              << curve.ci95 << ", in-flight calls killed " << curve.dropped << '\n';
  }
  return 0;
}
