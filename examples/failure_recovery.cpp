// Failure and recovery: the scenario engine on the NSFNet model.
//
// A scenario is a time-ordered script of network events -- failures,
// repairs, capacity changes, load swings, Eq. 15 re-solves -- replayed
// deterministically against the simulator while calls are in flight.
// This example scripts the ISSUE's canonical transient: the 2<->3 duplex
// facility fails at t = 40 (every call riding it is killed), the network
// re-solves its protection levels for the degraded topology, and the
// facility returns at t = 70.
//
//   $ ./failure_recovery
//   $ ./failure_recovery --scenario my.json --seeds 10 --threads 0
//   $ ./failure_recovery --metrics out.json --trace out.jsonl \
//                        --trace-filter call_killed,event_applied
//   $ ./failure_recovery --analyze --analysis-out report.json
//
// Expected output: blocking is flat until the failure, jumps while the
// facility is down (alternate routing absorbs part of the loss), and
// returns to the pre-failure level after the repair.  --metrics adds the
// merged per-policy instrument table (and writes the registries as JSON);
// --trace writes one JSON-lines record per admission/block/kill/event,
// bit-identical at any --threads value; --analyze runs the trace-
// analytics post-pass (Theorem-1 audit, attribution, CIs) over the same
// stream; --profile / --manifest-out / --flight-recorder / --progress
// capture the sweep's run health (phase timings, deterministic counters,
// last-N trace ring, run manifest).  See "Observability", "Analysis" and
// "Profiling & run health" in DESIGN.md.
#include <iostream>
#include <memory>
#include <sstream>

#include "netgraph/topologies.hpp"
#include "obs/trace.hpp"
#include "scenario/parse.hpp"
#include "scenario/scenario.hpp"
#include "sim/thread_pool.hpp"
#include "study/analysis.hpp"
#include "study/cli.hpp"
#include "study/experiment.hpp"
#include "study/nsfnet_traffic.hpp"
#include "study/prof_capture.hpp"
#include "study/report.hpp"

using namespace altroute;

int main(int argc, char** argv) {
  study::CliOptions cli;
  try {
    cli = study::parse_cli(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "failure_recovery: " << e.what() << '\n';
    return 1;
  }
  if (cli.trace_filter_list) {
    std::cout << obs::trace_kind_list() << '\n';
    return 0;
  }

  // 1. The scenario: --scenario loads a JSON script; the default is the
  //    canonical 2<->3 fail-at-40 / repair-at-70 transient.
  const scenario::Scenario scen =
      cli.scenario ? scenario::load_scenario_file(*cli.scenario)
                   : scenario::scenario_from_json(R"({
    "name": "nsfnet failure recovery",
    "events": [
      {"time": 40, "type": "link_fail",          "a": 2, "b": 3},
      {"time": 40, "type": "resolve_protection"},
      {"time": 70, "type": "link_repair",        "a": 2, "b": 3},
      {"time": 70, "type": "resolve_protection"}
    ]})");

  // 2. Replay it over several seeds for the three schemes of the paper.
  //    Every policy sees the same per-seed call trace, and failure events
  //    never perturb the trace, so the transient is directly comparable
  //    to an intact run (common random numbers).
  const study::RunShape shape = study::shape_from_cli(cli, {5, 100.0, 10.0, 1});
  study::ScenarioSweepOptions options;
  options.seeds = shape.seeds;
  options.measure = shape.measure;
  options.warmup = shape.warmup;
  options.threads = shape.threads;
  options.max_alt_hops = cli.hops.value_or(11);  // the paper's H for NSFNet
  options.time_bins = 10;

  // Crash tolerance: with --checkpoint-dir a killed run resumes where it
  // stopped (add --checkpoint-every T for mid-replication granularity);
  // --crash-after K injects a deterministic crash for testing the flow.
  if (cli.checkpoint_dir) options.checkpoint_dir = *cli.checkpoint_dir;
  if (cli.checkpoint_every) options.checkpoint_every = *cli.checkpoint_every;
  if (cli.crash_after) options.crash_after = *cli.crash_after;

  // Observability: a metrics registry per policy and/or a JSONL trace,
  // merged in slot order (bit-identical at any --threads value).  The
  // trace is buffered in memory so --analyze can feed the same bytes
  // through the same parser the offline tool uses (see study/analysis.hpp).
  std::ostringstream trace_buffer;
  std::unique_ptr<obs::JsonlTraceSink> trace_sink;
  if (cli.trace || cli.wants_analysis()) {
    trace_sink = std::make_unique<obs::JsonlTraceSink>(
        trace_buffer, obs::parse_trace_filter(cli.trace_filter.value_or("")));
    options.obs.trace = trace_sink.get();
  }
  if (cli.metrics) {
    options.obs.metrics = true;
    options.obs.occupancy_samples = 100;
  }

  // Run health: counters / phase timings / task table / flight recorder /
  // progress, all additive (never change results or the trace bytes).
  study::ProfCapture prof_capture("failure_recovery");
  prof_capture.attach(cli, options.obs, options.prof);

  study::ScenarioSweepResult result;
  try {
    result = study::run_scenario_sweep(
        net::nsfnet_t3(), study::nsfnet_nominal_traffic(), scen,
        {study::PolicyKind::kSinglePath, study::PolicyKind::kUncontrolledAlternate,
         study::PolicyKind::kControlledAlternate},
        options);
  } catch (const std::exception& e) {
    // The --crash-after hook lands here by design; completed tasks stay in
    // --checkpoint-dir, so rerunning the same command line resumes them.
    std::cerr << "failure_recovery: " << e.what() << '\n';
    return 3;
  }

  // 3. The transient series: one row per time bin, events marked inline.
  std::cout << "# " << scen.name << ": per-bin blocking\n"
            << study::scenario_table(result).str() << '\n';
  for (const study::ScenarioCurve& curve : result.curves) {
    std::cout << curve.name << ": mean blocking " << curve.mean_blocking << " +- "
              << curve.ci95 << ", in-flight calls killed " << curve.dropped << '\n';
  }
  if (cli.csv) study::write_file(*cli.csv, study::scenario_table(result).csv());
  if (cli.metrics) {
    std::cout << "\n# merged metrics (all seeds)\n" << study::metrics_table(result).str();
    std::vector<std::string> names;
    for (const study::ScenarioCurve& curve : result.curves) names.push_back(curve.name);
    study::write_file(*cli.metrics, study::metrics_json(result.metrics, names));
    std::cout << "\nmetrics written to " << *cli.metrics << '\n';
  }
  if (cli.trace) {
    study::write_file(*cli.trace, trace_buffer.str());
    std::cout << "trace written to " << *cli.trace << '\n';
  }
  if (cli.wants_analysis()) {
    std::cout << '\n';
    study::render_analysis(
        trace_buffer.str(),
        study::analysis_config_for(net::nsfnet_t3(), study::nsfnet_nominal_traffic(),
                                   options.max_alt_hops,
                                   {study::PolicyKind::kSinglePath,
                                    study::PolicyKind::kUncontrolledAlternate,
                                    study::PolicyKind::kControlledAlternate},
                                   {1.0}, /*replications_per_point=*/0, options.warmup,
                                   options.measure, options.time_bins),
        std::cout, cli.analysis_out);
  }
  const int resolved_threads =
      options.threads == 0 ? static_cast<int>(sim::ThreadPool::hardware_threads())
                           : options.threads;
  prof_capture.emit(cli,
                    study::scenario_sweep_fingerprint(
                        net::nsfnet_t3(), study::nsfnet_nominal_traffic(), scen,
                        {study::PolicyKind::kSinglePath,
                         study::PolicyKind::kUncontrolledAlternate,
                         study::PolicyKind::kControlledAlternate},
                        options),
                    resolved_threads, std::cout);
  return 0;
}
