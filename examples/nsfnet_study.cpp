// NSFNet what-if study: the paper's Internet scenario as an operator tool.
//
// Reproduces the Section 4.2 setting -- the 12-node NSFNet T3 backbone with
// the reconstructed nominal traffic matrix -- and answers three operator
// questions in one run:
//   1. How much headroom does the network have?  (blocking vs load sweep)
//   2. Which links are the bottlenecks?           (per-link loss attribution)
//   3. What happens if the worst link fails?      (failure re-run)
//
//   usage: nsfnet_study [load_factor] [threads]   (default 1.0 = nominal,
//   threads = 1; 0 = all hardware threads.  Thread count never changes the
//   numbers, only the wall clock -- each seed has its own RNG stream and
//   result slot.)
#include <cstdlib>
#include <memory>
#include <iostream>

#include "core/controlled_policy.hpp"
#include "core/controller.hpp"
#include "netgraph/topologies.hpp"
#include "sim/call_trace.hpp"
#include "sim/parallel_for.hpp"
#include "sim/stats.hpp"
#include "sim/thread_pool.hpp"
#include "study/nsfnet_traffic.hpp"
#include "study/report.hpp"

using namespace altroute;

namespace {

double mean_blocking(const core::Controller& controller, const net::TrafficMatrix& traffic,
                     int seeds, sim::ThreadPool* pool,
                     std::vector<long long>* link_losses = nullptr) {
  // One slot per seed; replications run in any order (possibly on the
  // pool), the reduction below walks the slots in seed order.
  std::vector<loss::RunResult> runs(static_cast<std::size_t>(seeds));
  sim::parallel_for(pool, runs.size(), [&](std::size_t s) {
    core::ControlledAlternatePolicy policy;
    const sim::CallTrace trace =
        sim::generate_trace(traffic, 110.0, static_cast<std::uint64_t>(s + 1));
    runs[s] = controller.run(policy, trace);
  });
  sim::RunningStats blocking;
  if (link_losses) {
    link_losses->assign(static_cast<std::size_t>(controller.graph().link_count()), 0);
  }
  for (const loss::RunResult& run : runs) {
    blocking.add(run.blocking());
    if (link_losses) {
      for (std::size_t k = 0; k < run.primary_losses_at_link.size(); ++k) {
        (*link_losses)[k] += run.primary_losses_at_link[k];
      }
    }
  }
  return blocking.mean();
}

}  // namespace

int main(int argc, char** argv) {
  const double factor = (argc > 1) ? std::atof(argv[1]) : 1.0;
  if (!(factor > 0.0)) {
    std::cerr << "usage: nsfnet_study [load_factor > 0] [threads >= 0]\n";
    return 1;
  }
  int threads = (argc > 2) ? std::atoi(argv[2]) : 1;
  if (threads < 0) {
    std::cerr << "usage: nsfnet_study [load_factor > 0] [threads >= 0]\n";
    return 1;
  }
  if (threads == 0) threads = sim::ThreadPool::hardware_threads();
  std::unique_ptr<sim::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<sim::ThreadPool>(threads);
  const net::Graph g = net::nsfnet_t3();
  const net::TrafficMatrix traffic = study::nsfnet_nominal_traffic().scaled(factor);
  core::Controller controller(g, traffic, core::ControllerConfig{11});

  std::cout << "NSFNet T3 model at " << factor << "x nominal load ("
            << study::fmt(traffic.total(), 0) << " Erlangs offered)\n\n";

  // 1. Headroom: sweep around the requested point.
  std::cout << "Blocking (controlled alternate routing, 5 seeds):\n";
  for (const double f : {0.8 * factor, factor, 1.2 * factor}) {
    core::Controller swept(g, study::nsfnet_nominal_traffic().scaled(f),
                           core::ControllerConfig{11});
    std::cout << "  " << study::fmt(f, 2)
              << "x nominal: " << study::fmt(mean_blocking(swept, study::nsfnet_nominal_traffic().scaled(f), 5, pool.get()), 4)
              << '\n';
  }

  // 2. Bottlenecks: where are primary calls lost?
  std::vector<long long> losses;
  (void)mean_blocking(controller, traffic, 5, pool.get(), &losses);
  std::cout << "\nTop loss-attributed links (losses charged to the first blocking link):\n";
  for (int rank = 0; rank < 5; ++rank) {
    std::size_t worst = 0;
    for (std::size_t k = 1; k < losses.size(); ++k) {
      if (losses[k] > losses[worst]) worst = k;
    }
    if (losses[worst] == 0) break;
    const net::Link& l = g.link(net::LinkId(static_cast<std::int32_t>(worst)));
    std::cout << "  " << g.node_name(l.src) << " -> " << g.node_name(l.dst) << ": "
              << losses[worst] << " primary losses (Lambda = "
              << study::fmt(controller.primary_loads()[worst], 1)
              << " E, r = " << controller.reservations()[worst] << ")\n";
    losses[worst] = -1;  // exclude from later ranks
  }

  // 3. Failure drill: drop the most loss-prone duplex facility (the paper
  //    drills 2<->3 and 7<->9; here the data picks the victim).
  net::Graph failed = g;
  failed.fail_duplex(net::NodeId(10), net::NodeId(11));
  core::Controller degraded(failed, traffic, core::ControllerConfig{11});
  std::cout << "\nWith the Princeton <-> Chicago facility down: blocking "
            << study::fmt(mean_blocking(degraded, traffic, 5, pool.get()), 4) << " (was "
            << study::fmt(mean_blocking(controller, traffic, 5, pool.get()), 4) << ")\n";
  return 0;
}
