// NSFNet what-if study: the paper's Internet scenario as an operator tool.
//
// Reproduces the Section 4.2 setting -- the 12-node NSFNet T3 backbone with
// the reconstructed nominal traffic matrix -- and answers three operator
// questions in one run:
//   1. How much headroom does the network have?  (blocking vs load sweep)
//   2. Which links are the bottlenecks?           (per-link loss attribution)
//   3. What happens if the worst link fails?      (failure re-run)
//
//   usage: nsfnet_study [load_factor] [threads] [flags]
//   (default 1.0 = nominal, threads = 1; 0 = all hardware threads.  Thread
//   count never changes the numbers, only the wall clock -- each seed has
//   its own RNG stream and result slot.)
//
//   Flags (after the positional arguments): --metrics out.json and/or
//   --trace out.jsonl [--trace-filter kinds] add an instrumented
//   comparison sweep at the requested load factor -- merged per-policy
//   counters/histograms plus a structured event trace, both bit-identical
//   at any thread count.  --analyze / --analysis-out report.json run the
//   trace-analytics post-pass (Theorem-1 audit, per-OD attribution, CIs)
//   over the same sweep.  --profile / --manifest-out / --flight-recorder /
//   --progress add run-health capture (phase timings, deterministic engine
//   counters, last-N trace ring, run manifest) to that same sweep; any of
//   them alone also triggers it.  See "Observability", "Analysis" and
//   "Profiling & run health" in DESIGN.md.
#include <cstdlib>
#include <memory>
#include <iostream>
#include <sstream>
#include <vector>

#include "core/controlled_policy.hpp"
#include "core/controller.hpp"
#include "netgraph/topologies.hpp"
#include "obs/trace.hpp"
#include "sim/call_trace.hpp"
#include "sim/parallel_for.hpp"
#include "sim/stats.hpp"
#include "sim/thread_pool.hpp"
#include "study/analysis.hpp"
#include "study/cli.hpp"
#include "study/experiment.hpp"
#include "study/nsfnet_traffic.hpp"
#include "study/prof_capture.hpp"
#include "study/report.hpp"

using namespace altroute;

namespace {

double mean_blocking(const core::Controller& controller, const net::TrafficMatrix& traffic,
                     int seeds, sim::ThreadPool* pool,
                     std::vector<long long>* link_losses = nullptr) {
  // One slot per seed; replications run in any order (possibly on the
  // pool), the reduction below walks the slots in seed order.
  std::vector<loss::RunResult> runs(static_cast<std::size_t>(seeds));
  sim::parallel_for(pool, runs.size(), [&](std::size_t s) {
    core::ControlledAlternatePolicy policy;
    const sim::CallTrace trace =
        sim::generate_trace(traffic, 110.0, static_cast<std::uint64_t>(s + 1));
    runs[s] = controller.run(policy, trace);
  });
  sim::RunningStats blocking;
  if (link_losses) {
    link_losses->assign(static_cast<std::size_t>(controller.graph().link_count()), 0);
  }
  for (const loss::RunResult& run : runs) {
    blocking.add(run.blocking());
    if (link_losses) {
      for (std::size_t k = 0; k < run.primary_losses_at_link.size(); ++k) {
        (*link_losses)[k] += run.primary_losses_at_link[k];
      }
    }
  }
  return blocking.mean();
}

}  // namespace

int main(int argc, char** argv) {
  // Leading positional arguments, then --flags (parsed by study::parse_cli).
  int arg = 1;
  const double factor = (arg < argc && argv[arg][0] != '-') ? std::atof(argv[arg++]) : 1.0;
  if (!(factor > 0.0)) {
    std::cerr << "usage: nsfnet_study [load_factor > 0] [threads >= 0] [--flags]\n";
    return 1;
  }
  int threads = (arg < argc && argv[arg][0] != '-') ? std::atoi(argv[arg++]) : 1;
  if (threads < 0) {
    std::cerr << "usage: nsfnet_study [load_factor > 0] [threads >= 0] [--flags]\n";
    return 1;
  }
  study::CliOptions cli;
  try {
    std::vector<char*> flag_args{argv[0]};
    for (int i = arg; i < argc; ++i) flag_args.push_back(argv[i]);
    cli = study::parse_cli(static_cast<int>(flag_args.size()), flag_args.data());
  } catch (const std::exception& e) {
    std::cerr << "nsfnet_study: " << e.what() << '\n';
    return 1;
  }
  if (cli.trace_filter_list) {
    std::cout << obs::trace_kind_list() << '\n';
    return 0;
  }
  const int sweep_threads = cli.threads.value_or(threads);
  if (threads == 0) threads = sim::ThreadPool::hardware_threads();
  std::unique_ptr<sim::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<sim::ThreadPool>(threads);
  const net::Graph g = net::nsfnet_t3();
  const net::TrafficMatrix traffic = study::nsfnet_nominal_traffic().scaled(factor);
  core::Controller controller(g, traffic, core::ControllerConfig{11});

  std::cout << "NSFNet T3 model at " << factor << "x nominal load ("
            << study::fmt(traffic.total(), 0) << " Erlangs offered)\n\n";

  // 1. Headroom: sweep around the requested point.
  std::cout << "Blocking (controlled alternate routing, 5 seeds):\n";
  for (const double f : {0.8 * factor, factor, 1.2 * factor}) {
    core::Controller swept(g, study::nsfnet_nominal_traffic().scaled(f),
                           core::ControllerConfig{11});
    std::cout << "  " << study::fmt(f, 2)
              << "x nominal: " << study::fmt(mean_blocking(swept, study::nsfnet_nominal_traffic().scaled(f), 5, pool.get()), 4)
              << '\n';
  }

  // 2. Bottlenecks: where are primary calls lost?
  std::vector<long long> losses;
  (void)mean_blocking(controller, traffic, 5, pool.get(), &losses);
  std::cout << "\nTop loss-attributed links (losses charged to the first blocking link):\n";
  for (int rank = 0; rank < 5; ++rank) {
    std::size_t worst = 0;
    for (std::size_t k = 1; k < losses.size(); ++k) {
      if (losses[k] > losses[worst]) worst = k;
    }
    if (losses[worst] == 0) break;
    const net::Link& l = g.link(net::LinkId(static_cast<std::int32_t>(worst)));
    std::cout << "  " << g.node_name(l.src) << " -> " << g.node_name(l.dst) << ": "
              << losses[worst] << " primary losses (Lambda = "
              << study::fmt(controller.primary_loads()[worst], 1)
              << " E, r = " << controller.reservations()[worst] << ")\n";
    losses[worst] = -1;  // exclude from later ranks
  }

  // 3. Failure drill: drop the most loss-prone duplex facility (the paper
  //    drills 2<->3 and 7<->9; here the data picks the victim).
  net::Graph failed = g;
  failed.fail_duplex(net::NodeId(10), net::NodeId(11));
  core::Controller degraded(failed, traffic, core::ControllerConfig{11});
  std::cout << "\nWith the Princeton <-> Chicago facility down: blocking "
            << study::fmt(mean_blocking(degraded, traffic, 5, pool.get()), 4) << " (was "
            << study::fmt(mean_blocking(controller, traffic, 5, pool.get()), 4) << ")\n";

  // 4. Optional instrumented sweep: --metrics / --trace / --analyze compare
  //    the three schemes at the requested load with full observability
  //    (merged in slot order -- identical output at any thread count);
  //    --profile / --manifest-out / --flight-recorder / --progress capture
  //    the sweep's run health through the same options.
  if (cli.metrics || cli.trace || cli.wants_analysis() || cli.wants_prof()) {
    study::ProfCapture prof_capture("nsfnet_study");
    study::SweepOptions sweep;
    sweep.load_factors = {factor};
    sweep.seeds = cli.seeds.value_or(5);
    sweep.threads = sweep_threads;
    sweep.max_alt_hops = 11;
    sweep.erlang_bound = false;
    std::ostringstream trace_buffer;
    std::unique_ptr<obs::JsonlTraceSink> trace_sink;
    if (cli.trace || cli.wants_analysis()) {
      trace_sink = std::make_unique<obs::JsonlTraceSink>(
          trace_buffer, obs::parse_trace_filter(cli.trace_filter.value_or("")));
      sweep.obs.trace = trace_sink.get();
    }
    if (cli.metrics) {
      sweep.obs.metrics = true;
      sweep.obs.occupancy_samples = 100;
    }
    prof_capture.attach(cli, sweep.obs, sweep.prof);
    const std::vector<study::PolicyKind> policies{study::PolicyKind::kSinglePath,
                                                  study::PolicyKind::kUncontrolledAlternate,
                                                  study::PolicyKind::kControlledAlternate};
    const study::SweepResult instrumented =
        study::run_sweep(g, study::nsfnet_nominal_traffic(), policies, sweep);
    if (cli.metrics) {
      std::cout << "\nInstrumented comparison at " << factor << "x nominal ("
                << sweep.seeds << " seeds):\n"
                << study::metrics_table(instrumented).str();
      std::vector<std::string> names;
      for (const study::PolicyCurve& curve : instrumented.curves) names.push_back(curve.name);
      study::write_file(*cli.metrics, study::metrics_json(instrumented.metrics, names));
      std::cout << "\nmetrics written to " << *cli.metrics << '\n';
    }
    if (cli.trace) {
      study::write_file(*cli.trace, trace_buffer.str());
      std::cout << "trace written to " << *cli.trace << '\n';
    }
    if (cli.wants_analysis()) {
      std::cout << '\n';
      study::render_analysis(
          trace_buffer.str(),
          study::analysis_config_for(g, study::nsfnet_nominal_traffic(), sweep.max_alt_hops,
                                     policies, sweep.load_factors,
                                     /*replications_per_point=*/sweep.seeds, sweep.warmup,
                                     sweep.measure, /*time_bins=*/20),
          std::cout, cli.analysis_out);
    }
    const int resolved_threads =
        sweep.threads == 0 ? static_cast<int>(sim::ThreadPool::hardware_threads())
                           : sweep.threads;
    prof_capture.emit(cli,
                      study::sweep_fingerprint(g, study::nsfnet_nominal_traffic(),
                                               policies, sweep),
                      resolved_threads, std::cout);
  }
  return 0;
}
