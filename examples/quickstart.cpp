// Quickstart: controlled alternate routing on a small mesh in ~60 lines.
//
// Builds a 5-node ring-with-a-chord network, offers symmetric traffic, and
// compares the three routing schemes of the paper on identical call traces.
//
//   $ ./quickstart
//
// Expected output: both alternate-routing schemes beat single-path at this
// moderate load.  The controlled scheme gives up a little of the
// uncontrolled gain here (its links protect primary traffic) in exchange
// for the Theorem-1 guarantee that it can never do worse than single-path
// at ANY load -- including overloads where the uncontrolled scheme
// collapses (run the fig3_quadrangle_blocking bench to see that regime).
#include <iostream>

#include "core/controlled_policy.hpp"
#include "core/controller.hpp"
#include "loss/policies.hpp"
#include "netgraph/topologies.hpp"
#include "sim/call_trace.hpp"
#include "sim/stats.hpp"

using namespace altroute;

int main() {
  // 1. Topology: a 5-node ring plus one chord, 40 circuits per direction.
  net::Graph g = net::ring(5, 40);
  g.add_duplex(net::NodeId(0), net::NodeId(2), 40);

  // 2. Traffic: 11 Erlangs between every ordered pair (unit-mean holding).
  const net::TrafficMatrix traffic = net::TrafficMatrix::uniform(5, 11.0);

  // 3. The controller derives everything the scheme needs: unique min-hop
  //    primaries, alternates ordered by length (here up to H = 4 hops),
  //    per-link primary demands (Eq. 1), and state-protection levels
  //    (Eq. 15).
  const core::Controller controller(g, traffic, core::ControllerConfig{4});

  std::cout << "Link protection levels (r^k) chosen by Eq. 15:\n";
  for (const core::LinkReport& row : controller.link_report()) {
    std::cout << "  " << g.node_name(row.src) << " -> " << g.node_name(row.dst)
              << ": C = " << row.capacity << ", Lambda = " << row.lambda
              << ", r = " << row.reservation << '\n';
  }

  // 4. Replay identical call traces (10 seeds x 110 time units) against
  //    each policy and average the measured blocking.
  loss::SinglePathPolicy single_path;
  loss::UncontrolledAlternatePolicy uncontrolled;
  core::ControlledAlternatePolicy controlled;
  loss::RoutingPolicy* policies[] = {&single_path, &uncontrolled, &controlled};

  std::cout << "\nAverage network blocking over 10 seeds:\n";
  for (loss::RoutingPolicy* policy : policies) {
    sim::RunningStats blocking;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const sim::CallTrace trace = sim::generate_trace(traffic, 110.0, seed);
      blocking.add(controller.run(*policy, trace).blocking());
    }
    std::cout << "  " << policy->name() << ": " << blocking.mean() << " +- "
              << blocking.ci95_halfwidth() << '\n';
  }
  return 0;
}
