// What-if forking: branch one warmed simulation into divergent futures.
//
// Transient comparisons are noisy when each variant re-simulates its own
// past: differences in the shared pre-event history masquerade as effect.
// The snapshot subsystem removes that noise source entirely.  One run
// warms the NSFNet model to t = 40 and captures a checkpoint -- RNG
// stream, in-flight calls, queue contents, counters, the lot -- then
// snapshot::fork_runs() continues that SAME frozen state into K branches
// whose scenarios diverge only after the capture point.  Every branch
// shares an identical past (common random numbers ACROSS TIME), so any
// difference in the outputs is caused by the branch's own events.
//
//   $ ./what_if_fork
//   $ ./what_if_fork --fast --threads 4 --hops 7
//   $ ./what_if_fork --checkpoint-at 55 --checkpoint-out warm.ckpt
//   $ ./what_if_fork --resume warm.ckpt        # skip the warm run
//
// Expected output: the baseline branch stays at the intact blocking
// level; the outage branches jump while the 2<->3 facility is down, with
// the re-solved (protected) branch recovering more of the loss than the
// stale-protection branch; and the shared-past invariant is checked
// in-process (every branch reports the same pre-fork offered count).
#include <iostream>
#include <memory>
#include <vector>

#include "core/controlled_policy.hpp"
#include "netgraph/topologies.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "snapshot/checkpoint.hpp"
#include "snapshot/fork.hpp"
#include "study/cli.hpp"
#include "study/nsfnet_traffic.hpp"

using namespace altroute;

int main(int argc, char** argv) {
  study::CliOptions cli;
  try {
    cli = study::parse_cli(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "what_if_fork: " << e.what() << '\n';
    return 1;
  }
  const study::RunShape shape = study::shape_from_cli(cli, {1, 100.0, 10.0, 4});

  const net::Graph graph = net::nsfnet_t3();
  const net::TrafficMatrix traffic = study::nsfnet_nominal_traffic();
  // --checkpoint-at overrides the default mid-measurement capture point.
  const double fork_at = cli.checkpoint_at.value_or(shape.warmup + 30.0);
  const double horizon = shape.warmup + shape.measure;

  // The shared prefix every branch replays identically: protection levels
  // are solved once at t = 0.  Branch events are appended strictly after
  // the capture point, which is what makes the fork legal (the runner
  // verifies the prefix on resume).
  scenario::Scenario prefix;
  prefix.name = "warm";
  prefix.events.push_back(scenario::ScenarioEvent::resolve_protection(0.0));

  scenario::ScenarioEngineOptions engine;
  engine.warmup = shape.warmup;
  engine.policy_seed = 7;
  engine.time_bins = 10;
  engine.max_alt_hops = cli.hops.value_or(11);  // the paper's H for NSFNet

  // One arrival trace, shared by the warm run and every branch: the
  // branches' failure events never perturb arrivals, so the call sequence
  // is common to all futures.
  const sim::CallTrace trace = scenario::make_scenario_trace(traffic, prefix, horizon, 7);

  // 1. Warm run: simulate to the capture point and keep the checkpoint.
  //    (The run continues to the horizon -- its result is the baseline's,
  //    which the fork below reproduces bit-for-bit from the checkpoint.)
  //    --resume loads a previously saved state instead; --checkpoint-out
  //    persists the captured state for later resumes / the inspector.
  snapshot::BufferCheckpointSink captured;
  if (cli.resume) {
    try {
      captured.captured.push_back(snapshot::load_checkpoint(*cli.resume));
    } catch (const std::exception& e) {
      std::cerr << "what_if_fork: " << e.what() << '\n';
      return 1;
    }
    std::cout << "resumed from " << *cli.resume << '\n';
  } else {
    scenario::ScenarioEngineOptions warm = engine;
    warm.checkpoint_at = fork_at;
    warm.checkpoints = &captured;
    core::ControlledAlternatePolicy policy;
    (void)scenario::run_scenario(graph, traffic, policy, trace, prefix, warm);
    if (cli.checkpoint_out) {
      snapshot::save_checkpoint(*cli.checkpoint_out, captured.captured.front());
      std::cout << "checkpoint written to " << *cli.checkpoint_out << '\n';
    }
  }
  const snapshot::ScenarioCheckpoint& ckpt = captured.captured.front();
  std::cout << "warmed to t=" << ckpt.advanced_to << " (" << ckpt.arena.calls.size()
            << " calls in flight, " << ckpt.counters.offered << " offered so far)\n\n";

  // 2. The futures.  Each branch owns its policy instance (fork_runs
  //    requires it -- policies are stateful in general).  Branch events
  //    hang off the checkpoint's own capture time, so a --resume from a
  //    differently-timed checkpoint stays a legal (post-capture) fork.
  const double fail_at = ckpt.checkpoint_at + 5.0;
  const double repair_at = ckpt.checkpoint_at + 35.0;
  const auto outage = [&](bool resolve) {
    scenario::Scenario s = prefix;
    s.name = resolve ? "outage+resolve" : "outage-stale-r";
    s.events.push_back(scenario::ScenarioEvent::link_fail(fail_at, 2, 3));
    if (resolve) s.events.push_back(scenario::ScenarioEvent::resolve_protection(fail_at));
    s.events.push_back(scenario::ScenarioEvent::link_repair(repair_at, 2, 3));
    if (resolve) s.events.push_back(scenario::ScenarioEvent::resolve_protection(repair_at));
    return s;
  };
  std::vector<core::ControlledAlternatePolicy> policies(3);
  std::vector<snapshot::ForkVariant> variants;
  variants.push_back({"baseline", prefix, &policies[0]});
  variants.push_back({outage(true).name, outage(true), &policies[1]});
  variants.push_back({outage(false).name, outage(false), &policies[2]});

  snapshot::ForkOptions fork;
  fork.engine = engine;
  fork.threads = shape.threads;
  std::vector<snapshot::ForkOutcome> outcomes;
  try {
    outcomes = snapshot::fork_runs(graph, traffic, trace, ckpt, variants, fork);
  } catch (const std::exception& e) {
    // A resumed checkpoint from a different shape fails validation here.
    std::cerr << "what_if_fork: " << e.what() << '\n';
    return 1;
  }

  // 3. Report.  The shared-past invariant: every branch saw the same
  //    offered count, and only post-fork behaviour differs.
  std::cout << "branch            blocking   dropped  carried-alt\n";
  bool shared_past = true;
  for (const snapshot::ForkOutcome& o : outcomes) {
    const loss::RunResult& run = o.result.run;
    std::printf("%-16s  %8.5f  %8lld  %11lld\n", o.name.c_str(), run.blocking(),
                o.result.dropped, run.carried_alternate);
    shared_past = shared_past && run.offered == outcomes.front().result.run.offered;
  }
  std::cout << (shared_past ? "\nshared past verified: all branches offered the same calls\n"
                            : "\nERROR: branches diverged before the fork point\n");
  return shared_past ? 0 : 1;
}
