// Bring your own network: the file-based workflow.
//
// Writes a small metro network and its traffic forecast in the altroute
// text formats, loads them back (exactly what an operator would do with
// hand-maintained files), and runs the full controlled-alternate-routing
// analysis: protection levels, analytic single-path blocking via the
// reduced-load fixed point, and a simulated three-scheme comparison.
//
//   usage: custom_network [network.txt traffic.txt]
//   (with no arguments a built-in 6-node example is written to the
//   system temp directory first)
#include <cstdio>
#include <iostream>

#include "core/controlled_policy.hpp"
#include "core/controller.hpp"
#include "loss/policies.hpp"
#include "netgraph/io.hpp"
#include "routing/fixed_point.hpp"
#include "sim/call_trace.hpp"
#include "sim/stats.hpp"
#include "study/report.hpp"

using namespace altroute;

namespace {

void write_builtin_example(const std::string& net_path, const std::string& traffic_path) {
  study::write_file(net_path,
                    "# Metro ring with two express chords\n"
                    "network 1\n"
                    "node 0 Harbor\n"
                    "node 1 Downtown\n"
                    "node 2 University\n"
                    "node 3 Airport\n"
                    "node 4 Stadium\n"
                    "node 5 TechPark\n"
                    "link 0 1 60\nlink 1 0 60\n"
                    "link 1 2 60\nlink 2 1 60\n"
                    "link 2 3 60\nlink 3 2 60\n"
                    "link 3 4 60\nlink 4 3 60\n"
                    "link 4 5 60\nlink 5 4 60\n"
                    "link 5 0 60\nlink 0 5 60\n"
                    "link 1 4 40\nlink 4 1 40\n"
                    "link 2 5 40\nlink 5 2 40\n");
  study::write_file(traffic_path,
                    "traffic 1\n"
                    "nodes 6\n"
                    "demand 0 1 18\ndemand 1 0 18\n"
                    "demand 1 2 14\ndemand 2 1 14\n"
                    "demand 0 3 11\ndemand 3 0 11\n"
                    "demand 2 5 16\ndemand 5 2 16\n"
                    "demand 1 4 13\ndemand 4 1 13\n"
                    "demand 3 5 7\ndemand 5 3 7\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string net_path;
  std::string traffic_path;
  if (argc == 3) {
    net_path = argv[1];
    traffic_path = argv[2];
  } else if (argc == 1) {
    net_path = std::string(std::getenv("TMPDIR") ? std::getenv("TMPDIR") : "/tmp") +
               "/altroute_example_net.txt";
    traffic_path = std::string(std::getenv("TMPDIR") ? std::getenv("TMPDIR") : "/tmp") +
                   "/altroute_example_traffic.txt";
    write_builtin_example(net_path, traffic_path);
    std::cout << "(wrote example files " << net_path << " and " << traffic_path << ")\n\n";
  } else {
    std::cerr << "usage: custom_network [network.txt traffic.txt]\n";
    return 1;
  }

  try {
    const net::Graph g = net::load_network(net_path);
    const net::TrafficMatrix traffic = net::load_traffic(traffic_path);
    std::cout << "Loaded " << g.node_count() << " nodes, " << g.link_count()
              << " directed links, " << study::fmt(traffic.total(), 1)
              << " Erlangs of demand\n\n";

    const core::Controller controller(g, traffic, core::ControllerConfig{5});
    std::cout << "State-protection levels (H = 5):\n";
    for (const core::LinkReport& row : controller.link_report()) {
      if (row.reservation == 0) continue;
      std::cout << "  " << g.node_name(row.src) << " -> " << g.node_name(row.dst)
                << ": Lambda = " << study::fmt(row.lambda, 1) << " E, r = " << row.reservation
                << '\n';
    }

    const auto fp = routing::erlang_fixed_point(g, controller.routes(), traffic);
    std::cout << "\nAnalytic single-path blocking (reduced-load fixed point): "
              << study::fmt(fp.network_blocking, 4) << '\n';

    loss::SinglePathPolicy single;
    loss::UncontrolledAlternatePolicy uncontrolled;
    core::ControlledAlternatePolicy controlled;
    loss::RoutingPolicy* policies[] = {&single, &uncontrolled, &controlled};
    std::cout << "\nSimulated blocking (10 seeds, 100 measured units):\n";
    for (loss::RoutingPolicy* policy : policies) {
      sim::RunningStats blocking;
      for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        blocking.add(
            controller.run(*policy, sim::generate_trace(traffic, 110.0, seed)).blocking());
      }
      std::cout << "  " << policy->name() << ": " << study::fmt(blocking.mean(), 4) << " +- "
                << study::fmt(blocking.ci95_halfwidth(), 4) << '\n';
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
