// Adaptive control: closed-loop r* retargeting on the NSFNet transient.
//
// The paper's Eq. 15 assumes the offered-load matrix Lambda is KNOWN; a
// deployed network has to measure it.  The control plane (src/control)
// closes that loop: an online estimator watches every call request, and at
// each control epoch the controller re-solves Eq. 15 from the ESTIMATED
// loads and installs the resulting protection levels -- so when the
// 2<->3 facility fails at t = 40, the levels adapt to the degraded
// topology within a few epochs instead of staying frozen at values
// engineered for the intact network.
//
//   $ ./adaptive_control
//   $ ./adaptive_control --control epoch=2,estimator=ewma,deadband=0.1
//   $ ./adaptive_control --policy dar,trunk=2 --seeds 10
//
// Three curves run on the same per-seed call traces (common random
// numbers):
//
//   frozen      controlled alternate routing, protection levels solved
//               once for the intact network and never touched again --
//               the degraded network runs on the wrong levels;
//   adaptive    the same policy plus the closed-loop controller
//               (--control overrides the default epoch=5 EWMA loop);
//   dar         BT-style dynamic alternate routing: sticky-random
//               alternates with trunk reservation (--policy dar,trunk=N),
//               the decentralized scheme the paper's Section 6 contrasts
//               with preplanned control.
//
// Expected output: all three block alike before the failure; inside the
// failure window the adaptive curve blocks measurably less than frozen
// (the controller re-targets r* from estimated loads), and the summary
// reports how many epochs fired and how many re-solves they accepted.
#include <iostream>

#include "netgraph/topologies.hpp"
#include "scenario/parse.hpp"
#include "scenario/scenario.hpp"
#include "study/cli.hpp"
#include "study/experiment.hpp"
#include "study/nsfnet_traffic.hpp"
#include "study/report.hpp"

using namespace altroute;

int main(int argc, char** argv) {
  study::CliOptions cli;
  try {
    cli = study::parse_cli(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "adaptive_control: " << e.what() << '\n';
    return 1;
  }

  const scenario::Scenario scen =
      cli.scenario ? scenario::load_scenario_file(*cli.scenario)
                   : scenario::scenario_from_json(R"({
    "name": "fail 2<->3 at 40, repair at 70 -- no re-solve events",
    "events": [
      {"time": 40, "type": "link_fail",   "a": 2, "b": 3},
      {"time": 70, "type": "link_repair", "a": 2, "b": 3}
    ]})");

  const study::RunShape shape = study::shape_from_cli(cli, {5, 100.0, 10.0, 1});
  study::ScenarioSweepOptions options;
  options.seeds = shape.seeds;
  options.measure = shape.measure;
  options.warmup = shape.warmup;
  options.threads = shape.threads;
  options.max_alt_hops = cli.hops.value_or(11);
  options.base_seed = 17;  // the ctest-pinned transient seeds (test_control)
  options.time_bins = 10;
  options.obs.metrics = true;  // the control counters ride the registries

  // The frozen baseline: same policy, no controller, no resolve events.
  study::ScenarioSweepResult frozen = study::run_scenario_sweep(
      net::nsfnet_t3(), study::nsfnet_nominal_traffic(), scen,
      {study::PolicyKind::kControlledAlternate}, options);

  // The adaptive run: --control overrides the default closed loop, and
  // --policy dar[,trunk=N] adds the dynamic alternate policy as a curve.
  options.control = cli.control.value_or(
      control::parse_control_spec("epoch=5,estimator=ewma"));
  std::vector<study::PolicyKind> policies = {study::PolicyKind::kControlledAlternate};
  if (cli.dar) {
    options.dar_trunk = cli.dar->trunk;
    policies.push_back(study::PolicyKind::kDar);
  }
  study::ScenarioSweepResult adaptive = study::run_scenario_sweep(
      net::nsfnet_t3(), study::nsfnet_nominal_traffic(), scen, policies, options);

  // Side-by-side transient: frozen vs adaptive (vs dar), same bins.
  study::TextTable table(cli.dar
                             ? std::vector<std::string>{"t", "frozen", "adaptive", "dar"}
                             : std::vector<std::string>{"t", "frozen", "adaptive"});
  for (std::size_t b = 0; b < frozen.bin_start.size(); ++b) {
    std::vector<std::string> row = {study::fmt(frozen.bin_start[b], 0),
                                    study::fmt(frozen.curves[0].bin_blocking[b], 4),
                                    study::fmt(adaptive.curves[0].bin_blocking[b], 4)};
    if (cli.dar) row.push_back(study::fmt(adaptive.curves[1].bin_blocking[b], 4));
    table.add_row(row);
  }
  std::cout << "# " << scen.name << ": per-bin blocking\n" << table.str() << '\n';

  std::cout << "frozen:   mean blocking " << study::fmt(frozen.curves[0].mean_blocking, 4)
            << " (levels solved for the intact network, never retargeted)\n";
  std::cout << "adaptive: mean blocking "
            << study::fmt(adaptive.curves[0].mean_blocking, 4) << " ("
            << adaptive.metrics[0].counter_value("control_epochs") << " epochs, "
            << adaptive.metrics[0].counter_value("control_retargets")
            << " link re-targets, "
            << adaptive.metrics[0].counter_value("control_holds")
            << " deadband holds across seeds)\n";
  if (cli.dar) {
    std::cout << "dar:      mean blocking "
              << study::fmt(adaptive.curves[1].mean_blocking, 4) << " (trunk="
              << cli.dar->trunk << ")\n";
  }
  if (cli.csv) study::write_file(*cli.csv, table.csv());
  return 0;
}
