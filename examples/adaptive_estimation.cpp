// Online Lambda estimation: closing the loop the paper left open.
//
// The paper's links "know Lambda^k a priori"; the estimation procedure is
// explicitly out of scope there.  This example runs the
// AdaptiveControlledPolicy, whose links count the primary set-ups that fly
// past them, EWMA-smooth the windowed rates, and recompute their own Eq.-15
// thresholds -- then compares the learned values and the resulting blocking
// against the a-priori controller.  It also springs a surprise: halfway
// through, the traffic doubles, and the links re-learn.
#include <iostream>

#include "core/adaptive_policy.hpp"
#include "core/controlled_policy.hpp"
#include "core/controller.hpp"
#include "loss/engine.hpp"
#include "netgraph/topologies.hpp"
#include "sim/call_trace.hpp"
#include "study/report.hpp"

using namespace altroute;

int main() {
  const net::Graph g = net::full_mesh(4, 100);
  const net::TrafficMatrix before = net::TrafficMatrix::uniform(4, 60.0);
  const net::TrafficMatrix after = net::TrafficMatrix::uniform(4, 95.0);

  // Phase 1: learn the 60 E/pair regime from scratch.
  core::AdaptiveOptions options;
  options.window = 5.0;
  options.ewma_weight = 0.3;
  options.max_alt_hops = 3;
  core::AdaptiveControlledPolicy adaptive(g, options);
  const core::Controller oracle(g, before, core::ControllerConfig{3});

  loss::EngineOptions engine;
  engine.warmup = 10.0;
  engine.link_stats = false;

  const sim::CallTrace phase1 = sim::generate_trace(before, 200.0, 1);
  const loss::RunResult run1 =
      loss::run_trace(g, oracle.routes(), adaptive, phase1, engine);

  std::cout << "Phase 1 (60 E/pair, 200 time units):\n";
  std::cout << "  learned Lambda[link 0] = " << study::fmt(adaptive.lambda_estimates()[0], 1)
            << " E (truth 60), learned r = " << adaptive.reservations()[0]
            << " (a-priori r = " << oracle.reservations()[0] << ")\n";
  std::cout << "  blocking " << study::fmt(run1.blocking(), 4) << '\n';

  // Phase 2: the load jumps; the SAME policy object keeps learning.  The
  // policy's estimation clock runs on simulation time, so the second trace
  // is shifted to continue where the first ended.
  sim::CallTrace phase2 = sim::generate_trace(after, 200.0, 2);
  for (sim::CallRecord& call : phase2.calls) call.arrival += 200.0;
  phase2.horizon = 400.0;
  const core::Controller oracle2(g, after, core::ControllerConfig{3});
  loss::EngineOptions engine2 = engine;
  engine2.warmup = 210.0;
  const loss::RunResult run2 =
      loss::run_trace(g, oracle2.routes(), adaptive, phase2, engine2);

  std::cout << "\nPhase 2 (load jumps to 95 E/pair):\n";
  std::cout << "  re-learned Lambda[link 0] = "
            << study::fmt(adaptive.lambda_estimates()[0], 1)
            << " E (truth 95), re-learned r = " << adaptive.reservations()[0]
            << " (a-priori r = " << oracle2.reservations()[0] << ")\n";

  // Reference: the a-priori controlled policy on the same phase-2 trace.
  core::ControlledAlternatePolicy fixed;
  const loss::RunResult reference =
      loss::run_trace(g, oracle2.routes(), fixed, phase2, oracle2.engine_options(210.0));
  std::cout << "  blocking " << study::fmt(run2.blocking(), 4) << " (a-priori controller "
            << study::fmt(reference.blocking(), 4) << " on the same trace)\n";
  std::cout << "\nState protection is robust to Lambda estimation error (Key 1990), which\n"
               "is why the locally-learned thresholds track the oracle so closely.\n";
  return 0;
}
