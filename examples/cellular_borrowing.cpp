// Channel borrowing with a rush-hour hot spot (Section 3.2 application).
//
// A 6x6 hex-torus cellular network carries 30 Erlangs per cell on 50
// channels -- comfortable everywhere, except one downtown cell that spikes
// to 70 Erlangs.  Borrowing lets the hot cell tap its neighbors' idle
// channels; the state-protection rule with H = 3 (the co-cell set size)
// keeps the lending cells from starving their own users.
#include <iostream>

#include "cellular/borrowing_sim.hpp"
#include "sim/stats.hpp"
#include "study/report.hpp"

using namespace altroute;

int main() {
  const cellular::CellGrid grid(6, 6);
  const cellular::CellId hot_cell = 14;

  cellular::BorrowingConfig config;
  config.channels_per_cell = 50;
  config.offered.assign(static_cast<std::size_t>(grid.cell_count()), 30.0);
  config.offered[hot_cell] = 70.0;
  config.measure = 100.0;

  std::cout << "6x6 hex torus, 50 channels/cell, 30 E/cell with a 70 E hot spot\n\n";
  study::TextTable table(
      {"scheme", "network_blocking", "hot_cell_blocking", "borrowed_calls"});
  for (const auto mode : {cellular::BorrowingMode::kNone, cellular::BorrowingMode::kUncontrolled,
                          cellular::BorrowingMode::kControlled}) {
    config.mode = mode;
    sim::RunningStats network;
    sim::RunningStats hot;
    long long borrowed = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const cellular::BorrowingResult run = cellular::run_borrowing(grid, config, seed);
      network.add(run.blocking());
      hot.add(run.per_cell_blocking[hot_cell]);
      borrowed += run.borrowed_calls;
    }
    const char* name = mode == cellular::BorrowingMode::kNone           ? "no borrowing"
                       : mode == cellular::BorrowingMode::kUncontrolled ? "uncontrolled"
                                                                        : "controlled (H=3)";
    table.add_row({name, study::fmt(network.mean(), 4), study::fmt(hot.mean(), 4),
                   std::to_string(borrowed)});
  }
  std::cout << table.str();
  std::cout << "\nControlled borrowing relieves the hot spot while the Eq.-15 thresholds\n"
               "(computed by each cell from its own load, with H = 3) guarantee the\n"
               "network never does worse than the no-borrowing baseline.\n";
  return 0;
}
